//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a pure function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the composite cases. The tree is
    /// unrolled `depth` times, so generated values nest at most `depth`
    /// levels of composite on top of a leaf. `_desired_size` and
    /// `_expected_branch_size` are accepted for API parity and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(strat).boxed();
            strat = OneOf::new(vec![leaf.clone(), composite]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (the [`prop_oneof!`]
/// macro builds one of these).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A uniform choice among `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = rng.below_u128(span);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128) - (self.start as i128) + 1;
                let offset = rng.below_u128(span as u128);
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        let offset = rng.below_u128(span);
        self.start.wrapping_add(offset as i128)
    }
}

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range generator over a primitive integer (or `bool`).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let raw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                raw as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> FullRange<$t> {
                FullRange { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> FullRange<bool> {
        FullRange {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (`any::<i128>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform choice among heterogeneously-typed strategies generating a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
