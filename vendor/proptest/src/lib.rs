//! A minimal, offline, API-compatible stand-in for the subset of
//! [proptest](https://github.com/proptest-rs/proptest) 1.x that this
//! workspace's tests use. See `vendor/README.md` for scope.
//!
//! Design notes:
//!
//! * [`strategy::Strategy`] is a *generator* trait: `generate(&mut TestRng)`
//!   produces one value. There is no shrinking — on failure the harness
//!   reports the case index and the deterministic per-test seed, which is
//!   enough to reproduce (generation is a pure function of the seed).
//! * The [`proptest!`] macro expands each contained `fn` to a plain test
//!   that loops `ProptestConfig::cases` times over freshly generated
//!   inputs; `prop_assert!`/`prop_assert_eq!` are plain assertions.

pub mod collection;
mod macros;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (0u8..).generate(&mut rng);
            let _ = z; // full range; nothing to check beyond type
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u64..10).prop_map(|n| n as i64), Just(-1i64),];
        let mut rng = TestRng::deterministic("oneof_and_map_compose");
        let mut saw_neg = false;
        let mut saw_small = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                -1 => saw_neg = true,
                n if (0..10).contains(&n) => saw_small = true,
                other => panic!("out-of-range value {other}"),
            }
        }
        assert!(saw_neg && saw_small);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = Just(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::deterministic("recursive_strategies_terminate");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself, with config, doc comments and several bindings.
        #[test]
        fn macro_roundtrip(a in 0u32..100, b in 0u32..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100, "bounds violated: {} {}", a, b);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0usize..3, 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }
}
