//! Configuration and the deterministic RNG driving generation.

/// Per-test configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (mirrors proptest's constructor).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A small xorshift* PRNG, seeded deterministically from the test name so
/// failures reproduce run-to-run without any persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a over the bytes).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is ≤ 2^-64 · bound,
        // far below anything a property test can observe.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[0, bound)` over `u128` ranges.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        if bound == u128::MAX {
            return raw;
        }
        raw % (bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
