//! The `proptest!` entry-point macro and the `prop_assert*` family.

/// Declares property tests: each contained `fn` with `arg in strategy`
/// bindings becomes a plain `#[test]` looping over generated cases.
///
/// Supports the optional leading `#![proptest_config(...)]` attribute used
/// to set the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Build each strategy once (bound to the argument's own
                // name, shadowed by the generated value inside the loop);
                // generation then only consults the RNG.
                $( let $arg = ($strat); )+
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_eq!($l, $r, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_ne!($l, $r, $($fmt)+) };
}
