//! Collection strategies (only `vec` is needed by this workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `sizes` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty size range");
    VecStrategy { element, sizes }
}

/// The result of [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
