//! A minimal, offline, API-compatible stand-in for the subset of
//! [Criterion.rs](https://github.com/bheisler/criterion.rs) 0.5 that this
//! workspace's bench targets use. See `vendor/README.md` for scope.
//!
//! The harness really measures: each benchmark is warmed up for
//! `warm_up_time`, then `sample_size` samples are timed, where each sample runs
//! enough iterations to fill `measurement_time / sample_size`. Results are
//! printed to stdout as `name  time: [min median mean]` per iteration.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager: global configuration plus a name filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    /// Run each benchmark body exactly once (set by `--test`, the flag
    /// `cargo test --benches` passes to libtest-style harnesses).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window a benchmark's samples should fill.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, `--bench`, and an optional
    /// positional name filter), matching the flags Cargo passes to
    /// `harness = false` bench targets.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags (real Criterion's or libtest's) that take a value.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--logfile" => {
                    let _ = args.next();
                }
                "--bench" | "--profile-time" | "--quick" | "--verbose" | "--quiet" | "--noplot"
                | "--exact" | "--nocapture" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and local configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks a function under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_one(&cfg, &full, f);
        self
    }

    /// Benchmarks a function with an explicit input under `group-name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, converted to the last path segment of the name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark id: a `BenchmarkId` or a plain name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Iterations per timed sample (chosen during warm-up).
    iters_per_sample: u64,
    /// Per-sample mean iteration times, filled by `iter`.
    sample_means_ns: Vec<f64>,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to fill the
    /// configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let n = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.sample_means_ns
            .push(elapsed.as_secs_f64() * 1e9 / n as f64);
    }
}

fn run_one<F>(cfg: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &cfg.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if cfg.test_mode {
        let mut b = Bencher {
            iters_per_sample: 1,
            sample_means_ns: Vec::new(),
            test_mode: true,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Warm-up: run single iterations until the warm-up window elapses,
    // estimating the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < cfg.warm_up_time {
        let mut b = Bencher {
            iters_per_sample: 1,
            sample_means_ns: Vec::new(),
            test_mode: false,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 10 && warm_start.elapsed() >= cfg.warm_up_time / 2 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let per_sample_budget = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters_per_sample = ((per_sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut b = Bencher {
        iters_per_sample,
        sample_means_ns: Vec::new(),
        test_mode: false,
    };
    for _ in 0..cfg.sample_size {
        f(&mut b);
    }

    let mut samples = b.sample_means_ns;
    if samples.is_empty() {
        println!("{name:<50} (no samples — closure never called iter)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(40).into_benchmark_id(), "40");
    }

    #[test]
    fn harness_runs_and_measures() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0usize;
        let mut group = c.benchmark_group("shim");
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
