//! Prints the sizes and check times of the repository's flagship proof
//! objects (used to fill EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --example proof_sizes
//! ```

use std::time::Instant;

fn main() {
    let t = Instant::now();
    let unroll = nka_apps::compiler_opt::loop_unrolling_proof();
    unroll.assert_checked();
    println!(
        "§5.1 unrolling:  {:>6} rule applications, build+check {:?}",
        unroll.proof_size(),
        t.elapsed()
    );

    let t = Instant::now();
    let boundary = nka_apps::compiler_opt::loop_boundary_proof();
    boundary.assert_checked();
    println!(
        "§5.2 boundary:   {:>6} rule applications, build+check {:?}",
        boundary.proof_size(),
        t.elapsed()
    );

    let t = Instant::now();
    let qsp = nka_apps::qsp::qsp_optimization_proof();
    qsp.assert_checked();
    println!(
        "App. B QSP:      {:>6} rule applications, build+check {:?}",
        qsp.proof_size(),
        t.elapsed()
    );

    let t = Instant::now();
    let sec6 = nka_apps::normal_form_example::section6_proof();
    let build = t.elapsed();
    let t = Instant::now();
    sec6.assert_checked();
    println!(
        "§6 normal form:  {:>6} rule applications, build {:?}, check {:?} ({} hypotheses)",
        sec6.proof_size(),
        build,
        t.elapsed(),
        sec6.hypotheses.len()
    );
}
