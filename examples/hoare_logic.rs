//! Section 7: propositional quantum Hoare logic inside NKAT.
//!
//! Builds a Figure-5 derivation for a measured loop, validates it
//! semantically, and compiles it into a checked NKAT derivation of the
//! encoded inequality `p·b̄ ≤ ā` (Theorem 7.8).
//!
//! ```sh
//! cargo run --example hoare_logic
//! ```

use nka_qprog::{EncoderSetting, Program};
use nkat::qhl::{encode_qhl, wlp, HoareTriple, QhlDerivation};
use qsim_linalg::{CMatrix, Complex};
use qsim_quantum::{gates, states, Measurement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The coin-flip loop: while M[q] = 1 do H done.
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h.clone());
    println!("program: {w}");

    // Weakest liberal preconditions, computed from the dual semantics.
    let post = states::basis_density(2, 0);
    let pre = wlp(&w, &post);
    println!("wlp(P, |0⟩⟨0|) =\n{pre}");

    // A Figure-5 derivation: R.LP over an atomic body triple.
    // Invariant C = M₀†(|0⟩⟨0|) + M₁†(½·I) = diag(1, ½).
    let half = CMatrix::identity(2).scale(Complex::from(0.5));
    let c = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.5]]);
    let body = QhlDerivation::Atomic(HoareTriple::new(&half, &h, &c));
    let derivation = QhlDerivation::Loop {
        a: post.clone(),
        inner: Box::new(body),
    };
    let triple = derivation.conclude(&w)?;
    println!(
        "\nFigure-5 derivation concludes {{C}} P {{|0⟩⟨0|}} with C =\n{}",
        triple.pre()
    );
    assert!(triple.holds_partial(1e-7));
    let mut seed = 99;
    assert!(triple.holds_on_probes(16, &mut seed, 1e-7));
    println!("partial correctness confirmed semantically (wlp + 16 probes)");

    // Theorem 7.8: compile to NKAT.
    let mut setting = EncoderSetting::new(2);
    let encoded = encode_qhl(&derivation, &w, &mut setting)?;
    encoded.derivation.verify()?;
    println!("\nTheorem 7.8 encoding:");
    println!("  program expression  p = {}", encoded.program_expr);
    println!("  postcondition term  ā = {}", encoded.post_terms.1);
    println!("  precondition negation c̄ = {}", encoded.pre_terms.1);
    println!(
        "  derived in NKAT:    {}",
        encoded.derivation.conclusion(encoded.conclusion)
    );
    println!(
        "  ({} facts total: context hypotheses + derivation steps)",
        encoded.derivation.facts().len()
    );
    Ok(())
}
