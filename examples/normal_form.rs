//! Section 6: the quantum Böhm–Jacopini theorem.
//!
//! Runs the paper's worked example (two loops merged into one, with the
//! full machine-checked NKA derivation) and then the *general*
//! normal-form transformation of Theorem 6.1 on several programs.
//!
//! ```sh
//! cargo run --example normal_form
//! ```

use nka_apps::normal_form_example::{
    enc_constructed, enc_original, section6_proof, verify_section6_semantically,
};
use nka_qprog::normal_form::{normalize, verify_normal_form};
use nka_qprog::Program;
use qsim_quantum::{gates, Measurement};
use std::time::Instant;

fn main() {
    println!("=== §6 worked example ===");
    println!("Enc(Original)    = {}", enc_original());
    println!("Enc(Constructed) = {}", enc_constructed());

    let t = Instant::now();
    let horn = section6_proof();
    horn.assert_checked();
    println!(
        "\nalgebraic proof checked in {:?} ({} rule applications, {} hypotheses)",
        t.elapsed(),
        horn.proof_size(),
        horn.hypotheses.len()
    );

    let t = Instant::now();
    assert!(verify_section6_semantically(1e-7));
    println!(
        "semantic equivalence on H_p ⊗ C₃ verified in {:?}",
        t.elapsed()
    );

    println!("\n=== Theorem 6.1: general transformation ===");
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());
    let coin = Program::while_loop(["m0", "m1"], &meas, h.clone());

    let cases: Vec<(&str, Program)> = vec![
        ("while-free", x.clone()),
        ("two sequential loops", coin.then(&coin)),
        (
            "loop inside a case",
            Program::case(["n0", "n1"], &meas, vec![coin.clone(), x.clone()]),
        ),
        (
            "nested while",
            Program::while_loop(["n0", "n1"], &meas, coin.then(&x)),
        ),
    ];

    for (name, program) in cases {
        let t = Instant::now();
        let nf = normalize(&program);
        let ok = verify_normal_form(&program, &nf, 1e-6);
        println!(
            "{name:>22}: {} loop(s) → 1 loop, guard dim {:>3}, verified {} in {:?}",
            program.loop_count(),
            nf.guard_dim(),
            if ok { "EQUAL" } else { "DIFFER" },
            t.elapsed()
        );
        assert!(ok);
        assert!(nf.prefix().is_while_free());
        assert!(nf.body().is_while_free());
    }
    println!("\nEvery program above now has the shape  P0; while M do P1 done; reset.");
}
