//! Quickstart: algebraic reasoning about quantum programs in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nka_quantum::api::{Query, Session, Verdict};
use nka_quantum::nka::{theorems, Judgment, Proof};
use nka_quantum::qpath::ExtPosOp;
use nka_quantum::qprog::{EncoderSetting, Program};
use nka_quantum::syntax::Expr;
use qsim_quantum::{gates, states, Measurement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. NKA expressions: the encodings of quantum while-programs.
    let loop_enc: Expr = "(m1 h)* m0".parse()?;
    println!("Enc(while M = 1 do H done) = {loop_enc}");

    // 2. The decision procedure through the Query API (v1): a `Session`
    //    owns one warm engine; ⊢NKA e = f iff {{e}} = {{f}} (Thm A.6).
    let mut session = Session::new();
    let sliding = session.run(&Query::nka_eq("(p q)* p", "p (q p)*")?);
    println!(
        "sliding law decidable:   (p q)* p = p (q p)*  →  {} (in {:?})",
        sliding.verdict == Verdict::Holds,
        sliding.elapsed
    );
    let idem = session.run(&Query::nka_eq("p + p", "p")?);
    println!(
        "idempotence (KA only!):  p + p = p  →  {}",
        idem.verdict == Verdict::Holds
    );

    // 3. Machine-checked proofs: Figure 2 theorems as proof objects.
    let proof = theorems::sliding(&"p".parse()?, &"q".parse()?);
    let judgment = proof.check_closed()?;
    println!(
        "checked proof ({} rule applications): {judgment}",
        proof.size()
    );

    // 4. Horn-clause reasoning (Corollary 4.3): projective measurements.
    let hyps = [
        Judgment::Eq("m1 m1".parse()?, "m1".parse()?),
        Judgment::Eq("m1 m0".parse()?, "0".parse()?),
    ];
    let hyp_proof = Proof::Hyp(0);
    println!(
        "hypothesis 0 under the Horn context: {}",
        hyp_proof.check(&hyps)?
    );

    // 5. Programs, semantics, encoding, interpretation — all connected.
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let program = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&program)?;
    println!("\nprogram: {program}\nencoding: {enc}");

    // Denotational semantics: the loop almost surely exits into |0⟩.
    let out = program.run(&states::basis_density(2, 1));
    println!("⟦P⟧(|1⟩⟨1|) trace = {:.6}", out.trace().re);

    // Theorem 4.5: Qint(Enc(P)) = ⟨⟦P⟧⟩↑ — interpret the encoding in the
    // quantum path model and compare.
    let int = setting.interpretation();
    let path_result = int
        .action(&enc)
        .apply(&ExtPosOp::from_operator(&states::basis_density(2, 1)));
    let direct = program.run(&states::basis_density(2, 1));
    assert!(path_result.finite_part().approx_eq(&direct, 1e-8));
    println!("Theorem 4.5 verified: path-model interpretation = denotation");

    Ok(())
}
