//! KA vs NKA: what the idempotent law buys, what it costs, and how
//! Remark 2.1 recovers Kleene algebra *inside* NKA.
//!
//! ```sh
//! cargo run --example ka_vs_nka
//! ```
//!
//! The paper drops the idempotent law `p + p = p` because quantum
//! branching is weighted: `m0 p0 + m1 p1` sums measurement branches, and
//! collapsing equal summands would mis-count probability. This example
//! walks the separating identities, then demonstrates Remark 2.1: the
//! subset `1*K = {1*·p}` satisfies the KA axioms, and on it the NKA
//! decision procedure and a classical language-equivalence check agree.

use nka_quantum::api::{Query, Session, Verdict};
use nka_quantum::syntax::Expr;
use nka_quantum::syntax::{Symbol, Word};
use nka_quantum::wfa::ka::saturate;
use nka_quantum::wfa::thompson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every equivalence question below goes through one warm `Session`
    // (Query API v1): both theories, one engine, shared caches.
    let mut session = Session::new();
    let mut holds = |query: Query| session.run(&query).verdict == Verdict::Holds;

    // ── 1. Identities that hold in KA but fail in NKA ────────────────
    println!("identity                         KA     NKA");
    println!("───────────────────────────────────────────");
    let separating: [(&str, &str); 4] = [
        ("p + p", "p"),
        ("(p + q)*", "(p* q*)*"),
        ("p * *", "p*"),
        ("(p + 1)(p + 1)", "1 + p + p p"),
    ];
    for (l, r) in separating {
        println!(
            "{:20} = {:10} {:6} {}",
            l,
            r,
            holds(Query::ka_eq(l, r)?),
            holds(Query::nka_eq(l, r)?)
        );
    }

    // The counting reason: {{p + p}}[p] = 2, not 1.
    let pp: Expr = "p + p".parse()?;
    let wfa = thompson(&pp).eliminate_epsilon();
    let w = Word::from_symbols([Symbol::intern("p")]);
    println!(
        "\n{{{{p + p}}}}[\"p\"] = {} — NKA counts branches",
        wfa.coefficient(&w)
    );

    // ── 2. Identities that survive without idempotence ───────────────
    println!("\nshared theorems (hold in both):");
    for (l, r) in [
        ("(p q)* p", "p (q p)*"),
        ("(p + q)*", "(p* q)* p*"),
        ("1 + p p*", "p*"),
    ] {
        assert!(holds(Query::nka_eq(l, r)?) && holds(Query::ka_eq(l, r)?));
        println!("  {l} = {r}");
    }

    // ── 3. Remark 2.1: KA lives inside NKA as 1*K ────────────────────
    // 1* has coefficient ∞ on ε, so 1*·e saturates every non-zero
    // coefficient; ∞ + ∞ = ∞ restores idempotence.
    println!("\nRemark 2.1 — the 1*K embedding:");
    for (l, r) in separating {
        let (le, re): (Expr, Expr) = (l.parse()?, r.parse()?);
        let ok = holds(Query::NkaEq {
            lhs: saturate(&le),
            rhs: saturate(&re),
        });
        println!("  ⊢NKA 1*({l}) = 1*({r})  →  {ok}");
        assert_eq!(ok, holds(Query::ka_eq(l, r)?));
    }
    // And the embedding never conflates distinct languages.
    let (pq, qp): (Expr, Expr) = ("p q".parse()?, "q p".parse()?);
    assert!(!holds(Query::NkaEq {
        lhs: saturate(&pq),
        rhs: saturate(&qp),
    }));
    println!("  ⊢NKA 1*(p q) = 1*(q p)  →  false   (refutations preserved)");

    // ── 4. Membership queries on the support ─────────────────────────
    // Word membership is below the query API; reach the warm engine
    // directly through the session's escape hatch.
    let e: Expr = "(a b)* a".parse()?;
    let a = Symbol::intern("a");
    let b = Symbol::intern("b");
    println!(
        "\nL((a b)* a) membership: aba → {}, ab → {}",
        session.engine_mut().ka_accepts(&e, &[a, b, a])?,
        session.engine_mut().ka_accepts(&e, &[a, b])?,
    );

    Ok(())
}
