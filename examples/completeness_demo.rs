//! Appendix C.5: the completeness construction of Theorem 4.2.
//!
//! The quantum path model evaluates the C.5 interpretation into the
//! coefficients of the formal power series `{{e}}` — finite coefficients
//! as operator weight, infinite coefficients as divergence directions.
//! This demo makes the correspondence visible.
//!
//! ```sh
//! cargo run --example completeness_demo
//! ```

use nka_apps::completeness::CompletenessModel;
use nka_quantum::series::eval;
use nka_quantum::syntax::{Expr, Symbol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let model = CompletenessModel::new(&alphabet, 2);
    println!(
        "C.5 model over Σ = {{a, b}}, words ≤ 2 — Hilbert dimension {}",
        model.dim()
    );

    for src in ["a + a", "a* ", "a* a*", "(a + b)*", "1*", "1* a + b"] {
        let e: Expr = src.parse()?;
        let series = eval(&e, &alphabet, 2);
        let result = model.apply_to_epsilon(&e);
        println!("\nQint({src})([|ε⟩⟨ε|]):");
        println!("  series {{{{{src}}}}} = {series}");
        println!(
            "  path model: divergence dim {}, finite trace {:.4}",
            result.divergence().dim(),
            result.finite_trace()
        );
        assert!(
            model.check_c51_on_epsilon(&e),
            "eq. C.5.1 must hold for {src}"
        );
        println!("  eq. C.5.1 verified ✓");
    }

    println!(
        "\nThe path model distinguishes the weighted traces of every pair of\nnon-equivalent NKA expressions — that is Theorem 4.2's completeness."
    );
    Ok(())
}
