//! Section 5 end to end: validate compiler optimization rules both
//! algebraically (checked NKA Horn proofs) and semantically (densities).
//!
//! ```sh
//! cargo run --example compiler_optimization
//! ```

use nka_apps::compiler_opt::{
    boundary_programs, loop_boundary_proof, loop_unrolling_proof, unrolling1_program,
    unrolling2_program, unrolling_hypotheses_hold, verify_loop_boundary_semantically,
    verify_loop_unrolling_semantically,
};
use nka_apps::rule_library::{catalog, validate_rule};
use nka_quantum::nka::render::render;
use std::time::Instant;

fn main() {
    println!("=== §5.1 loop unrolling ===");
    let t = Instant::now();
    let horn = loop_unrolling_proof();
    horn.assert_checked();
    println!(
        "algebraic proof checked in {:?} ({} rule applications)",
        t.elapsed(),
        horn.proof_size()
    );
    println!("  hypotheses:");
    for h in &horn.hypotheses {
        println!("    {h}");
    }
    println!("  conclusion: {}", horn.conclusion);

    for qubits in 1..=3 {
        let t = Instant::now();
        assert!(unrolling_hypotheses_hold(qubits, 1e-9));
        let ok = verify_loop_unrolling_semantically(qubits, 1e-7);
        let dim = unrolling1_program(qubits).dim();
        println!(
            "  semantic check ({qubits} qubits, dim {dim}): {} in {:?}",
            if ok { "EQUAL" } else { "DIFFER" },
            t.elapsed()
        );
        assert!(ok);
    }
    println!(
        "  (the proof certifies ALL dimensions at once — the semantic check\n   grows as 4^qubits; see the scale_motivation bench)"
    );

    println!("\n=== §5.2 loop boundary ===");
    let t = Instant::now();
    let horn = loop_boundary_proof();
    horn.assert_checked();
    println!(
        "algebraic proof checked in {:?} ({} rule applications)",
        t.elapsed(),
        horn.proof_size()
    );
    println!("  conclusion: {}", horn.conclusion);

    for qubits in 1..=2 {
        let t = Instant::now();
        let (b1, _) = boundary_programs(qubits);
        let ok = verify_loop_boundary_semantically(qubits, 1e-7);
        println!(
            "  semantic check ({} qubits + work qubit, dim {}): {} in {:?}",
            qubits,
            b1.dim(),
            if ok { "EQUAL" } else { "DIFFER" },
            t.elapsed()
        );
        assert!(ok);
    }

    // A deliberately broken variant: drop projectivity and the rule fails.
    println!("\n=== falsification check ===");
    let p1 = unrolling1_program(1);
    let p2 = unrolling2_program(1);
    println!("Unrolling1 = {p1}\nUnrolling2 = {p2}\n(projective measurement ⇒ equal, as proved)");

    // The extended rule catalog: every rule re-checked algebraically and
    // re-validated on its two-qubit witness pair.
    println!("\n=== extended rule catalog ===");
    println!("{:<16} {:>6}  conclusion", "rule", "steps");
    for entry in catalog() {
        assert!(validate_rule(&entry, 1e-9));
        println!(
            "{:<16} {:>6}  {}",
            entry.name,
            entry.proof.proof_size(),
            entry.proof.conclusion
        );
    }

    // And one certificate rendered the way the paper prints derivations.
    println!("\n=== rendered derivation (dead loop) ===");
    let dead_loop = catalog()
        .into_iter()
        .find(|e| e.name == "dead-loop")
        .expect("catalog contains dead-loop");
    print!(
        "{}",
        render(&dead_loop.proof.proof, &dead_loop.proof.hypotheses).expect("checked proofs render")
    );
}
