//! Appendix B: the quantum-signal-processing optimization, end to end.
//!
//! Builds the gate-level `qsp`/`qsp'` programs of Figure 6, checks every
//! algebraic hypothesis against the concrete superoperators, replays the
//! paper's NKA derivation, and confirms the optimization semantically.
//!
//! ```sh
//! cargo run --example qsp_pipeline
//! ```

use nka_apps::qsp::{qsp_optimization_proof, QspInstance};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Appendix B: optimizing quantum signal processing ===\n");

    // 1. Algebraic proof (dimension-independent).
    let t = Instant::now();
    let horn = qsp_optimization_proof();
    horn.assert_checked();
    println!(
        "NKA derivation checked in {:?} ({} rule applications)",
        t.elapsed(),
        horn.proof_size()
    );
    println!("hypotheses:");
    for h in &horn.hypotheses {
        println!("  {h}");
    }
    println!("conclusion:\n  {}", horn.conclusion);

    // 2. Gate-level instances for several (n, L).
    for (n, l) in [(1, 2), (2, 2), (2, 3)] {
        let t = Instant::now();
        let inst = QspInstance::new(n, l);
        let (enc, enc_opt) = inst.encodings()?;
        println!("\nQSP instance n = {n}, L = {l} (dimension {}):", inst.dim);
        println!("  Enc(qsp)  = {enc}");
        println!("  Enc(qsp') = {enc_opt}");
        assert!(inst.hypotheses_hold(1e-8));
        println!("  all 8 hypotheses hold on the gate model");
        assert!(inst.programs_equal(1e-7));
        println!(
            "  ⟦qsp⟧ = ⟦qsp'⟧ verified on {} probe states in {:?}",
            inst.dim * inst.dim,
            t.elapsed()
        );
    }

    println!(
        "\nEach loop iteration of qsp' saves the S and S⁻¹ reflections —\nthe optimization of Childs et al., certified algebraically once,\nfor every dimension."
    );
    Ok(())
}
