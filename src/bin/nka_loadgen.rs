//! `nka-loadgen` — a load generator and differential checker for the
//! Serve v2 socket server.
//!
//! ```text
//! nka-loadgen --connect <addr> [--connections M] [--iterations K]
//!             [--rate QPS] [--json] FILE…
//! ```
//!
//! Replays the request lines of the given JSONL corpora (e.g.
//! `tests/data/*.jsonl`) over `M` concurrent connections, `K` passes
//! each, optionally rate-limited to `QPS` queries/sec per connection —
//! and diffs **every** response against what a sequential in-process
//! [`Session`] answers for the same line (the semantics of `nka batch`),
//! comparing [`wire::stable_response_projection`]s so only the volatile
//! per-response `stats`/`micros` fields are excused. Zero tolerance:
//! any divergence is printed and the exit code is `1`.
//!
//! `--connect` takes the same address syntax as `nka serve --listen`
//! (`host:port` or `unix:/path`); `--json` must match the server's
//! `--json` so the expected rendering agrees. The summary line reports
//! client-observed round-trip latency (p50/p99/p999, the CI smoke gate
//! greps for it) and throughput:
//!
//! ```text
//! loadgen: 1200 queries over 4 connections in 0.52s (2307.7 q/s), \
//! p50=183.2µs p99=412.5µs p999=1.1ms, 0 diffs
//! ```
//!
//! Exit codes: `0` every response matched, `1` any diff, `2` usage /
//! connect / IO error.

use nka_core::api::{wire, Session};
use nka_core::serve::{fmt_ns, HistogramSnapshot, LatencyHistogram, ListenAddr};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:\n  nka-loadgen --connect ADDR [--connections M] [--iterations K]\n              [--rate QPS] [--json] FILE…\n\nReplays the request lines of FILE… over M concurrent connections\n(K passes each) against a running `nka serve --listen ADDR` and diffs\nevery response against a sequential in-process session. ADDR is\n'host:port' or 'unix:/path'; pass --json iff the server runs --json.\n--rate caps each connection at QPS queries/sec (default: unlimited).\n\nexit codes: 0 all responses matched, 1 any diff, 2 usage/IO error";

/// One corpus entry: the raw request line and the expected
/// comparison-stable response projection.
struct Item {
    request: String,
    expected: String,
}

/// What one connection worker brings home.
struct WorkerResult {
    hist: HistogramSnapshot,
    queries: u64,
    diffs: u64,
}

fn connect(addr: &ListenAddr) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
    match addr {
        ListenAddr::Tcp(spec) => {
            let stream = TcpStream::connect(spec.as_str())?;
            stream.set_nodelay(true)?;
            let reader = stream.try_clone()?;
            Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
        }
        #[cfg(unix)]
        ListenAddr::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            let reader = stream.try_clone()?;
            Ok((Box::new(BufReader::new(reader)), Box::new(stream)))
        }
        #[cfg(not(unix))]
        ListenAddr::Unix(path) => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!("unix sockets unsupported here: {}", path.display()),
        )),
    }
}

/// Replays the corpus `iterations` times over one connection,
/// round-trip per request, diffing every response.
fn run_connection(
    id: usize,
    addr: &ListenAddr,
    items: &[Item],
    iterations: usize,
    min_gap: Option<Duration>,
) -> Result<WorkerResult, String> {
    let (mut reader, mut writer) =
        connect(addr).map_err(|err| format!("connection {id}: connect failed: {err}"))?;
    let hist = LatencyHistogram::new();
    let mut diffs = 0u64;
    let mut queries = 0u64;
    let mut line = String::new();
    for _ in 0..iterations {
        for item in items {
            let start = Instant::now();
            writer
                .write_all(item.request.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .map_err(|err| format!("connection {id}: write failed: {err}"))?;
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|err| format!("connection {id}: read failed: {err}"))?;
            if n == 0 {
                return Err(format!("connection {id}: server closed mid-stream"));
            }
            let elapsed = start.elapsed();
            hist.record(elapsed);
            queries += 1;
            let got = wire::stable_response_projection(&line);
            if got != item.expected {
                diffs += 1;
                if diffs <= 5 {
                    eprintln!(
                        "diff on connection {id}:\n  request:  {}\n  expected: {}\n  got:      {}",
                        item.request, item.expected, got
                    );
                }
            }
            if let Some(gap) = min_gap {
                if elapsed < gap {
                    std::thread::sleep(gap - elapsed);
                }
            }
        }
    }
    Ok(WorkerResult {
        hist: hist.snapshot(),
        queries,
        diffs,
    })
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut connect_addr: Option<ListenAddr> = None;
    let mut connections: usize = 4;
    let mut iterations: usize = 1;
    let mut rate: Option<f64> = None;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(value) => connect_addr = Some(ListenAddr::parse(&value)),
                None => {
                    eprintln!("--connect needs an address ('host:port' or 'unix:/path')");
                    return usage();
                }
            },
            "--connections" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => connections = n,
                _ => {
                    eprintln!("--connections needs a positive integer");
                    return usage();
                }
            },
            "--iterations" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => iterations = n,
                _ => {
                    eprintln!("--iterations needs a positive integer");
                    return usage();
                }
            },
            "--rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(qps) if qps > 0.0 && qps.is_finite() => rate = Some(qps),
                _ => {
                    eprintln!("--rate needs a positive queries/sec figure");
                    return usage();
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::from(0);
            }
            _ => files.push(arg),
        }
    }
    let Some(addr) = connect_addr else {
        eprintln!("--connect is required");
        return usage();
    };
    if files.is_empty() {
        eprintln!("at least one corpus FILE is required");
        return usage();
    }

    // Load the corpora and compute the expected projections with one
    // sequential warm session — exactly the semantics of `nka batch`.
    // Verdicts and payloads are cache-independent, so the projections
    // hold for any pool size and interleaving on the server side.
    let mut session = Session::new();
    let mut items: Vec<Item> = Vec::new();
    for path in &files {
        let content = match std::fs::read_to_string(path) {
            Ok(content) => content,
            Err(err) => {
                eprintln!("cannot read {path:?}: {err}");
                return ExitCode::from(2);
            }
        };
        for line in content.lines() {
            let rendered = match wire::decode_request(line) {
                Ok(None) => continue, // blank/comment: no response owed
                Ok(Some(query)) => {
                    let resp = session.run(&query);
                    if json {
                        wire::encode_response(&query, &resp)
                    } else {
                        wire::encode_response_text(&query, &resp)
                    }
                }
                Err(err) => {
                    if json {
                        wire::encode_error(&err)
                    } else {
                        format!("error: {err}")
                    }
                }
            };
            items.push(Item {
                request: line.to_owned(),
                expected: wire::stable_response_projection(&rendered),
            });
        }
    }
    if items.is_empty() {
        eprintln!("the corpora contain no requests");
        return ExitCode::from(2);
    }

    let min_gap = rate.map(|qps| Duration::from_secs_f64(1.0 / qps));
    let items = Arc::new(items);
    let started = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|id| {
            let items = Arc::clone(&items);
            let addr = addr.clone();
            std::thread::spawn(move || run_connection(id, &addr, &items, iterations, min_gap))
        })
        .collect();

    let mut hist = HistogramSnapshot::empty();
    let mut queries = 0u64;
    let mut diffs = 0u64;
    let mut failed = false;
    for handle in handles {
        match handle.join() {
            Ok(Ok(result)) => {
                hist.merge(&result.hist);
                queries += result.queries;
                diffs += result.diffs;
            }
            Ok(Err(msg)) => {
                eprintln!("{msg}");
                failed = true;
            }
            Err(_) => {
                eprintln!("a connection worker panicked");
                failed = true;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = if elapsed > 0.0 {
        queries as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "loadgen: {queries} queries over {connections} connections in {elapsed:.2}s ({qps:.1} q/s), p50={} p99={} p999={}, {diffs} diffs",
        fmt_ns(hist.quantile(0.50)),
        fmt_ns(hist.quantile(0.99)),
        fmt_ns(hist.quantile(0.999)),
    );
    if failed {
        ExitCode::from(2)
    } else if diffs > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::from(0)
    }
}
