//! `nka` — a command-line front end for the NKA toolkit.
//!
//! Every subcommand is a thin adapter over the Query API v1
//! ([`nka_core::api`]): arguments become a typed [`Query`], one warm
//! [`Session`] answers it, and the structured [`Verdict`] is rendered as
//! text or (with `--json`) one JSON line.
//!
//! ```text
//! nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'
//!                                      decide ⊢NKA e = f
//! nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'
//!                                      decide ⊢KA e = f (Remark 2.1:
//!                                      language equivalence, = NKA on 1*K)
//! nka [--json] series '<expr>' [max-len]
//!                                      print the truncated power series
//! nka [--budget N] [--json] prove '<lhs>' '<rhs>' [hyp]…
//!                                      search for a rewrite proof under
//!                                      hypotheses of the form 'l = r'
//! nka [--budget N] [--stats] [--json] batch [FILE]
//!                                      run a stream of queries (JSONL or
//!                                      'e = f' per line; FILE or '-' =
//!                                      stdin) on one warm engine
//! nka [--budget N] [--stats] [--json] serve
//!                                      line-oriented request/response
//!                                      loop on stdin/stdout
//! nka encode-demo                      encode a sample quantum program
//! ```
//!
//! `--budget N` caps every subset construction at `N` DFA states
//! (default 100 000) and `--stats` prints the engine's cache counters to
//! stderr at exit. The wire format of `batch`/`serve` is documented in
//! [`nka_core::api::wire`].
//!
//! Exit codes: `0` the judgment holds / a proof was found / output was
//! produced; `1` it does not hold (or no proof was found within the
//! search budget); `2` usage or parse error; `3` the decision engine ran
//! out of its state budget. `batch` exits `0` when every line was
//! answered (whatever the verdicts), `2` if any line was malformed, else
//! `3` if any query exhausted the budget. `serve` always exits `0` at
//! end of input.
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin nka -- decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- --json ka 'p + p' 'p'
//! cargo run --bin nka -- series '(a + a)*' 4
//! cargo run --bin nka -- prove 'm1 (m0 p + m1)' 'm1' 'm1 m1 = m1' 'm1 m0 = 0'
//! echo '(p q)* p = p (q p)*' | cargo run --bin nka -- batch --json
//! ```

use nka_core::api::{wire, ApiError, Query, Session, Verdict};
use nka_core::Judgment;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// `println!` that tolerates a closed stdout (`nka … | head` must exit
/// cleanly, not panic on EPIPE like the std macro does).
macro_rules! out {
    ($($arg:tt)*) => {{
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// `print!` with the same EPIPE tolerance.
macro_rules! out_raw {
    ($($arg:tt)*) => {{
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}

const EXIT_OK: u8 = 0;
const EXIT_NO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BUDGET: u8 = 3;

const USAGE: &str = "usage:\n  nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'\n  nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'\n  nka [--json] series '<expr>' [max-len]\n  nka [--budget N] [--json] prove '<lhs>' '<rhs>' ['l = r'…]\n  nka [--budget N] [--stats] [--json] batch [FILE]   (FILE or '-' = stdin)\n  nka [--budget N] [--stats] [--json] serve\n  nka encode-demo\n\nbatch/serve read one request per line: either JSONL\n  {\"op\":\"nka_eq\",\"lhs\":\"(p q)* p\",\"rhs\":\"p (q p)*\"}\n  (ops: nka_eq, ka_eq, series [expr, max_len], prove [lhs, rhs, hyps])\nor the shorthand 'e = f'; '#' comments and blank lines are skipped.\n\nexit codes: 0 holds/proved, 1 does not hold/no proof, 2 usage or parse\nerror, 3 budget exceeded; batch: 0 all answered, 2 any malformed line,\nelse 3 any budget-exhausted query; serve: 0 at end of input";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let mut budget: usize = 100_000;
    let mut stats = false;
    let mut json = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let Some(value) = args.next() else {
                    eprintln!("--budget needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => budget = n,
                    _ => {
                        eprintln!("--budget needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--stats" => stats = true,
            "--json" => json = true,
            "--help" | "-h" => {
                // An explicit help request is a success, not a usage error.
                out!("{USAGE}");
                return ExitCode::from(EXIT_OK);
            }
            _ => rest.push(arg),
        }
    }

    let mut session = Session::with_budget(budget);
    let code = match rest.first().map(String::as_str) {
        Some("decide") if rest.len() == 3 => {
            one_shot(&mut session, json, Query::nka_eq(&rest[1], &rest[2]))
        }
        Some("ka") if rest.len() == 3 => {
            one_shot(&mut session, json, Query::ka_eq(&rest[1], &rest[2]))
        }
        Some("series") if rest.len() >= 2 => {
            let max_len = match rest.get(2) {
                None => nka_core::api::DEFAULT_SERIES_MAX_LEN,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("max-len must be a non-negative integer, got {raw:?}");
                        return usage();
                    }
                },
            };
            one_shot(&mut session, json, Query::series(&rest[1], max_len))
        }
        Some("prove") if rest.len() >= 3 => one_shot(
            &mut session,
            json,
            Query::prove(&rest[1], &rest[2], &rest[3..]),
        ),
        Some("batch") if rest.len() <= 2 => {
            batch(&mut session, json, rest.get(1).map(String::as_str))
        }
        Some("serve") if rest.len() == 1 => serve(&mut session, json),
        Some("encode-demo") => encode_demo(),
        _ => return usage(),
    };
    if stats {
        let s = session.stats();
        eprintln!(
            "engine stats: {} NKA + {} KA queries, {} verdict hits, {} compiles ({} cached), {} determinizations ({} cached)",
            s.nka_queries,
            s.ka_queries,
            s.answer_hits,
            s.compile_misses,
            s.compile_hits,
            s.dfa_misses,
            s.dfa_hits,
        );
    }
    code
}

/// Exit code for one answered query.
fn verdict_exit(verdict: &Verdict) -> u8 {
    match verdict {
        Verdict::Holds | Verdict::Proved { .. } | Verdict::Series { .. } => EXIT_OK,
        Verdict::Refuted | Verdict::Exhausted { .. } => EXIT_NO,
        Verdict::BudgetExhausted { .. } => EXIT_BUDGET,
    }
}

/// Runs one CLI-argument query through the session and renders it.
fn one_shot(session: &mut Session, json: bool, query: Result<Query, ApiError>) -> ExitCode {
    let query = match query {
        Ok(query) => query,
        Err(err) => {
            eprintln!("{}", err.render());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let resp = session.run(&query);
    if json {
        out!("{}", wire::encode_response(&query, &resp));
    } else if let (Query::Series { expr, .. }, Verdict::Series { max_len, terms }) =
        (&query, &resp.verdict)
    {
        // The wire rendering is one line per response; interactively a
        // term per line reads better.
        out!("{{{{{expr}}}}} up to length {max_len}:");
        for (word, coeff) in terms {
            out!("  {coeff} · {word}");
        }
        if terms.is_empty() {
            out!("  (the zero series)");
        }
    } else {
        out!("{}", wire::encode_response_text(&query, &resp));
        if let Verdict::BudgetExhausted { .. } = resp.verdict {
            eprintln!("hint: retry with a larger --budget");
        }
        // The full proof rendering stays a human-surface extra.
        if let (Query::Prove { hyps, .. }, Some(proof)) = (&query, &resp.proof) {
            let judgments: Vec<Judgment> = hyps
                .iter()
                .map(|(l, r)| Judgment::Eq(l.clone(), r.clone()))
                .collect();
            match proof.check(&judgments) {
                Ok(_) => match nka_core::render::render(proof, &judgments) {
                    Ok(text) => out_raw!("\n{text}"),
                    Err(err) => eprintln!("(rendering failed: {err})"),
                },
                Err(err) => {
                    eprintln!("internal error: prover output failed to re-check: {err}");
                    return ExitCode::from(EXIT_NO);
                }
            }
        }
    }
    ExitCode::from(verdict_exit(&resp.verdict))
}

/// Handles one wire line for `batch`/`serve`; returns its exit class.
fn run_line(session: &mut Session, json: bool, line: &str) -> Option<u8> {
    match wire::decode_request(line) {
        Ok(None) => None, // blank / comment
        Ok(Some(query)) => {
            let resp = session.run(&query);
            if json {
                out!("{}", wire::encode_response(&query, &resp));
            } else {
                out!("{}", wire::encode_response_text(&query, &resp));
            }
            Some(verdict_exit(&resp.verdict))
        }
        Err(err) => {
            if json {
                out!("{}", wire::encode_error(&err));
            } else {
                out!("error: {err}");
            }
            eprintln!("{}", err.render());
            Some(EXIT_USAGE)
        }
    }
}

/// Folds per-line exit classes into the batch exit code: malformed input
/// dominates, then budget exhaustion; verdicts themselves are data, not
/// failures.
fn fold_exit(acc: u8, line_code: u8) -> u8 {
    match (acc, line_code) {
        (EXIT_USAGE, _) | (_, EXIT_USAGE) => EXIT_USAGE,
        (EXIT_BUDGET, _) | (_, EXIT_BUDGET) => EXIT_BUDGET,
        _ => EXIT_OK,
    }
}

/// `nka batch [FILE]`: the whole stream shares this one warm session, so
/// repeated expressions and queries amortize to cache hits.
fn batch(session: &mut Session, json: bool, source: Option<&str>) -> ExitCode {
    let reader: Box<dyn BufRead> = match source {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(err) => {
                eprintln!("cannot open {path:?}: {err}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut code = EXIT_OK;
    for (lineno, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(err) => {
                eprintln!("read error on line {}: {err}", lineno + 1);
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if let Some(line_code) = run_line(session, json, &line) {
            if line_code == EXIT_USAGE {
                eprintln!("  (line {})", lineno + 1);
            }
            code = fold_exit(code, line_code);
        }
    }
    ExitCode::from(code)
}

/// `nka serve`: request/response loop for driving from another process —
/// one response line per request line, flushed immediately.
fn serve(session: &mut Session, json: bool) -> ExitCode {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        run_line(session, json, &line);
        if std::io::stdout().flush().is_err() {
            break; // downstream went away; exit quietly
        }
    }
    ExitCode::from(EXIT_OK)
}

fn encode_demo() -> ExitCode {
    use nka_qprog::{EncoderSetting, Program};
    use qsim_quantum::{gates, states, Measurement};

    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).expect("encoding succeeds");
    out!("program:   {w}");
    out!("encoding:  {enc}");
    let out = w.run(&states::basis_density(2, 1));
    out!("⟦P⟧(|1⟩⟨1|) = |0⟩⟨0| with trace {:.6}", out.trace().re);
    ExitCode::from(EXIT_OK)
}
