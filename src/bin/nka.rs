//! `nka` — a command-line front end for the NKA toolkit.
//!
//! Every subcommand is a thin adapter over the Query API v1
//! ([`nka_core::api`]): arguments become a typed [`Query`], one warm
//! [`Session`] answers it, and the structured [`Verdict`] is rendered as
//! text or (with `--json`) one JSON line.
//!
//! ```text
//! nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'
//!                                      decide ⊢NKA e = f
//! nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'
//!                                      decide ⊢KA e = f (Remark 2.1:
//!                                      language equivalence, = NKA on 1*K)
//! nka [--json] series '<expr>' [max-len]
//!                                      print the truncated power series
//! nka [--budget N] [--json] prove '<lhs>' '<rhs>' [hyp]…
//!                                      search for a rewrite proof under
//!                                      hypotheses of the form 'l = r'
//! nka [--budget N] [--stats] [--json] prog-eq '<prog>' '<prog>'
//!                                      decide Enc(p) = Enc(q) for two
//!                                      quantum while-programs (Def. 4.4,
//!                                      sound by Thm 4.5)
//! nka [--stats] [--json] hoare '<effect>' '<prog>' '<effect>'
//!                                      check {pre} prog {post} via wlp;
//!                                      the verdict carries the Thm 7.8
//!                                      encoded inequality
//! nka [--budget N] [--stats] [--json] analyze '<prog>' [pass…]
//!                                      run the static analyzer: Tier A
//!                                      syntactic lints plus Tier B
//!                                      engine-backed findings, each
//!                                      carrying a replayable prog-eq
//!                                      certificate (dead code ⇔
//!                                      zeroness, Def. 4.4)
//! nka [--budget N] [--stats] [--json] [--max-steps N] [--beam N]
//!     optimize '<prog>' [rule…]        greedily apply the rewrite
//!                                      catalog to fixpoint; every
//!                                      applied step is engine-certified
//!                                      and the result carries a
//!                                      replayable prog-eq certificate
//! nka [--budget N] [--stats] [--json] [--jobs N]
//!     [--max-queries-per-worker N] batch [FILE]
//!                                      run a stream of queries (JSONL or
//!                                      'e = f' per line; FILE or '-' =
//!                                      stdin) on one warm engine, or
//!                                      sharded over N worker sessions
//! nka [--budget N] [--stats] [--json] [--max-queries-per-worker N]
//!     [--max-arena-nodes N] serve
//!                                      line-oriented request/response
//!                                      loop on stdin/stdout
//! nka … serve --listen <addr> [--listen <addr>…] [--workers N]
//!     [--queue-depth N] [--max-pending N] [--stats-interval SECS]
//!                                      concurrent socket server (Serve
//!                                      v2): TCP ('host:port') and Unix
//!                                      ('unix:/path') listeners over a
//!                                      worker pool of warm sessions —
//!                                      see [`nka_core::serve`]
//! nka encode-demo                      encode a sample quantum program
//! ```
//!
//! `--budget N` caps every subset construction at `N` DFA states
//! (default 100 000) and `--stats` prints the engine's cache counters,
//! per-stream expression-size accounting, the arena lifecycle footprint
//! (persistent vs scratch nodes, reclamation totals), and per-op
//! latency histograms (p50/p99/p999 + queries/sec) to stderr at exit;
//! with `--json` the report is one machine-readable JSON object instead
//! (same counters, plus the raw log-spaced histogram buckets — see
//! [`nka_core::serve::stats::StatsBlock`]). `--jobs N` (batch only) shards the stream across `N`
//! parallel worker sessions ([`run_batch_parallel_traced`]); verdicts, output
//! order, and exit codes are identical to `--jobs 1`. The parallel path
//! reads and answers the stream in bounded chunks, so it works on live
//! pipelines in O(chunk) memory (each chunk's responses flush before
//! the next chunk is read; `--jobs 1` remains fully line-by-line).
//!
//! Memory governance (`serve`/`batch`): `--max-queries-per-worker N`
//! recycles a worker session's engine caches after `N` queries, and
//! `--max-queries-per-worker`-recycled workers keep cumulative
//! `--stats`; `serve --max-arena-nodes M` exits with code `3` once the
//! process-wide resident arena exceeds `M` nodes — the supervisor
//! restart is the only way to shed *persistent* arena growth, and the
//! exit is the defense-in-depth backstop behind the scoped reclamation
//! the prover already does per query. The socket server drains first
//! (stops accepting and reading, answers everything already read),
//! then exits — same contract on SIGTERM/SIGINT, with exit code `0`.
//! The wire format of `batch`/`serve` is documented in
//! [`nka_core::api::wire`]; `nka-loadgen` (a sibling binary) replays
//! JSONL corpora over M concurrent socket connections and diffs every
//! response against a sequential in-process session.
//!
//! Exit codes: `0` the judgment holds / a proof was found / output was
//! produced; `1` it does not hold (or no proof was found within the
//! search budget); `2` usage or parse error; `3` the decision engine ran
//! out of its state budget. `batch` exits `0` when every line was
//! answered (whatever the verdicts), `2` if any line was malformed, else
//! `3` if any query exhausted the budget. `serve` exits `0` at end of
//! input, or `3` when `--max-arena-nodes` trips mid-stream.
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin nka -- decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- --json ka 'p + p' 'p'
//! cargo run --bin nka -- series '(a + a)*' 4
//! cargo run --bin nka -- prove 'm1 (m0 p + m1)' 'm1' 'm1 m1 = m1' 'm1 m0 = 0'
//! echo '(p q)* p = p (q p)*' | cargo run --bin nka -- batch --json
//! ```

use nka_core::api::json::Json;
use nka_core::api::{
    run_batch_parallel_traced, wire, AnalysisStats, ApiError, BatchSnapshot, OptimizeStats, Query,
    Session, SessionOptions, SnapshotStats, Verdict, DEFAULT_OPTIMIZE_BEAM,
    DEFAULT_OPTIMIZE_MAX_STEPS,
};
use nka_core::serve::{ListenAddr, OpHistograms, ServeConfig, Server, StatsBlock};
use nka_core::snapshot::Snapshot;
use nka_core::Judgment;
use nka_wfa::DeciderStats;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// `println!` that tolerates a closed stdout (`nka … | head` must exit
/// cleanly, not panic on EPIPE like the std macro does).
macro_rules! out {
    ($($arg:tt)*) => {{
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// `print!` with the same EPIPE tolerance.
macro_rules! out_raw {
    ($($arg:tt)*) => {{
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}

const EXIT_OK: u8 = 0;
const EXIT_NO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BUDGET: u8 = 3;

const USAGE: &str = "usage:\n  nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'\n  nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'\n  nka [--json] series '<expr>' [max-len]\n  nka [--budget N] [--json] prove '<lhs>' '<rhs>' ['l = r'…]\n  nka [--budget N] [--stats] [--json] prog-eq '<prog>' '<prog>'\n  nka [--stats] [--json] hoare '<effect>' '<prog>' '<effect>'\n  nka [--budget N] [--stats] [--json] analyze '<prog>' [pass…]\n  nka [--budget N] [--stats] [--json] [--max-steps N] [--beam N]\n      optimize '<prog>' [rule…]\n  nka [--budget N] [--stats] [--json] [--jobs N] [--max-queries-per-worker N]\n      [--snapshot FILE] batch [FILE]   (FILE or '-' = stdin)\n  nka [--budget N] [--stats] [--json] [--max-queries-per-worker N]\n      [--max-arena-nodes N] [--snapshot FILE] serve\n  nka … serve --listen ADDR [--listen ADDR…] [--workers N] [--queue-depth N]\n      [--max-pending N] [--max-line-bytes N] [--stats-interval SECS]\n  nka snapshot dump FILE [CORPUS]   (run CORPUS or stdin, dump warm caches)\n  nka [--json] snapshot inspect FILE\n  nka snapshot verify FILE\n  nka encode-demo\n\nprog-eq decides Enc(p) = Enc(q) for two quantum while-programs (one\nshared encoder setting, Definition 4.4); hoare checks the triple\n{pre} prog {post} via wlp and reports the Theorem 7.8 encoding.\nanalyze lints a program: Tier A passes (unused_qubit, unreachable_code,\nself_inverse_pair, constant_guard, metrics) are purely syntactic;\nTier B passes (dead_branch, redundant_fragment, peephole) are decided\nby the engine and every finding carries a replayable prog-eq\ncertificate. Naming passes after the program restricts the run.\noptimize applies what analyze reports, then re-analyzes to fixpoint:\ngreedy rule application over the catalog (dead-branch, branch-fusion,\ngate-fusion, dead-loop, loop-peeling, double-reset, double-measure,\nabort-sink, uncompute) — every applied step is certified prog-eq by\nthe engine before it lands (refuted candidates are counted, never\napplied), and the result carries the step trace plus a final\nreplayable certificate. Naming rules after the program restricts the\ncatalog (and arms the growing peel direction for 'loop-peeling');\n--max-steps caps the fixpoint iteration (default 32), --beam bounds\nhow many certified candidates are weighed per step (default 1).\nPrograms: 'qubits N; h q0; cnot q0 q1; if q0 {…} else {…}; while q0 {…}'\n(gates: h x y z s t cnot cz swap; also init qK, skip, abort).\nEffects: sums of scaled projectors, e.g. 'I', '0.5 I', 'ket(01)', 'q0=1'.\n\nbatch/serve read one request per line: either JSONL\n  {\"op\":\"nka_eq\",\"lhs\":\"(p q)* p\",\"rhs\":\"p (q p)*\"}\n  (ops: nka_eq, ka_eq, series [expr, max_len], prove [lhs, rhs, hyps],\n   prog_eq [p, q], hoare [pre, prog, post], analyze [prog, passes],\n   optimize [prog, rules, max_steps, beam])\nor the shorthand 'e = f'; '#' comments and blank lines are skipped.\n--jobs N shards a batch across N parallel worker sessions in bounded\nchunks; verdicts, output order, and exit codes are identical to\n--jobs 1. --max-queries-per-worker N recycles a session's engine\ncaches every N queries (memory backstop; verdicts unchanged);\nserve --max-arena-nodes N exits 3 once the process-wide resident\nexpression arena exceeds N nodes, so a supervisor can restart it.\n\n--snapshot FILE warm-starts batch/serve from a verdict-cache snapshot\nand re-dumps it on exit (and on every engine recycle): decided\nverdicts, star-free word multisets, and analyzer certificates survive\nrestarts. A missing file is a cold first boot; a corrupt, truncated,\nor config-mismatched file degrades to a cold start with a warning —\nnever to a wrong answer. With batch --jobs N every worker warm-starts\nfrom the loaded entries and the dump is their deduplicated union. 'nka\nsnapshot dump|inspect|verify' create and examine snapshot files\noffline.\n\nserve --listen ADDR starts the concurrent socket server instead of the\nstdin loop: ADDR is 'host:port' (TCP; repeatable) or 'unix:/path'.\n--workers N sizes the pool of warm sessions (default: CPU count, max 8);\n--queue-depth N bounds each connection's in-flight window (backpressure:\nthe server stops reading a connection whose window is full, default 64);\n--max-pending N is the server-wide hard cap past which requests are\nanswered with a structured 'overloaded' error (default 1024);\n--max-line-bytes N rejects longer request lines (default 1 MiB);\n--stats-interval SECS prints a --stats snapshot to stderr periodically.\nSIGTERM/SIGINT (and --max-arena-nodes) drain gracefully: stop accepting,\nanswer every request already read, then exit (0 for signals, 3 for the\narena cap). nka-loadgen replays corpora against the server and diffs\nevery response against a sequential in-process session.\n\nexit codes: 0 holds/proved, 1 does not hold/no proof, 2 usage or parse\nerror, 3 budget exceeded; analyze: 0 clean or info-only findings,\n1 any warning-severity finding; optimize: 0 (the result is always\ncertified — rewritten or returned unchanged), 3 only on setup failure;\nbatch: 0 all answered, 2 any malformed\nline, else 3 any budget-exhausted query; serve: 0 at end of input or\nafter a signal-initiated drain, 3 if --max-arena-nodes tripped";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

/// What `--stats` aggregates while a stream runs: engine counters plus
/// the Expr API v2 term-size accounting, from whichever sessions
/// answered it. Rendered at exit through [`StatsBlock`] (human text or,
/// with `--json`, one JSON object).
struct StatsReport {
    stats: DeciderStats,
    expr_nodes: u64,
    expr_subterms: u64,
    engine_recycles: u64,
    analysis: AnalysisStats,
    optimize: OptimizeStats,
    snapshot: SnapshotStats,
}

impl StatsReport {
    fn of_session(session: &Session) -> StatsReport {
        StatsReport {
            stats: session.stats(),
            expr_nodes: session.expr_nodes_seen(),
            expr_subterms: session.expr_subterms_seen(),
            engine_recycles: session.engine_recycles(),
            analysis: session.analysis_stats(),
            optimize: session.optimize_stats(),
            snapshot: session.snapshot_stats(),
        }
    }

    /// Pairs the engine aggregates with the CLI's latency histograms
    /// into the renderable report.
    fn into_block(self, elapsed: Duration, hists: &OpHistograms) -> StatsBlock {
        let ops = hists.snapshot();
        StatsBlock {
            engine: self.stats,
            expr_nodes: self.expr_nodes,
            expr_subterms: self.expr_subterms,
            engine_recycles: self.engine_recycles,
            queries: ops.total(),
            elapsed,
            ops,
            analysis: self.analysis,
            optimize: self.optimize,
            snapshot: self.snapshot,
            serve: None,
        }
    }
}

/// Prints the `--stats` report to stderr in the selected format.
fn print_stats(block: &StatsBlock, json: bool) {
    if json {
        eprintln!("{}", block.to_json());
    } else {
        eprint!("{}", block.render_human());
    }
}

fn main() -> ExitCode {
    let mut budget: usize = 100_000;
    let mut stats = false;
    let mut json = false;
    let mut jobs: usize = 1;
    let mut max_queries_per_worker: Option<u64> = None;
    let mut max_arena_nodes: Option<usize> = None;
    let mut listen: Vec<ListenAddr> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut max_pending: Option<usize> = None;
    let mut max_line_bytes: Option<usize> = None;
    let mut stats_interval: Option<Duration> = None;
    let mut snapshot_path: Option<PathBuf> = None;
    let mut max_steps: Option<usize> = None;
    let mut beam: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                let Some(value) = args.next() else {
                    eprintln!("--listen needs an address ('host:port' or 'unix:/path')");
                    return usage();
                };
                listen.push(ListenAddr::parse(&value));
            }
            "--workers" => {
                let Some(value) = args.next() else {
                    eprintln!("--workers needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => workers = Some(n),
                    _ => {
                        eprintln!("--workers needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--queue-depth" => {
                let Some(value) = args.next() else {
                    eprintln!("--queue-depth needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => queue_depth = Some(n),
                    _ => {
                        eprintln!("--queue-depth needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--max-pending" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-pending needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => max_pending = Some(n),
                    _ => {
                        eprintln!("--max-pending needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--max-line-bytes" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-line-bytes needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => max_line_bytes = Some(n),
                    _ => {
                        eprintln!("--max-line-bytes needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--stats-interval" => {
                let Some(value) = args.next() else {
                    eprintln!("--stats-interval needs a value in seconds");
                    return usage();
                };
                match value.parse::<f64>() {
                    Ok(secs) if secs > 0.0 && secs.is_finite() => {
                        stats_interval = Some(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        eprintln!(
                            "--stats-interval needs a positive number of seconds, got {value:?}"
                        );
                        return usage();
                    }
                }
            }
            "--budget" => {
                let Some(value) = args.next() else {
                    eprintln!("--budget needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => budget = n,
                    _ => {
                        eprintln!("--budget needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--jobs" => {
                let Some(value) = args.next() else {
                    eprintln!("--jobs needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--max-queries-per-worker" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-queries-per-worker needs a value");
                    return usage();
                };
                match value.parse::<u64>() {
                    Ok(n) if n > 0 => max_queries_per_worker = Some(n),
                    _ => {
                        eprintln!(
                            "--max-queries-per-worker needs a positive integer, got {value:?}"
                        );
                        return usage();
                    }
                }
            }
            "--max-arena-nodes" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-arena-nodes needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => max_arena_nodes = Some(n),
                    _ => {
                        eprintln!("--max-arena-nodes needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--snapshot" => {
                let Some(value) = args.next() else {
                    eprintln!("--snapshot needs a file path");
                    return usage();
                };
                snapshot_path = Some(PathBuf::from(value));
            }
            "--max-steps" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-steps needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => max_steps = Some(n),
                    _ => {
                        eprintln!("--max-steps needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--beam" => {
                let Some(value) = args.next() else {
                    eprintln!("--beam needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => beam = Some(n),
                    _ => {
                        eprintln!("--beam needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--stats" => stats = true,
            "--json" => json = true,
            "--help" | "-h" => {
                // An explicit help request is a success, not a usage error.
                out!("{USAGE}");
                return ExitCode::from(EXIT_OK);
            }
            _ => rest.push(arg),
        }
    }

    let command = rest.first().map(String::as_str);
    if jobs > 1 && command != Some("batch") {
        eprintln!("--jobs only applies to batch");
        return usage();
    }
    if max_queries_per_worker.is_some() && !matches!(command, Some("batch") | Some("serve")) {
        eprintln!("--max-queries-per-worker only applies to batch and serve");
        return usage();
    }
    if max_arena_nodes.is_some() && command != Some("serve") {
        eprintln!("--max-arena-nodes only applies to serve");
        return usage();
    }
    if !listen.is_empty() && command != Some("serve") {
        eprintln!("--listen only applies to serve");
        return usage();
    }
    if snapshot_path.is_some() && !matches!(command, Some("batch") | Some("serve")) {
        eprintln!("--snapshot only applies to batch and serve (see 'nka snapshot dump')");
        return usage();
    }
    if (max_steps.is_some() || beam.is_some()) && command != Some("optimize") {
        eprintln!("--max-steps/--beam only apply to optimize");
        return usage();
    }
    if listen.is_empty()
        && (workers.is_some()
            || queue_depth.is_some()
            || max_pending.is_some()
            || max_line_bytes.is_some()
            || stats_interval.is_some())
    {
        eprintln!(
            "--workers/--queue-depth/--max-pending/--max-line-bytes/--stats-interval only apply to serve --listen"
        );
        return usage();
    }

    let opts = match SessionOptions::builder()
        .max_dfa_states(budget)
        .recycle_after_queries(max_queries_per_worker)
        .snapshot_path(snapshot_path.clone())
        .build()
    {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("{}", err.render());
            return usage();
        }
    };
    let mut session = Session::with_options(opts.clone());
    // Warm-start batch / the stdin serve loop (the socket server loads
    // its own copy in `Server::bind`, and the parallel batch path
    // manages its own shared `BatchSnapshot`). A missing file is a
    // normal first boot; a bad one degrades to cold with a plain-text
    // warning.
    let parallel_batch = command == Some("batch") && jobs > 1;
    if let (Some(path), true) = (&snapshot_path, listen.is_empty() && !parallel_batch) {
        if path.exists() {
            match session.load_snapshot_file(path) {
                Ok(n) => eprintln!("snapshot: restored {n} entries from {}", path.display()),
                Err(err) => eprintln!(
                    "warning: snapshot {} not restored ({err}); starting cold",
                    path.display()
                ),
            }
        }
    }
    // Per-op latency histograms behind `--stats`; every path records
    // into them (the socket server keeps its own inside the pool).
    let hists = OpHistograms::new();
    let started = Instant::now();
    // The parallel batch path runs on worker sessions, not `session`;
    // it reports its aggregated stats here. The socket server reports
    // a complete block of its own (including the serve counters).
    let mut report: Option<StatsReport> = None;
    let mut server_block: Option<StatsBlock> = None;
    let code = match command {
        Some("serve") if rest.len() == 1 && !listen.is_empty() => {
            let cfg = ServeConfig {
                session: opts.clone(),
                workers: workers.unwrap_or_else(|| ServeConfig::default().workers),
                queue_depth: queue_depth.unwrap_or_else(|| ServeConfig::default().queue_depth),
                max_pending: max_pending.unwrap_or_else(|| ServeConfig::default().max_pending),
                max_line_bytes: max_line_bytes
                    .unwrap_or_else(|| ServeConfig::default().max_line_bytes),
                max_arena_nodes,
                json,
                snapshot_path: snapshot_path.clone(),
                ..ServeConfig::default()
            };
            serve_socket(cfg, &listen, stats_interval, json, &mut server_block)
        }
        Some("decide") if rest.len() == 3 => one_shot(
            &mut session,
            json,
            &hists,
            Query::nka_eq(&rest[1], &rest[2]),
        ),
        Some("ka") if rest.len() == 3 => {
            one_shot(&mut session, json, &hists, Query::ka_eq(&rest[1], &rest[2]))
        }
        Some("series") if rest.len() >= 2 => {
            let max_len = match rest.get(2) {
                None => nka_core::api::DEFAULT_SERIES_MAX_LEN,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("max-len must be a non-negative integer, got {raw:?}");
                        return usage();
                    }
                },
            };
            one_shot(&mut session, json, &hists, Query::series(&rest[1], max_len))
        }
        Some("prove") if rest.len() >= 3 => one_shot(
            &mut session,
            json,
            &hists,
            Query::prove(&rest[1], &rest[2], &rest[3..]),
        ),
        Some("prog-eq") if rest.len() == 3 => one_shot(
            &mut session,
            json,
            &hists,
            Query::prog_eq(&rest[1], &rest[2]),
        ),
        Some("hoare") if rest.len() == 4 => one_shot(
            &mut session,
            json,
            &hists,
            Query::hoare(&rest[1], &rest[2], &rest[3]),
        ),
        Some("analyze") if rest.len() >= 2 => one_shot(
            &mut session,
            json,
            &hists,
            Query::analyze(&rest[1], &rest[2..]),
        ),
        Some("optimize") if rest.len() >= 2 => one_shot(
            &mut session,
            json,
            &hists,
            Query::optimize(
                &rest[1],
                &rest[2..],
                max_steps.unwrap_or(DEFAULT_OPTIMIZE_MAX_STEPS),
                beam.unwrap_or(DEFAULT_OPTIMIZE_BEAM),
            ),
        ),
        Some("batch") if rest.len() <= 2 && jobs <= 1 => {
            batch(&mut session, json, &hists, rest.get(1).map(String::as_str))
        }
        Some("batch") if rest.len() <= 2 => batch_parallel(
            &opts,
            json,
            &hists,
            jobs,
            rest.get(1).map(String::as_str),
            snapshot_path.as_deref(),
            &mut report,
        ),
        Some("serve") if rest.len() == 1 => serve(&mut session, json, &hists, max_arena_nodes),
        Some("snapshot") => return snapshot_cmd(&rest[1..], &opts, json),
        Some("encode-demo") => encode_demo(),
        _ => return usage(),
    };
    // Graceful-exit dump for the single-session paths (batch and the
    // stdin serve loop) — the socket server re-dumps in `Server::join`,
    // and the parallel batch path writes its merged `BatchSnapshot`
    // inside `batch_parallel`.
    if let (Some(path), true) = (&snapshot_path, listen.is_empty() && !parallel_batch) {
        match session.save_snapshot(path) {
            Ok(n) => eprintln!("snapshot: dumped {n} entries to {}", path.display()),
            Err(err) => eprintln!("warning: snapshot dump to {} failed: {err}", path.display()),
        }
    }
    if stats {
        let block = match server_block {
            Some(block) => block,
            None => report
                .unwrap_or_else(|| StatsReport::of_session(&session))
                .into_block(started.elapsed(), &hists),
        };
        print_stats(&block, json);
    }
    code
}

/// Exit code for one answered query. Positive verdicts (holds /
/// proved / series / an equivalent program pair / a valid triple) exit
/// 0, negative ones 1, resource exhaustion 3.
fn verdict_exit(verdict: &Verdict) -> u8 {
    match verdict {
        Verdict::BudgetExhausted { .. } => EXIT_BUDGET,
        v if v.is_positive() => EXIT_OK,
        _ => EXIT_NO,
    }
}

/// Runs one CLI-argument query through the session and renders it.
fn one_shot(
    session: &mut Session,
    json: bool,
    hists: &OpHistograms,
    query: Result<Query, ApiError>,
) -> ExitCode {
    let query = match query {
        Ok(query) => query,
        Err(err) => {
            eprintln!("{}", err.render());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let resp = session.run(&query);
    hists.record(query.kind(), resp.elapsed);
    if json {
        out!("{}", wire::encode_response(&query, &resp));
    } else if let (Query::Series { expr, .. }, Verdict::Series { max_len, terms }) =
        (&query, &resp.verdict)
    {
        // The wire rendering is one line per response; interactively a
        // term per line reads better.
        out!("{{{{{expr}}}}} up to length {max_len}:");
        for (word, coeff) in terms {
            out!("  {coeff} · {word}");
        }
        if terms.is_empty() {
            out!("  (the zero series)");
        }
    } else if let (Query::Analyze { prog, .. }, Verdict::Analysis { findings }) =
        (&query, &resp.verdict)
    {
        // The wire rendering is one summary line; interactively each
        // finding gets its caret on the program source, plus the
        // replayable certificate for the Tier B (engine-backed) ones.
        out!("{}", wire::encode_response_text(&query, &resp));
        for finding in findings {
            out!();
            out!("{} [{}]", finding.severity, finding.pass);
            out!(
                "{}",
                nka_syntax::render_caret(
                    prog.source(),
                    finding.span.0,
                    finding.span.1,
                    &finding.message,
                )
            );
            if let Some(cert) = &finding.certificate {
                out!(
                    "  certificate: prog-eq {:?} {:?} (expect: {})",
                    cert.p,
                    cert.q,
                    cert.expect
                );
                if let Some(rule) = cert.rule {
                    out!("  rule: {rule}");
                }
            }
        }
    } else if let (
        Query::Optimize { prog, .. },
        Verdict::Optimized {
            optimized,
            steps,
            certificate,
            note,
            ..
        },
    ) = (&query, &resp.verdict)
    {
        // The wire rendering is one summary line; interactively the
        // before/after pair plus the full engine-certified step trace
        // (every step names its catalog rule and paper citation) reads
        // better, and the final certificate is printed replay-ready.
        out!("{}", wire::encode_response_text(&query, &resp));
        out!();
        out!("before: {}", prog.source());
        out!("after:  {optimized}");
        for (i, step) in steps.iter().enumerate() {
            out!();
            out!(
                "step {}: {} @ {}..{}",
                i + 1,
                step.rule,
                step.span.0,
                step.span.1
            );
            out!("  {}", step.note);
            out!("  cite: {}", step.citation());
        }
        if let Some(note) = note {
            out!();
            out!("note: {note}");
        }
        out!();
        out!(
            "certificate: prog-eq {:?} {:?} (expect: {})",
            certificate.p,
            certificate.q,
            certificate.expect
        );
    } else {
        out!("{}", wire::encode_response_text(&query, &resp));
        if let Verdict::BudgetExhausted { .. } = resp.verdict {
            eprintln!("hint: retry with a larger --budget");
        }
        // The full proof rendering stays a human-surface extra.
        if let (Query::Prove { hyps, .. }, Some(proof)) = (&query, &resp.proof) {
            let judgments: Vec<Judgment> = hyps.iter().map(|(l, r)| Judgment::Eq(*l, *r)).collect();
            match proof.check(&judgments) {
                Ok(_) => match nka_core::render::render(proof, &judgments) {
                    Ok(text) => out_raw!("\n{text}"),
                    Err(err) => eprintln!("(rendering failed: {err})"),
                },
                Err(err) => {
                    eprintln!("internal error: prover output failed to re-check: {err}");
                    return ExitCode::from(EXIT_NO);
                }
            }
        }
    }
    ExitCode::from(verdict_exit(&resp.verdict))
}

/// Emits one answered query as an output line. The sequential and
/// parallel batch paths are contractually required to produce identical
/// output (the CI `--jobs 4` diff enforces it), so both go through
/// here.
fn emit_response(query: &Query, resp: &nka_core::api::Response, json: bool) {
    if json {
        out!("{}", wire::encode_response(query, resp));
    } else {
        out!("{}", wire::encode_response_text(query, resp));
    }
}

/// Emits one request-level error: an output line plus the caret
/// rendering on stderr. Shared by both batch paths for the same
/// reason as [`emit_response`].
fn emit_error(err: &ApiError, json: bool) {
    if json {
        out!("{}", wire::encode_error(err));
    } else {
        out!("error: {err}");
    }
    eprintln!("{}", err.render());
}

/// Handles one wire line for `batch`/`serve`; returns its exit class.
fn run_line(session: &mut Session, json: bool, hists: &OpHistograms, line: &str) -> Option<u8> {
    match wire::decode_request(line) {
        Ok(None) => None, // blank / comment
        Ok(Some(query)) => {
            let resp = session.run(&query);
            hists.record(query.kind(), resp.elapsed);
            emit_response(&query, &resp, json);
            Some(verdict_exit(&resp.verdict))
        }
        Err(err) => {
            emit_error(&err, json);
            Some(EXIT_USAGE)
        }
    }
}

/// Folds per-line exit classes into the batch exit code: malformed input
/// dominates, then budget exhaustion; verdicts themselves are data, not
/// failures.
fn fold_exit(acc: u8, line_code: u8) -> u8 {
    match (acc, line_code) {
        (EXIT_USAGE, _) | (_, EXIT_USAGE) => EXIT_USAGE,
        (EXIT_BUDGET, _) | (_, EXIT_BUDGET) => EXIT_BUDGET,
        _ => EXIT_OK,
    }
}

/// `nka batch [FILE]`: the whole stream shares this one warm session, so
/// repeated expressions and queries amortize to cache hits.
fn batch(
    session: &mut Session,
    json: bool,
    hists: &OpHistograms,
    source: Option<&str>,
) -> ExitCode {
    let reader: Box<dyn BufRead> = match source {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(err) => {
                eprintln!("cannot open {path:?}: {err}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut code = EXIT_OK;
    for (lineno, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(err) => {
                eprintln!("read error on line {}: {err}", lineno + 1);
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if let Some(line_code) = run_line(session, json, hists, &line) {
            if line_code == EXIT_USAGE {
                eprintln!("  (line {})", lineno + 1);
            }
            code = fold_exit(code, line_code);
        }
    }
    ExitCode::from(code)
}

/// One decoded input line of a parallel batch: skippable, an index into
/// the chunk's query/response vectors, or a malformed line kept in
/// place so output order and exit codes match the sequential path.
enum BatchLine {
    Skip,
    Query(usize),
    Error(usize, ApiError),
}

/// Input lines a parallel batch reads and answers per chunk. Bounds the
/// memory of `--jobs N` to O(chunk) and gives live pipelines output at
/// chunk granularity (PR 3's parallel path buffered the entire stream
/// to EOF — the documented limitation this fixes). Large enough that
/// each chunk amortizes its worker threads' spawn cost.
const PARALLEL_CHUNK_LINES: usize = 256;

/// `nka batch --jobs N`: read the stream in chunks of
/// [`PARALLEL_CHUNK_LINES`], shard each chunk's well-formed queries
/// across `N` worker sessions ([`run_batch_parallel_traced`]), and emit one
/// output line per input line in input order before reading the next
/// chunk — byte-for-byte the same verdicts and exit code as the
/// sequential path, with only the per-response `stats`/`micros` fields
/// reflecting the sharded execution. (Worker caches reset per chunk;
/// verdicts are cache-independent, so only throughput varies.) A
/// mid-stream read error matches the sequential path too: the lines
/// read before it are still answered and printed, then the error
/// reports and the exit is `2`.
///
/// `--snapshot FILE` combines with `--jobs N` through a shared
/// [`BatchSnapshot`]: every chunk's workers warm-start from the loaded
/// entries and drain their caches into one merge builder (the serve-v2
/// drain-time merge), and the deduplicated union is written once at end
/// of stream — transient workers no longer forfeit or race over the
/// dump.
#[allow(clippy::too_many_lines)]
fn batch_parallel(
    opts: &SessionOptions,
    json: bool,
    hists: &OpHistograms,
    jobs: usize,
    source: Option<&str>,
    snapshot_path: Option<&std::path::Path>,
    report: &mut Option<StatsReport>,
) -> ExitCode {
    let reader: Box<dyn BufRead> = match source {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(err) => {
                eprintln!("cannot open {path:?}: {err}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut batch_snap = snapshot_path.map(|_| BatchSnapshot::new(opts));
    if let (Some(path), Some(snap)) = (snapshot_path, batch_snap.as_mut()) {
        if path.exists() {
            match snap.load_file(path, opts) {
                Ok(n) => eprintln!("snapshot: restored {n} entries from {}", path.display()),
                Err(err) => eprintln!(
                    "warning: snapshot {} not restored ({err}); starting cold",
                    path.display()
                ),
            }
        }
    }
    let mut agg = StatsReport {
        stats: DeciderStats::default(),
        expr_nodes: 0,
        expr_subterms: 0,
        engine_recycles: 0,
        analysis: AnalysisStats::default(),
        optimize: OptimizeStats::default(),
        snapshot: SnapshotStats::default(),
    };
    let mut code = EXIT_OK;
    let mut read_error: Option<String> = None;
    let mut lineno = 0usize;

    let mut lines: Vec<BatchLine> = Vec::new();
    let mut queries: Vec<Query> = Vec::new();
    let mut input = reader.lines();
    loop {
        // Fill one chunk (or stop early on EOF / read error).
        lines.clear();
        queries.clear();
        while lines.len() < PARALLEL_CHUNK_LINES {
            lineno += 1;
            match input.next() {
                None => break,
                Some(Ok(line)) => {
                    let decoded = match wire::decode_request(&line) {
                        Ok(None) => BatchLine::Skip,
                        Ok(Some(query)) => {
                            queries.push(query);
                            BatchLine::Query(queries.len() - 1)
                        }
                        Err(err) => BatchLine::Error(lineno, err),
                    };
                    lines.push(decoded);
                }
                Some(Err(err)) => {
                    // Like the sequential path, the lines already read
                    // are still answered; the error reports after them.
                    read_error = Some(format!("read error on line {lineno}: {err}"));
                    break;
                }
            }
        }
        if lines.is_empty() {
            break;
        }

        // Answer and flush this chunk before reading the next.
        let (responses, trace) =
            run_batch_parallel_traced(&queries, opts, jobs, batch_snap.as_ref());
        agg.engine_recycles += trace.engine_recycles;
        agg.analysis = agg.analysis.merged(&trace.analysis);
        agg.optimize = agg.optimize.merged(&trace.optimize);
        agg.snapshot = agg.snapshot.merged(&trace.snapshot);
        for decoded in &lines {
            match decoded {
                BatchLine::Skip => {}
                BatchLine::Query(i) => {
                    let (query, resp) = (&queries[*i], &responses[*i]);
                    hists.record(query.kind(), resp.elapsed);
                    emit_response(query, resp, json);
                    agg.stats = agg.stats.merged(&resp.stats_delta);
                    agg.expr_nodes += resp.expr_nodes;
                    agg.expr_subterms += resp.expr_subterms;
                    code = fold_exit(code, verdict_exit(&resp.verdict));
                }
                BatchLine::Error(lineno, err) => {
                    emit_error(err, json);
                    eprintln!("  (line {lineno})");
                    code = fold_exit(code, EXIT_USAGE);
                }
            }
        }
        let _ = std::io::stdout().flush();
        if read_error.is_some() {
            break;
        }
    }

    // One merged dump at end of stream (satellite to the per-chunk
    // drain-time exports above).
    if let (Some(path), Some(snap)) = (snapshot_path, batch_snap.as_ref()) {
        match snap.write_to(path) {
            Ok(n) => {
                agg.snapshot.dumps += 1;
                eprintln!("snapshot: dumped {n} entries to {}", path.display());
            }
            Err(err) => {
                agg.snapshot.dump_failures += 1;
                eprintln!("warning: snapshot dump to {} failed: {err}", path.display());
            }
        }
    }
    *report = Some(agg);
    if let Some(msg) = read_error {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_USAGE);
    }
    ExitCode::from(code)
}

/// `nka serve`: request/response loop for driving from another process —
/// one response line per request line, flushed immediately. With
/// `--max-arena-nodes N`, the loop stops with exit code `3` once the
/// process-wide resident expression arena exceeds `N` nodes: recycling
/// the *process* is the only way to shed persistent-arena growth, so a
/// supervisor is expected to restart it (engine caches recycle
/// in-process via `--max-queries-per-worker` long before this trips).
fn serve(
    session: &mut Session,
    json: bool,
    hists: &OpHistograms,
    max_arena_nodes: Option<usize>,
) -> ExitCode {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        run_line(session, json, hists, &line);
        if std::io::stdout().flush().is_err() {
            break; // downstream went away; exit quietly
        }
        if let Some(cap) = max_arena_nodes {
            let resident = nka_syntax::arena_resident_nodes();
            if resident > cap {
                eprintln!(
                    "arena cap exceeded: {resident} resident expression nodes > \
                     --max-arena-nodes {cap}; exiting for worker recycling"
                );
                return ExitCode::from(EXIT_BUDGET);
            }
        }
    }
    ExitCode::from(EXIT_OK)
}

/// `nka snapshot dump|inspect|verify`: the offline surface of the
/// snapshot format ([`nka_core::snapshot`]).
///
/// * `dump FILE [CORPUS]` — run CORPUS (JSONL / `e = f` lines; `-` or
///   absent = stdin) on a warm session, discard the responses, and
///   write the resulting caches to FILE.
/// * `inspect FILE` — print the header and entry counts (one JSON
///   object with `--json`).
/// * `verify FILE` — fully validate magic, version, checksum, and
///   structure; exit 0 iff the snapshot would load.
fn snapshot_cmd(args: &[String], opts: &SessionOptions, json: bool) -> ExitCode {
    match args {
        [cmd, file, corpus @ ..] if cmd == "dump" && corpus.len() <= 1 => {
            let source = corpus.first().map(String::as_str);
            let reader: Box<dyn BufRead> = match source {
                None | Some("-") => Box::new(std::io::stdin().lock()),
                Some(path) => match std::fs::File::open(path) {
                    Ok(file) => Box::new(std::io::BufReader::new(file)),
                    Err(err) => {
                        eprintln!("cannot open {path:?}: {err}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                },
            };
            let mut session = Session::with_options(opts.clone());
            for (lineno, line) in reader.lines().enumerate() {
                let Ok(line) = line else { break };
                match wire::decode_request(&line) {
                    Ok(None) => {}
                    Ok(Some(query)) => {
                        let _ = session.run(&query);
                    }
                    Err(err) => {
                        eprintln!("{}", err.render());
                        eprintln!("  (line {})", lineno + 1);
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            match session.save_snapshot(PathBuf::from(file).as_path()) {
                Ok(n) => {
                    out!("snapshot: dumped {n} entries to {file}");
                    ExitCode::from(EXIT_OK)
                }
                Err(err) => {
                    eprintln!("snapshot dump to {file} failed: {err}");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
        [cmd, file] if cmd == "inspect" => match Snapshot::read(PathBuf::from(file).as_path()) {
            Ok(snap) => {
                let s = snap.summary();
                let int = |n: usize| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
                if json {
                    out!(
                        "{}",
                        Json::Obj(vec![
                            ("v".to_owned(), Json::Int(i64::from(s.version))),
                            (
                                "created_unix_secs".to_owned(),
                                Json::Int(i64::try_from(s.created_unix_secs).unwrap_or(i64::MAX)),
                            ),
                            (
                                "float_ablation".to_owned(),
                                Json::Bool(s.config.float_ablation),
                            ),
                            (
                                "starfree_max_words".to_owned(),
                                Json::Int(
                                    i64::try_from(s.config.starfree_max_words).unwrap_or(i64::MAX),
                                ),
                            ),
                            ("symbols".to_owned(), int(s.symbols)),
                            ("exprs".to_owned(), int(s.exprs)),
                            ("nka_verdicts".to_owned(), int(s.nka_verdicts)),
                            ("ka_verdicts".to_owned(), int(s.ka_verdicts)),
                            ("multisets".to_owned(), int(s.multisets)),
                            ("certs".to_owned(), int(s.certs)),
                            ("entries".to_owned(), int(s.entry_count())),
                        ])
                    );
                } else {
                    let age =
                        nka_core::snapshot::now_unix_secs().saturating_sub(s.created_unix_secs);
                    out!("snapshot v{} ({file}), written {age}s ago", s.version);
                    out!(
                        "config: float_ablation={}, starfree_max_words={}",
                        s.config.float_ablation,
                        s.config.starfree_max_words
                    );
                    out!(
                        "entries: {} ({} NKA + {} KA verdicts, {} multisets, {} certs) over {} exprs / {} symbols",
                        s.entry_count(),
                        s.nka_verdicts,
                        s.ka_verdicts,
                        s.multisets,
                        s.certs,
                        s.exprs,
                        s.symbols,
                    );
                }
                ExitCode::from(EXIT_OK)
            }
            Err(err) => {
                eprintln!("cannot inspect {file}: {err}");
                ExitCode::from(EXIT_NO)
            }
        },
        [cmd, file] if cmd == "verify" => match Snapshot::read(PathBuf::from(file).as_path()) {
            Ok(snap) => {
                out!(
                    "ok: {file} is a valid v{} snapshot with {} entries",
                    snap.summary().version,
                    snap.summary().entry_count()
                );
                ExitCode::from(EXIT_OK)
            }
            Err(err) => {
                eprintln!("invalid snapshot {file}: {err}");
                ExitCode::from(EXIT_NO)
            }
        },
        _ => usage(),
    }
}

/// Minimal POSIX signal plumbing for the socket server: SIGTERM/SIGINT
/// set a flag that [`serve_socket`]'s governor thread turns into a
/// graceful drain. Hand-rolled `signal(2)` binding because the build
/// environment is offline (no `libc`/`signal-hook`); storing to a
/// static atomic is async-signal-safe. (SIGPIPE needs no handling: the
/// Rust runtime ignores it before `main`, so a disconnected client
/// surfaces as an `EPIPE` write error on its own connection only.)
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM/SIGINT handlers. Call once, before serving.
    #[allow(unsafe_code)]
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal(2)` with a function pointer of the correct
        // `extern "C" fn(c_int)` ABI; the handler only stores to an
        // atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn shutdown_requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn shutdown_requested() -> bool {
        false
    }
}

/// `nka serve --listen …`: the Serve v2 socket server
/// ([`nka_core::serve::server`]). Binds every listener, announces them
/// on stderr, then blocks until a drain completes — triggered by
/// SIGTERM/SIGINT (exit 0) or the `--max-arena-nodes` cap (exit 3,
/// same supervisor contract as the stdin loop). `--stats-interval`
/// prints a full stats snapshot to stderr periodically; the final
/// snapshot is handed back for the exit-time `--stats` report.
fn serve_socket(
    cfg: ServeConfig,
    listen: &[ListenAddr],
    stats_interval: Option<Duration>,
    json: bool,
    server_block: &mut Option<StatsBlock>,
) -> ExitCode {
    sig::install();
    let server = match Server::bind(cfg, listen) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot listen: {err}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut tcp = server.tcp_addrs().iter();
    for addr in listen {
        match addr {
            ListenAddr::Tcp(_) => {
                if let Some(bound) = tcp.next() {
                    eprintln!("listening on tcp:{bound}");
                }
            }
            ListenAddr::Unix(path) => eprintln!("listening on unix:{}", path.display()),
        }
    }

    // Governor: turns the signal flag into a drain. Lives until drain
    // begins for any reason (so it never outlives the server).
    let handle = server.handle();
    let governor = {
        let handle = handle.clone();
        std::thread::spawn(move || loop {
            if sig::shutdown_requested() {
                handle.begin_drain(EXIT_OK, "shutdown signal received");
                return;
            }
            if handle.draining() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
    };
    let snapshotter = stats_interval.map(|period| {
        let handle = handle.clone();
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !handle.draining() {
                std::thread::sleep(Duration::from_millis(50));
                if last.elapsed() >= period {
                    last = Instant::now();
                    print_stats(&handle.stats_block(), json);
                }
            }
        })
    });

    let code = server.join();
    let _ = governor.join();
    if let Some(thread) = snapshotter {
        let _ = thread.join();
    }
    if let Some(note) = handle.drain_note() {
        eprintln!("drained: {note}");
    }
    *server_block = Some(handle.stats_block());
    ExitCode::from(code)
}

fn encode_demo() -> ExitCode {
    use nka_qprog::{EncoderSetting, Program};
    use qsim_quantum::{gates, states, Measurement};

    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).expect("encoding succeeds");
    out!("program:   {w}");
    out!("encoding:  {enc}");
    let out = w.run(&states::basis_density(2, 1));
    out!("⟦P⟧(|1⟩⟨1|) = |0⟩⟨0| with trace {:.6}", out.trace().re);
    ExitCode::from(EXIT_OK)
}
