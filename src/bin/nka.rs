//! `nka` — a command-line front end for the NKA toolkit.
//!
//! Every subcommand is a thin adapter over the Query API v1
//! ([`nka_core::api`]): arguments become a typed [`Query`], one warm
//! [`Session`] answers it, and the structured [`Verdict`] is rendered as
//! text or (with `--json`) one JSON line.
//!
//! ```text
//! nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'
//!                                      decide ⊢NKA e = f
//! nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'
//!                                      decide ⊢KA e = f (Remark 2.1:
//!                                      language equivalence, = NKA on 1*K)
//! nka [--json] series '<expr>' [max-len]
//!                                      print the truncated power series
//! nka [--budget N] [--json] prove '<lhs>' '<rhs>' [hyp]…
//!                                      search for a rewrite proof under
//!                                      hypotheses of the form 'l = r'
//! nka [--budget N] [--stats] [--json] prog-eq '<prog>' '<prog>'
//!                                      decide Enc(p) = Enc(q) for two
//!                                      quantum while-programs (Def. 4.4,
//!                                      sound by Thm 4.5)
//! nka [--stats] [--json] hoare '<effect>' '<prog>' '<effect>'
//!                                      check {pre} prog {post} via wlp;
//!                                      the verdict carries the Thm 7.8
//!                                      encoded inequality
//! nka [--budget N] [--stats] [--json] [--jobs N]
//!     [--max-queries-per-worker N] batch [FILE]
//!                                      run a stream of queries (JSONL or
//!                                      'e = f' per line; FILE or '-' =
//!                                      stdin) on one warm engine, or
//!                                      sharded over N worker sessions
//! nka [--budget N] [--stats] [--json] [--max-queries-per-worker N]
//!     [--max-arena-nodes N] serve
//!                                      line-oriented request/response
//!                                      loop on stdin/stdout
//! nka encode-demo                      encode a sample quantum program
//! ```
//!
//! `--budget N` caps every subset construction at `N` DFA states
//! (default 100 000) and `--stats` prints the engine's cache counters,
//! per-stream expression-size accounting, and the arena lifecycle
//! footprint (persistent vs scratch nodes, reclamation totals) to
//! stderr at exit. `--jobs N` (batch only) shards the stream across `N`
//! parallel worker sessions ([`run_batch_parallel_traced`]); verdicts, output
//! order, and exit codes are identical to `--jobs 1`. The parallel path
//! reads and answers the stream in bounded chunks, so it works on live
//! pipelines in O(chunk) memory (each chunk's responses flush before
//! the next chunk is read; `--jobs 1` remains fully line-by-line).
//!
//! Memory governance (`serve`/`batch`): `--max-queries-per-worker N`
//! recycles a worker session's engine caches after `N` queries, and
//! `--max-queries-per-worker`-recycled workers keep cumulative
//! `--stats`; `serve --max-arena-nodes M` exits with code `3` once the
//! process-wide resident arena exceeds `M` nodes — the supervisor
//! restart is the only way to shed *persistent* arena growth, and the
//! exit is the defense-in-depth backstop behind the scoped reclamation
//! the prover already does per query.
//! The wire format of `batch`/`serve` is documented in
//! [`nka_core::api::wire`].
//!
//! Exit codes: `0` the judgment holds / a proof was found / output was
//! produced; `1` it does not hold (or no proof was found within the
//! search budget); `2` usage or parse error; `3` the decision engine ran
//! out of its state budget. `batch` exits `0` when every line was
//! answered (whatever the verdicts), `2` if any line was malformed, else
//! `3` if any query exhausted the budget. `serve` exits `0` at end of
//! input, or `3` when `--max-arena-nodes` trips mid-stream.
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin nka -- decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- --json ka 'p + p' 'p'
//! cargo run --bin nka -- series '(a + a)*' 4
//! cargo run --bin nka -- prove 'm1 (m0 p + m1)' 'm1' 'm1 m1 = m1' 'm1 m0 = 0'
//! echo '(p q)* p = p (q p)*' | cargo run --bin nka -- batch --json
//! ```

use nka_core::api::{
    run_batch_parallel_traced, wire, ApiError, Query, Session, SessionOptions, Verdict,
};
use nka_core::Judgment;
use nka_wfa::{DecideOptions, DeciderStats};
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// `println!` that tolerates a closed stdout (`nka … | head` must exit
/// cleanly, not panic on EPIPE like the std macro does).
macro_rules! out {
    ($($arg:tt)*) => {{
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// `print!` with the same EPIPE tolerance.
macro_rules! out_raw {
    ($($arg:tt)*) => {{
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}

const EXIT_OK: u8 = 0;
const EXIT_NO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BUDGET: u8 = 3;

const USAGE: &str = "usage:\n  nka [--budget N] [--stats] [--json] decide '<expr>' '<expr>'\n  nka [--budget N] [--stats] [--json] ka '<expr>' '<expr>'\n  nka [--json] series '<expr>' [max-len]\n  nka [--budget N] [--json] prove '<lhs>' '<rhs>' ['l = r'…]\n  nka [--budget N] [--stats] [--json] prog-eq '<prog>' '<prog>'\n  nka [--stats] [--json] hoare '<effect>' '<prog>' '<effect>'\n  nka [--budget N] [--stats] [--json] [--jobs N] [--max-queries-per-worker N]\n      batch [FILE]   (FILE or '-' = stdin)\n  nka [--budget N] [--stats] [--json] [--max-queries-per-worker N]\n      [--max-arena-nodes N] serve\n  nka encode-demo\n\nprog-eq decides Enc(p) = Enc(q) for two quantum while-programs (one\nshared encoder setting, Definition 4.4); hoare checks the triple\n{pre} prog {post} via wlp and reports the Theorem 7.8 encoding.\nPrograms: 'qubits N; h q0; cnot q0 q1; if q0 {…} else {…}; while q0 {…}'\n(gates: h x y z s t cnot cz swap; also init qK, skip, abort).\nEffects: sums of scaled projectors, e.g. 'I', '0.5 I', 'ket(01)', 'q0=1'.\n\nbatch/serve read one request per line: either JSONL\n  {\"op\":\"nka_eq\",\"lhs\":\"(p q)* p\",\"rhs\":\"p (q p)*\"}\n  (ops: nka_eq, ka_eq, series [expr, max_len], prove [lhs, rhs, hyps],\n   prog_eq [p, q], hoare [pre, prog, post])\nor the shorthand 'e = f'; '#' comments and blank lines are skipped.\n--jobs N shards a batch across N parallel worker sessions in bounded\nchunks; verdicts, output order, and exit codes are identical to\n--jobs 1. --max-queries-per-worker N recycles a session's engine\ncaches every N queries (memory backstop; verdicts unchanged);\nserve --max-arena-nodes N exits 3 once the process-wide resident\nexpression arena exceeds N nodes, so a supervisor can restart it.\n\nexit codes: 0 holds/proved, 1 does not hold/no proof, 2 usage or parse\nerror, 3 budget exceeded; batch: 0 all answered, 2 any malformed line,\nelse 3 any budget-exhausted query; serve: 0 at end of input, 3 if\n--max-arena-nodes tripped";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

/// What `--stats` reports at exit: engine counters plus the Expr API v2
/// term-size accounting, from whichever sessions answered the stream.
struct StatsReport {
    stats: DeciderStats,
    expr_nodes: u64,
    expr_subterms: u64,
    engine_recycles: u64,
}

impl StatsReport {
    fn of_session(session: &Session) -> StatsReport {
        StatsReport {
            stats: session.stats(),
            expr_nodes: session.expr_nodes_seen(),
            expr_subterms: session.expr_subterms_seen(),
            engine_recycles: session.engine_recycles(),
        }
    }

    fn print(&self) {
        let s = &self.stats;
        eprintln!(
            "engine stats: {} NKA + {} KA queries, {} verdict hits, {} compiles ({} cached), {} determinizations ({} cached)",
            s.nka_queries,
            s.ka_queries,
            s.answer_hits,
            s.compile_misses,
            s.compile_hits,
            s.dfa_misses,
            s.dfa_hits,
        );
        eprintln!(
            "fast-path stats: {} star-free hits + {} prefix hits, {} fallbacks to generic",
            s.starfree_hits, s.prefix_hits, s.fastpath_fallbacks,
        );
        eprintln!(
            "expr stats: {} tree nodes over {} distinct subterms queried; {} expressions interned process-wide",
            self.expr_nodes,
            self.expr_subterms,
            nka_syntax::interned_expr_count(),
        );
        eprintln!(
            "arena stats: {} resident nodes ({} persistent + {} live scratch), {} scratch retired over {} scopes, {} engine recycles",
            nka_syntax::arena_resident_nodes(),
            nka_syntax::interned_expr_count(),
            nka_syntax::scratch_live_nodes(),
            nka_syntax::scratch_retired_total(),
            nka_syntax::scratch_epoch(),
            self.engine_recycles,
        );
    }
}

fn main() -> ExitCode {
    let mut budget: usize = 100_000;
    let mut stats = false;
    let mut json = false;
    let mut jobs: usize = 1;
    let mut max_queries_per_worker: Option<u64> = None;
    let mut max_arena_nodes: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let Some(value) = args.next() else {
                    eprintln!("--budget needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => budget = n,
                    _ => {
                        eprintln!("--budget needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--jobs" => {
                let Some(value) = args.next() else {
                    eprintln!("--jobs needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--max-queries-per-worker" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-queries-per-worker needs a value");
                    return usage();
                };
                match value.parse::<u64>() {
                    Ok(n) if n > 0 => max_queries_per_worker = Some(n),
                    _ => {
                        eprintln!(
                            "--max-queries-per-worker needs a positive integer, got {value:?}"
                        );
                        return usage();
                    }
                }
            }
            "--max-arena-nodes" => {
                let Some(value) = args.next() else {
                    eprintln!("--max-arena-nodes needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => max_arena_nodes = Some(n),
                    _ => {
                        eprintln!("--max-arena-nodes needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--stats" => stats = true,
            "--json" => json = true,
            "--help" | "-h" => {
                // An explicit help request is a success, not a usage error.
                out!("{USAGE}");
                return ExitCode::from(EXIT_OK);
            }
            _ => rest.push(arg),
        }
    }

    let command = rest.first().map(String::as_str);
    if jobs > 1 && command != Some("batch") {
        eprintln!("--jobs only applies to batch");
        return usage();
    }
    if max_queries_per_worker.is_some() && !matches!(command, Some("batch") | Some("serve")) {
        eprintln!("--max-queries-per-worker only applies to batch and serve");
        return usage();
    }
    if max_arena_nodes.is_some() && command != Some("serve") {
        eprintln!("--max-arena-nodes only applies to serve");
        return usage();
    }

    let opts = SessionOptions {
        decide: DecideOptions {
            max_dfa_states: budget,
            ..DecideOptions::default()
        },
        recycle_after_queries: max_queries_per_worker,
        ..SessionOptions::default()
    };
    let mut session = Session::with_options(opts.clone());
    // The parallel batch path runs on worker sessions, not `session`;
    // it reports its aggregated stats here.
    let mut report: Option<StatsReport> = None;
    let code = match command {
        Some("decide") if rest.len() == 3 => {
            one_shot(&mut session, json, Query::nka_eq(&rest[1], &rest[2]))
        }
        Some("ka") if rest.len() == 3 => {
            one_shot(&mut session, json, Query::ka_eq(&rest[1], &rest[2]))
        }
        Some("series") if rest.len() >= 2 => {
            let max_len = match rest.get(2) {
                None => nka_core::api::DEFAULT_SERIES_MAX_LEN,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("max-len must be a non-negative integer, got {raw:?}");
                        return usage();
                    }
                },
            };
            one_shot(&mut session, json, Query::series(&rest[1], max_len))
        }
        Some("prove") if rest.len() >= 3 => one_shot(
            &mut session,
            json,
            Query::prove(&rest[1], &rest[2], &rest[3..]),
        ),
        Some("prog-eq") if rest.len() == 3 => {
            one_shot(&mut session, json, Query::prog_eq(&rest[1], &rest[2]))
        }
        Some("hoare") if rest.len() == 4 => one_shot(
            &mut session,
            json,
            Query::hoare(&rest[1], &rest[2], &rest[3]),
        ),
        Some("batch") if rest.len() <= 2 && jobs <= 1 => {
            batch(&mut session, json, rest.get(1).map(String::as_str))
        }
        Some("batch") if rest.len() <= 2 => batch_parallel(
            &opts,
            json,
            jobs,
            rest.get(1).map(String::as_str),
            &mut report,
        ),
        Some("serve") if rest.len() == 1 => serve(&mut session, json, max_arena_nodes),
        Some("encode-demo") => encode_demo(),
        _ => return usage(),
    };
    if stats {
        report
            .unwrap_or_else(|| StatsReport::of_session(&session))
            .print();
    }
    code
}

/// Exit code for one answered query. Positive verdicts (holds /
/// proved / series / an equivalent program pair / a valid triple) exit
/// 0, negative ones 1, resource exhaustion 3.
fn verdict_exit(verdict: &Verdict) -> u8 {
    match verdict {
        Verdict::BudgetExhausted { .. } => EXIT_BUDGET,
        v if v.is_positive() => EXIT_OK,
        _ => EXIT_NO,
    }
}

/// Runs one CLI-argument query through the session and renders it.
fn one_shot(session: &mut Session, json: bool, query: Result<Query, ApiError>) -> ExitCode {
    let query = match query {
        Ok(query) => query,
        Err(err) => {
            eprintln!("{}", err.render());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let resp = session.run(&query);
    if json {
        out!("{}", wire::encode_response(&query, &resp));
    } else if let (Query::Series { expr, .. }, Verdict::Series { max_len, terms }) =
        (&query, &resp.verdict)
    {
        // The wire rendering is one line per response; interactively a
        // term per line reads better.
        out!("{{{{{expr}}}}} up to length {max_len}:");
        for (word, coeff) in terms {
            out!("  {coeff} · {word}");
        }
        if terms.is_empty() {
            out!("  (the zero series)");
        }
    } else {
        out!("{}", wire::encode_response_text(&query, &resp));
        if let Verdict::BudgetExhausted { .. } = resp.verdict {
            eprintln!("hint: retry with a larger --budget");
        }
        // The full proof rendering stays a human-surface extra.
        if let (Query::Prove { hyps, .. }, Some(proof)) = (&query, &resp.proof) {
            let judgments: Vec<Judgment> = hyps.iter().map(|(l, r)| Judgment::Eq(*l, *r)).collect();
            match proof.check(&judgments) {
                Ok(_) => match nka_core::render::render(proof, &judgments) {
                    Ok(text) => out_raw!("\n{text}"),
                    Err(err) => eprintln!("(rendering failed: {err})"),
                },
                Err(err) => {
                    eprintln!("internal error: prover output failed to re-check: {err}");
                    return ExitCode::from(EXIT_NO);
                }
            }
        }
    }
    ExitCode::from(verdict_exit(&resp.verdict))
}

/// Emits one answered query as an output line. The sequential and
/// parallel batch paths are contractually required to produce identical
/// output (the CI `--jobs 4` diff enforces it), so both go through
/// here.
fn emit_response(query: &Query, resp: &nka_core::api::Response, json: bool) {
    if json {
        out!("{}", wire::encode_response(query, resp));
    } else {
        out!("{}", wire::encode_response_text(query, resp));
    }
}

/// Emits one request-level error: an output line plus the caret
/// rendering on stderr. Shared by both batch paths for the same
/// reason as [`emit_response`].
fn emit_error(err: &ApiError, json: bool) {
    if json {
        out!("{}", wire::encode_error(err));
    } else {
        out!("error: {err}");
    }
    eprintln!("{}", err.render());
}

/// Handles one wire line for `batch`/`serve`; returns its exit class.
fn run_line(session: &mut Session, json: bool, line: &str) -> Option<u8> {
    match wire::decode_request(line) {
        Ok(None) => None, // blank / comment
        Ok(Some(query)) => {
            let resp = session.run(&query);
            emit_response(&query, &resp, json);
            Some(verdict_exit(&resp.verdict))
        }
        Err(err) => {
            emit_error(&err, json);
            Some(EXIT_USAGE)
        }
    }
}

/// Folds per-line exit classes into the batch exit code: malformed input
/// dominates, then budget exhaustion; verdicts themselves are data, not
/// failures.
fn fold_exit(acc: u8, line_code: u8) -> u8 {
    match (acc, line_code) {
        (EXIT_USAGE, _) | (_, EXIT_USAGE) => EXIT_USAGE,
        (EXIT_BUDGET, _) | (_, EXIT_BUDGET) => EXIT_BUDGET,
        _ => EXIT_OK,
    }
}

/// `nka batch [FILE]`: the whole stream shares this one warm session, so
/// repeated expressions and queries amortize to cache hits.
fn batch(session: &mut Session, json: bool, source: Option<&str>) -> ExitCode {
    let reader: Box<dyn BufRead> = match source {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(err) => {
                eprintln!("cannot open {path:?}: {err}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut code = EXIT_OK;
    for (lineno, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(err) => {
                eprintln!("read error on line {}: {err}", lineno + 1);
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if let Some(line_code) = run_line(session, json, &line) {
            if line_code == EXIT_USAGE {
                eprintln!("  (line {})", lineno + 1);
            }
            code = fold_exit(code, line_code);
        }
    }
    ExitCode::from(code)
}

/// One decoded input line of a parallel batch: skippable, an index into
/// the chunk's query/response vectors, or a malformed line kept in
/// place so output order and exit codes match the sequential path.
enum BatchLine {
    Skip,
    Query(usize),
    Error(usize, ApiError),
}

/// Input lines a parallel batch reads and answers per chunk. Bounds the
/// memory of `--jobs N` to O(chunk) and gives live pipelines output at
/// chunk granularity (PR 3's parallel path buffered the entire stream
/// to EOF — the documented limitation this fixes). Large enough that
/// each chunk amortizes its worker threads' spawn cost.
const PARALLEL_CHUNK_LINES: usize = 256;

/// `nka batch --jobs N`: read the stream in chunks of
/// [`PARALLEL_CHUNK_LINES`], shard each chunk's well-formed queries
/// across `N` worker sessions ([`run_batch_parallel_traced`]), and emit one
/// output line per input line in input order before reading the next
/// chunk — byte-for-byte the same verdicts and exit code as the
/// sequential path, with only the per-response `stats`/`micros` fields
/// reflecting the sharded execution. (Worker caches reset per chunk;
/// verdicts are cache-independent, so only throughput varies.) A
/// mid-stream read error matches the sequential path too: the lines
/// read before it are still answered and printed, then the error
/// reports and the exit is `2`.
fn batch_parallel(
    opts: &SessionOptions,
    json: bool,
    jobs: usize,
    source: Option<&str>,
    report: &mut Option<StatsReport>,
) -> ExitCode {
    let reader: Box<dyn BufRead> = match source {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(std::io::BufReader::new(file)),
            Err(err) => {
                eprintln!("cannot open {path:?}: {err}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut agg = StatsReport {
        stats: DeciderStats::default(),
        expr_nodes: 0,
        expr_subterms: 0,
        engine_recycles: 0,
    };
    let mut code = EXIT_OK;
    let mut read_error: Option<String> = None;
    let mut lineno = 0usize;

    let mut lines: Vec<BatchLine> = Vec::new();
    let mut queries: Vec<Query> = Vec::new();
    let mut input = reader.lines();
    loop {
        // Fill one chunk (or stop early on EOF / read error).
        lines.clear();
        queries.clear();
        while lines.len() < PARALLEL_CHUNK_LINES {
            lineno += 1;
            match input.next() {
                None => break,
                Some(Ok(line)) => {
                    let decoded = match wire::decode_request(&line) {
                        Ok(None) => BatchLine::Skip,
                        Ok(Some(query)) => {
                            queries.push(query);
                            BatchLine::Query(queries.len() - 1)
                        }
                        Err(err) => BatchLine::Error(lineno, err),
                    };
                    lines.push(decoded);
                }
                Some(Err(err)) => {
                    // Like the sequential path, the lines already read
                    // are still answered; the error reports after them.
                    read_error = Some(format!("read error on line {lineno}: {err}"));
                    break;
                }
            }
        }
        if lines.is_empty() {
            break;
        }

        // Answer and flush this chunk before reading the next.
        let (responses, recycles) = run_batch_parallel_traced(&queries, opts, jobs);
        agg.engine_recycles += recycles;
        for decoded in &lines {
            match decoded {
                BatchLine::Skip => {}
                BatchLine::Query(i) => {
                    let (query, resp) = (&queries[*i], &responses[*i]);
                    emit_response(query, resp, json);
                    agg.stats = agg.stats.merged(&resp.stats_delta);
                    agg.expr_nodes += resp.expr_nodes;
                    agg.expr_subterms += resp.expr_subterms;
                    code = fold_exit(code, verdict_exit(&resp.verdict));
                }
                BatchLine::Error(lineno, err) => {
                    emit_error(err, json);
                    eprintln!("  (line {lineno})");
                    code = fold_exit(code, EXIT_USAGE);
                }
            }
        }
        let _ = std::io::stdout().flush();
        if read_error.is_some() {
            break;
        }
    }

    *report = Some(agg);
    if let Some(msg) = read_error {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_USAGE);
    }
    ExitCode::from(code)
}

/// `nka serve`: request/response loop for driving from another process —
/// one response line per request line, flushed immediately. With
/// `--max-arena-nodes N`, the loop stops with exit code `3` once the
/// process-wide resident expression arena exceeds `N` nodes: recycling
/// the *process* is the only way to shed persistent-arena growth, so a
/// supervisor is expected to restart it (engine caches recycle
/// in-process via `--max-queries-per-worker` long before this trips).
fn serve(session: &mut Session, json: bool, max_arena_nodes: Option<usize>) -> ExitCode {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        run_line(session, json, &line);
        if std::io::stdout().flush().is_err() {
            break; // downstream went away; exit quietly
        }
        if let Some(cap) = max_arena_nodes {
            let resident = nka_syntax::arena_resident_nodes();
            if resident > cap {
                eprintln!(
                    "arena cap exceeded: {resident} resident expression nodes > \
                     --max-arena-nodes {cap}; exiting for worker recycling"
                );
                return ExitCode::from(EXIT_BUDGET);
            }
        }
    }
    ExitCode::from(EXIT_OK)
}

fn encode_demo() -> ExitCode {
    use nka_qprog::{EncoderSetting, Program};
    use qsim_quantum::{gates, states, Measurement};

    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).expect("encoding succeeds");
    out!("program:   {w}");
    out!("encoding:  {enc}");
    let out = w.run(&states::basis_density(2, 1));
    out!("⟦P⟧(|1⟩⟨1|) = |0⟩⟨0| with trace {:.6}", out.trace().re);
    ExitCode::from(EXIT_OK)
}
