//! `nka` — a command-line front end for the NKA toolkit.
//!
//! ```text
//! nka decide  '<expr>' '<expr>'        decide ⊢NKA e = f
//! nka ka      '<expr>' '<expr>'        decide ⊢KA e = f (Remark 2.1:
//!                                      language equivalence, = NKA on 1*K)
//! nka series  '<expr>' [max-len]       print the truncated power series
//! nka prove   '<lhs>' '<rhs>' [hyp]…   search for a rewrite proof under
//!                                      hypotheses of the form 'l = r'
//! nka encode-demo                      encode a sample quantum program
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin nka -- decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- ka 'p + p' 'p'
//! cargo run --bin nka -- series '(a + a)*' 4
//! cargo run --bin nka -- prove 'm1 (m0 p + m1)' 'm1' 'm1 m1 = m1' 'm1 m0 = 0'
//! ```

use nka_core::prover::Prover;
use nka_core::Judgment;
use nka_series::eval;
use nka_syntax::{Expr, Symbol};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("decide") if args.len() == 3 => decide(&args[1], &args[2]),
        Some("ka") if args.len() == 3 => ka(&args[1], &args[2]),
        Some("series") if args.len() >= 2 => series(&args[1], args.get(2).map(String::as_str)),
        Some("prove") if args.len() >= 3 => prove(&args[1], &args[2], &args[3..]),
        Some("encode-demo") => encode_demo(),
        _ => {
            eprintln!(
                "usage:\n  nka decide '<expr>' '<expr>'\n  nka ka '<expr>' '<expr>'\n  nka series '<expr>' [max-len]\n  nka prove '<lhs>' '<rhs>' ['l = r'…]\n  nka encode-demo"
            );
            ExitCode::FAILURE
        }
    }
}

fn parse(src: &str) -> Result<Expr, ExitCode> {
    src.parse().map_err(|err| {
        eprintln!("parse error in {src:?}: {err}");
        ExitCode::FAILURE
    })
}

fn decide(lhs: &str, rhs: &str) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::FAILURE;
    };
    match nka_wfa::decide_eq(&l, &r) {
        Ok(true) => {
            println!("⊢NKA {l} = {r}");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("⊬NKA {l} = {r}   (the power series differ)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("resource budget exceeded: {err}");
            ExitCode::FAILURE
        }
    }
}

fn ka(lhs: &str, rhs: &str) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::FAILURE;
    };
    match nka_wfa::ka::ka_equiv(&l, &r) {
        Ok(true) => {
            println!("⊢KA {l} = {r}   (equivalently ⊢NKA 1*({l}) = 1*({r}))");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("⊬KA {l} = {r}   (the languages differ)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("resource budget exceeded: {err}");
            ExitCode::FAILURE
        }
    }
}

fn series(src: &str, max_len: Option<&str>) -> ExitCode {
    let Ok(e) = parse(src) else {
        return ExitCode::FAILURE;
    };
    let len: usize = max_len.and_then(|s| s.parse().ok()).unwrap_or(3);
    let alphabet: Vec<Symbol> = e.atoms().into_iter().collect();
    let s = eval(&e, &alphabet, len);
    println!("{{{{{e}}}}} up to length {len}:");
    let mut any = false;
    for (word, coeff) in s.iter() {
        println!("  {coeff} · {word}");
        any = true;
    }
    if !any {
        println!("  (the zero series)");
    }
    ExitCode::SUCCESS
}

fn prove(lhs: &str, rhs: &str, hyp_srcs: &[String]) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::FAILURE;
    };
    let mut hyps = Vec::new();
    for h in hyp_srcs {
        let Some((hl, hr)) = h.split_once('=') else {
            eprintln!("hypothesis {h:?} is not of the form 'l = r'");
            return ExitCode::FAILURE;
        };
        let (Ok(hl), Ok(hr)) = (parse(hl.trim()), parse(hr.trim())) else {
            return ExitCode::FAILURE;
        };
        hyps.push(Judgment::Eq(hl, hr));
    }
    let mut prover = Prover::new(&hyps);
    prover.add_hypothesis_rules();
    match prover.prove_eq(&l, &r) {
        Some(proof) => {
            let judgment = proof.check(&hyps).expect("prover output re-checks");
            println!("proved: {judgment}");
            println!("proof size: {} rule applications (re-checked)", proof.size());
            match nka_core::render::render(&proof, &hyps) {
                Ok(text) => print!("\n{text}"),
                Err(err) => eprintln!("(rendering failed: {err})"),
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("no proof found within the search budget");
            ExitCode::FAILURE
        }
    }
}

fn encode_demo() -> ExitCode {
    use nka_qprog::{EncoderSetting, Program};
    use qsim_quantum::{gates, states, Measurement};

    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).expect("encoding succeeds");
    println!("program:   {w}");
    println!("encoding:  {enc}");
    let out = w.run(&states::basis_density(2, 1));
    println!("⟦P⟧(|1⟩⟨1|) = |0⟩⟨0| with trace {:.6}", out.trace().re);
    ExitCode::SUCCESS
}
