//! `nka` — a command-line front end for the NKA toolkit.
//!
//! ```text
//! nka [--budget N] [--stats] decide '<expr>' '<expr>'
//!                                      decide ⊢NKA e = f
//! nka [--budget N] [--stats] ka '<expr>' '<expr>'
//!                                      decide ⊢KA e = f (Remark 2.1:
//!                                      language equivalence, = NKA on 1*K)
//! nka series  '<expr>' [max-len]       print the truncated power series
//! nka [--budget N] prove '<lhs>' '<rhs>' [hyp]…
//!                                      search for a rewrite proof under
//!                                      hypotheses of the form 'l = r'
//! nka encode-demo                      encode a sample quantum program
//! ```
//!
//! All decision subcommands run on the shared budgeted [`Decider`] engine;
//! `--budget N` caps every subset construction at `N` DFA states (default
//! 100 000) and `--stats` prints the engine's cache counters to stderr.
//!
//! Exit codes: `0` the judgment holds / a proof was found; `1` it does not
//! hold (or no proof was found within the search budget); `2` usage or
//! parse error; `3` the decision engine ran out of its state budget.
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin nka -- decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- --budget 500000 decide '(p q)* p' 'p (q p)*'
//! cargo run --bin nka -- ka 'p + p' 'p'
//! cargo run --bin nka -- series '(a + a)*' 4
//! cargo run --bin nka -- prove 'm1 (m0 p + m1)' 'm1' 'm1 m1 = m1' 'm1 m0 = 0'
//! ```

use nka_core::prover::{ProveOutcome, Prover};
use nka_core::{DecideError, Decider, Judgment};
use nka_series::eval;
use nka_syntax::{Expr, Symbol};
use std::process::ExitCode;

/// `println!` that tolerates a closed stdout (`nka … | head` must exit
/// cleanly, not panic on EPIPE like the std macro does).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// `print!` with the same EPIPE tolerance.
macro_rules! out_raw {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}

const EXIT_OK: u8 = 0;
const EXIT_NO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BUDGET: u8 = 3;

const USAGE: &str = "usage:\n  nka [--budget N] [--stats] decide '<expr>' '<expr>'\n  nka [--budget N] [--stats] ka '<expr>' '<expr>'\n  nka series '<expr>' [max-len]\n  nka [--budget N] prove '<lhs>' '<rhs>' ['l = r'…]\n  nka encode-demo\n\nexit codes: 0 holds/proved, 1 does not hold/no proof, 2 usage or parse error, 3 budget exceeded";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let mut budget: usize = 100_000;
    let mut stats = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                let Some(value) = args.next() else {
                    eprintln!("--budget needs a value");
                    return usage();
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => budget = n,
                    _ => {
                        eprintln!("--budget needs a positive integer, got {value:?}");
                        return usage();
                    }
                }
            }
            "--stats" => stats = true,
            "--help" | "-h" => {
                // An explicit help request is a success, not a usage error.
                out!("{USAGE}");
                return ExitCode::from(EXIT_OK);
            }
            _ => rest.push(arg),
        }
    }

    let mut engine = Decider::with_budget(budget);
    let code = match rest.first().map(String::as_str) {
        Some("decide") if rest.len() == 3 => decide(&mut engine, &rest[1], &rest[2]),
        Some("ka") if rest.len() == 3 => ka(&mut engine, &rest[1], &rest[2]),
        Some("series") if rest.len() >= 2 => series(&rest[1], rest.get(2).map(String::as_str)),
        Some("prove") if rest.len() >= 3 => prove(&mut engine, &rest[1], &rest[2], &rest[3..]),
        Some("encode-demo") => encode_demo(),
        _ => return usage(),
    };
    if stats {
        let s = engine.stats();
        eprintln!(
            "engine stats: {} NKA + {} KA queries, {} verdict hits, {} compiles ({} cached), {} determinizations ({} cached)",
            s.nka_queries,
            s.ka_queries,
            s.answer_hits,
            s.compile_misses,
            s.compile_hits,
            s.dfa_misses,
            s.dfa_hits,
        );
    }
    code
}

fn parse(src: &str) -> Result<Expr, ExitCode> {
    src.parse().map_err(|err| {
        eprintln!("parse error in {src:?}: {err}");
        ExitCode::from(EXIT_USAGE)
    })
}

fn budget_exceeded(err: &DecideError) -> ExitCode {
    eprintln!("resource budget exceeded: {err}");
    eprintln!("hint: retry with a larger --budget");
    ExitCode::from(EXIT_BUDGET)
}

fn decide(engine: &mut Decider, lhs: &str, rhs: &str) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::from(EXIT_USAGE);
    };
    match engine.decide(&l, &r) {
        Ok(true) => {
            out!("⊢NKA {l} = {r}");
            ExitCode::from(EXIT_OK)
        }
        Ok(false) => {
            out!("⊬NKA {l} = {r}   (the power series differ)");
            ExitCode::from(EXIT_NO)
        }
        Err(err) => budget_exceeded(&err),
    }
}

fn ka(engine: &mut Decider, lhs: &str, rhs: &str) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::from(EXIT_USAGE);
    };
    match engine.ka_equiv(&l, &r) {
        Ok(true) => {
            out!("⊢KA {l} = {r}   (equivalently ⊢NKA 1*({l}) = 1*({r}))");
            ExitCode::from(EXIT_OK)
        }
        Ok(false) => {
            out!("⊬KA {l} = {r}   (the languages differ)");
            ExitCode::from(EXIT_NO)
        }
        Err(err) => budget_exceeded(&err),
    }
}

fn series(src: &str, max_len: Option<&str>) -> ExitCode {
    let Ok(e) = parse(src) else {
        return ExitCode::from(EXIT_USAGE);
    };
    let len: usize = max_len.and_then(|s| s.parse().ok()).unwrap_or(3);
    let alphabet: Vec<Symbol> = e.atoms().into_iter().collect();
    let s = eval(&e, &alphabet, len);
    out!("{{{{{e}}}}} up to length {len}:");
    let mut any = false;
    for (word, coeff) in s.iter() {
        out!("  {coeff} · {word}");
        any = true;
    }
    if !any {
        out!("  (the zero series)");
    }
    ExitCode::from(EXIT_OK)
}

fn prove(engine: &mut Decider, lhs: &str, rhs: &str, hyp_srcs: &[String]) -> ExitCode {
    let (Ok(l), Ok(r)) = (parse(lhs), parse(rhs)) else {
        return ExitCode::from(EXIT_USAGE);
    };
    let mut hyps = Vec::new();
    for h in hyp_srcs {
        let Some((hl, hr)) = h.split_once('=') else {
            eprintln!("hypothesis {h:?} is not of the form 'l = r'");
            return ExitCode::from(EXIT_USAGE);
        };
        let (Ok(hl), Ok(hr)) = (parse(hl.trim()), parse(hr.trim())) else {
            return ExitCode::from(EXIT_USAGE);
        };
        hyps.push(Judgment::Eq(hl, hr));
    }
    let mut prover = Prover::new(&hyps);
    prover.add_hypothesis_rules();
    match prover.prove_or_refute(engine, &l, &r) {
        Ok(ProveOutcome::Proved(proof)) => {
            let judgment = match proof.check(&hyps) {
                Ok(judgment) => judgment,
                Err(err) => {
                    eprintln!("internal error: prover output failed to re-check: {err}");
                    return ExitCode::from(EXIT_NO);
                }
            };
            out!("proved: {judgment}");
            out!(
                "proof size: {} rule applications (re-checked)",
                proof.size()
            );
            match nka_core::render::render(&proof, &hyps) {
                Ok(text) => out_raw!("\n{text}"),
                Err(err) => eprintln!("(rendering failed: {err})"),
            }
            ExitCode::from(EXIT_OK)
        }
        Ok(ProveOutcome::Refuted) => {
            out!("refuted: ⊬NKA {l} = {r}   (the power series differ)");
            ExitCode::from(EXIT_NO)
        }
        Ok(ProveOutcome::Exhausted) => {
            // A hypothesis-free goal that reached Exhausted was already
            // decided *true* by the engine (false would have been Refuted,
            // an overflow would have been Err), so the search failed on a
            // genuine theorem; say so instead of leaving its status open.
            if hyps.is_empty() {
                out!(
                    "⊢NKA {l} = {r} holds (by decision), but no rewrite proof was found within the search budget"
                );
            } else {
                out!("no proof found within the search budget");
            }
            ExitCode::from(EXIT_NO)
        }
        Err(err) => budget_exceeded(&err),
    }
}

fn encode_demo() -> ExitCode {
    use nka_qprog::{EncoderSetting, Program};
    use qsim_quantum::{gates, states, Measurement};

    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h);
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).expect("encoding succeeds");
    out!("program:   {w}");
    out!("encoding:  {enc}");
    let out = w.run(&states::basis_density(2, 1));
    out!("⟦P⟧(|1⟩⟨1|) = |0⟩⟨0| with trace {:.6}", out.trace().re);
    ExitCode::from(EXIT_OK)
}
