//! # nka-quantum
//!
//! A from-scratch Rust reproduction of **“Algebraic Reasoning of Quantum
//! Programs via Non-idempotent Kleene Algebra”** (Peng, Ying, Wu — PLDI
//! 2022, extended version arXiv:2110.07018).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`semiring`] — `N̄ = N ∪ {∞}`, exact big rationals, semiring traits.
//! * [`syntax`] — NKA expressions `ExpΣ` (Definition 2.2), parser, printer.
//! * [`series`] — formal power series over `N̄` and the semantics `{{−}}`
//!   (Appendix A), the ground-truth model used as a testing oracle.
//! * [`wfa`] — weighted finite automata and the **decision procedure** for
//!   the NKA equational theory (Remark 2.1 / Theorem A.6).
//! * [`nka`] — the NKA axioms (Figure 3), a machine-checkable proof
//!   calculus, the derived theorems of Figure 2, and Horn-clause reasoning
//!   (Corollary 4.3).
//! * [`api`] — **Query API v1**: the typed [`Session`]/[`Query`] facade
//!   with structured [`Verdict`]s, plus the JSONL wire format behind
//!   `nka batch` and `nka serve`.
//! * [`linalg`] / [`quantum`] — the quantum substrate: complex matrices,
//!   Hermitian eigendecomposition, superoperators, measurements.
//! * [`qpath`] — the quantum path model `P(H)` over extended positive
//!   operators `PO∞(H)` (Section 3) and quantum interpretations `Qint`
//!   (Section 4.1).
//! * [`qprog`] — quantum while-programs, denotational semantics, the
//!   encoder `Enc` (Section 4.2), the normal-form transformation of
//!   Theorem 6.1, the textual surface language behind the `prog_eq` /
//!   `hoare` workload queries, and Hoare triples + wlp.
//! * [`nkat`] — effect algebra, partitions, NKAT (Section 7), and the
//!   propositional quantum Hoare logic embedding (Theorem 7.8).
//! * [`apps`] — the paper's worked applications: compiler-optimization
//!   rules (Section 5), the QSP optimization (Appendix B), the normal-form
//!   example (Section 6), and the completeness construction (Appendix C.5).
//!
//! # Quickstart
//!
//! Decide an NKA equation and check one of the paper's proofs:
//!
//! ```
//! use nka_quantum::nka::{decide_eq, theorems};
//! use nka_quantum::syntax::Expr;
//!
//! // denesting (Figure 2a): (p + q)* = (p*q)*p*
//! let lhs: Expr = "(p + q)*".parse()?;
//! let rhs: Expr = "(p* q)* p*".parse()?;
//! assert!(decide_eq(&lhs, &rhs)?);
//!
//! // ... and the same fact as a machine-checked proof object.
//! let p: Expr = "p".parse()?;
//! let q: Expr = "q".parse()?;
//! let proof = theorems::denesting_left(&p, &q);
//! proof.check_closed()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use nka_apps as apps;
pub use nka_core as nka;
// Query API v1 — the typed request/response surface; see `nka_core::api`.
pub use nka_core::api;
pub use nka_core::api::{
    run_batch_parallel, ApiError, MemoryStats, Query, Response, Session, SessionOptions, Verdict,
};
// Serve v2 — the concurrent socket server and `--stats` observability
// layer; see `nka_core::serve`.
pub use nka_core::serve;
pub use nka_qpath as qpath;
pub use nka_qprog as qprog;
pub use nka_semiring as semiring;
pub use nka_series as series;
pub use nka_syntax as syntax;
pub use nka_wfa as wfa;
pub use nkat;
pub use qsim_linalg as linalg;
pub use qsim_quantum as quantum;
