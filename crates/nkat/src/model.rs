//! The NKAT path model (Theorem 7.6): `(P(H), PPred(H), PMeas(H), +, ⋄,
//! *, ⪯, O, I, ⟨C_I⟩↑)`.
//!
//! Quantum predicates enter the path model as lifted constant
//! superoperators (`PPred(H)`, Definition 7.2); quantum measurements as
//! dual-lifted branch tuples (`PMeas(H)`, Definition 7.5). This module
//! builds those actions and checks the NKAT-specific axioms on them —
//! the machine-checkable face of Theorem 7.6. The NKA axioms themselves
//! are checked on the same carrier in `nka-qpath`.

use crate::effect::Effect;
use nka_qpath::{action::actions_approx_eq, Action};
use qsim_quantum::Measurement;

/// The predicate action `⟨C_A⟩↑ ∈ PPred(H)`.
pub fn predicate_action(effect: &Effect) -> Action {
    Action::lift(effect.constant_superoperator())
}

/// The top predicate `e = ⟨C_I⟩↑`.
pub fn top_action(dim: usize) -> Action {
    predicate_action(&Effect::top(dim))
}

/// The dual-lifted branches `(⟨Mᵢ†⟩↑)ᵢ ∈ PMeas(H)` of a measurement.
pub fn partition_actions(meas: &Measurement) -> Vec<Action> {
    (0..meas.outcome_count())
        .map(|i| Action::lift(meas.branch(i).dual()))
        .collect()
}

/// Definition 7.4(3a) on the model: `mᵢ · L ⊆ L` — the diamond
/// composition of a partition entry with a predicate is again a
/// predicate, namely `⟨C_{Mᵢ†AMᵢ}⟩↑`.
pub fn partition_preserves_predicates(meas: &Measurement, effect: &Effect, tol: f64) -> bool {
    partition_actions(meas).iter().enumerate().all(|(i, mi)| {
        let lhs = mi.diamond(&predicate_action(effect));
        let expected = effect.pre_measure(meas.operator(i));
        let rhs = predicate_action(&expected);
        let _ = tol;
        actions_approx_eq(&lhs, &rhs)
    })
}

/// Definition 7.4(3b) on the model: `Σᵢ mᵢ e = e`.
pub fn partition_sums_to_top(meas: &Measurement) -> bool {
    let dim = meas.dim();
    let top = top_action(dim);
    let parts = partition_actions(meas);
    let mut sum = parts[0].diamond(&top);
    for mi in &parts[1..] {
        sum = sum.plus(&mi.diamond(&top));
    }
    actions_approx_eq(&sum, &top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_linalg::{CMatrix, Complex};
    use qsim_quantum::{gates, states};

    fn sample_effect(dim: usize, seed: &mut u64) -> Effect {
        // Half of a random density plus a fraction of the identity stays
        // within [0, I].
        let rho = states::random_density(dim, seed);
        Effect::new(&rho.scale(Complex::from(0.5))).expect("valid effect")
    }

    #[test]
    fn theorem_7_6_partition_rules_hold() {
        let mut seed = 0x76;
        for meas in [
            Measurement::computational_basis(2),
            Measurement::from_projector(&{
                let h = gates::hadamard();
                &(&h * &states::basis_density(2, 0)) * &h.adjoint()
            }),
        ] {
            assert!(partition_sums_to_top(&meas));
            for _ in 0..3 {
                let effect = sample_effect(2, &mut seed);
                assert!(partition_preserves_predicates(&meas, &effect, 1e-8));
            }
        }
    }

    #[test]
    fn lemma_7_7_in_the_model() {
        // a + ā = e as actions.
        let mut seed = 0x77;
        let a = sample_effect(2, &mut seed);
        let lhs = predicate_action(&a).plus(&predicate_action(&a.negation()));
        assert!(actions_approx_eq(&lhs, &top_action(2)));
        // partition-transform: Σ mᵢ āᵢ = (Σ mᵢ aᵢ)‾.
        let meas = Measurement::computational_basis(2);
        let b = sample_effect(2, &mut seed);
        let parts = partition_actions(&meas);
        let neg_sum = parts[0]
            .diamond(&predicate_action(&a.negation()))
            .plus(&parts[1].diamond(&predicate_action(&b.negation())));
        let combined = a
            .pre_measure(meas.operator(0))
            .try_plus(&b.pre_measure(meas.operator(1)))
            .expect("partition sum is an effect");
        let rhs = predicate_action(&combined.negation());
        assert!(actions_approx_eq(&neg_sum, &rhs));
    }

    #[test]
    fn predicates_are_constant_actions() {
        // ⟨C_A⟩↑ maps every density to tr(ρ)·A — in particular it forgets
        // the input state except for its trace.
        let mut seed = 0x78;
        let a = sample_effect(2, &mut seed);
        let action = predicate_action(&a);
        let x = nka_qpath::ExtPosOp::from_operator(&states::basis_density(2, 0));
        let y = nka_qpath::ExtPosOp::from_operator(&states::basis_density(2, 1));
        assert!(action.apply(&x).approx_eq(&action.apply(&y)));
        assert!(action.apply(&x).finite_part().approx_eq(a.matrix(), 1e-9));
    }

    #[test]
    fn noncommuting_measurements_are_distinguished() {
        // The quantumness claim of §1: partitions from non-commuting
        // measurements do not commute as actions.
        let z = Measurement::computational_basis(2);
        let h = gates::hadamard();
        let x_basis =
            Measurement::from_projector(&(&(&h * &states::basis_density(2, 0)) * &h.adjoint()));
        let mz = partition_actions(&z);
        let mx = partition_actions(&x_basis);
        let zx = mz[0].diamond(&mx[0]);
        let xz = mx[0].diamond(&mz[0]);
        assert!(!actions_approx_eq(&zx, &xz));
        let _ = CMatrix::identity(2);
    }
}
