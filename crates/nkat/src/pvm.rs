//! Projection-valued measurements and the classical Boolean subalgebra
//! (footnote 4 of Section 7.2).
//!
//! The paper's partitions model general POVMs. Footnote 4 classifies two
//! finer structures inside `N`:
//!
//! 1. **PVMs** — tuples `(mᵢ)` with `mᵢmⱼ = mᵢ` if `i = j` and `mᵢmⱼ = 0`
//!    otherwise. [`is_pvm`] checks the property on a concrete
//!    [`Measurement`]; [`pvm_partition_hypotheses`] generates the
//!    corresponding NKA hypotheses so proofs can absorb repeated or
//!    contradictory projective outcomes (the §5.1 unrolling proof and the
//!    `double-measure` rule of `nka-apps` are instances).
//!
//! 2. **The commutative projective class** `C(H) = {E : E(ρ) = DρD†, D
//!    diagonal, D² = D}` — measurement superoperators of *probabilistic
//!    programs*. Footnote 4 observes a Boolean algebra inside it:
//!    [`DiagonalTest`] realizes the class (a diagonal projector = a
//!    subset of the computational basis) with meet = superoperator
//!    composition, join via De Morgan, and complement `I − D`, and the
//!    module's tests machine-check the Boolean laws. On this class the
//!    two roles that quantum branching separates — *guard* and *test*
//!    (§1.2) — coincide again: observing a diagonal test does not disturb
//!    diagonal states, which is exactly the classical assumption KAT
//!    builds on.
//!
//! # Examples
//!
//! ```
//! use nkat::pvm::DiagonalTest;
//!
//! // Tests over a 2-bit classical register (dim 4).
//! let b0 = DiagonalTest::from_indices(4, [0, 1]); // first bit = 0
//! let b1 = DiagonalTest::from_indices(4, [0, 2]); // second bit = 0
//! let both = b0.and(&b1);
//! assert_eq!(both.indices(), vec![0]);
//! // Idempotence — recovered on the Boolean subalgebra.
//! assert_eq!(b0.and(&b0), b0);
//! // The guard/test coincidence: composition commutes in C(H).
//! assert_eq!(b0.and(&b1), b1.and(&b0));
//! ```

use nka_core::Judgment;
use nka_syntax::{Expr, Symbol};
use qsim_linalg::{CMatrix, Complex};
use qsim_quantum::{Measurement, Superoperator};

use crate::effect::Effect;

/// Checks that a measurement is projection-valued: `MᵢMⱼ = δᵢⱼMᵢ`.
///
/// # Examples
///
/// ```
/// use nkat::pvm::is_pvm;
/// use qsim_quantum::Measurement;
///
/// assert!(is_pvm(&Measurement::computational_basis(3), 1e-12));
/// ```
pub fn is_pvm(meas: &Measurement, tol: f64) -> bool {
    let k = meas.outcome_count();
    for i in 0..k {
        for j in 0..k {
            let prod = meas.operator(i) * meas.operator(j);
            let expect = if i == j {
                meas.operator(i).clone()
            } else {
                CMatrix::zeros(meas.dim(), meas.dim())
            };
            if !prod.approx_eq(&expect, tol) {
                return false;
            }
        }
    }
    true
}

/// The footnote-4 PVM hypotheses for a partition named by `symbols`:
/// `mᵢ mᵢ = mᵢ` and `mᵢ mⱼ = 0` for `i ≠ j`.
///
/// These are exactly the hypotheses the §5.1 unrolling proof assumes for
/// its two-outcome measurement; this generator scales them to any arity
/// so rule proofs can declare "this partition is projective" uniformly.
pub fn pvm_partition_hypotheses(symbols: &[Symbol]) -> Vec<Judgment> {
    let mut hyps = Vec::new();
    for (i, &a) in symbols.iter().enumerate() {
        for (j, &b) in symbols.iter().enumerate() {
            let lhs = Expr::atom(a).mul(&Expr::atom(b));
            let rhs = if i == j { Expr::atom(a) } else { Expr::zero() };
            hyps.push(Judgment::Eq(lhs, rhs));
        }
    }
    hyps
}

/// Discharges [`pvm_partition_hypotheses`] on a concrete measurement:
/// hypothesis `mᵢmⱼ = δᵢⱼmᵢ` holds iff the *superoperator* composition
/// `Mᵢ ∘ Mⱼ` equals `δᵢⱼ Mᵢ` (Corollary 4.3's premise-discharge step).
pub fn pvm_hypotheses_hold(meas: &Measurement, tol: f64) -> bool {
    let k = meas.outcome_count();
    for i in 0..k {
        for j in 0..k {
            // Encoding order: `mᵢ mⱼ` means "apply Mᵢ, then Mⱼ".
            let prod = meas.branch(i).compose(&meas.branch(j));
            let expect = if i == j {
                meas.branch(i)
            } else {
                Superoperator::zero(meas.dim())
            };
            if !prod.approx_eq(&expect, tol) {
                return false;
            }
        }
    }
    true
}

/// An element of the commutative projective class `C(H)`: a diagonal
/// projector `D`, i.e. a subset of the computational basis.
///
/// `DiagonalTest` is simultaneously
/// * a quantum predicate (the projector as an [`Effect`]),
/// * a measurement branch (`{D, I − D}` is a two-outcome PVM), and
/// * a classical proposition (the subset), with Boolean structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalTest {
    dim: usize,
    member: Vec<bool>,
}

impl DiagonalTest {
    /// The test holding on the given basis indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn from_indices<I: IntoIterator<Item = usize>>(dim: usize, indices: I) -> DiagonalTest {
        let mut member = vec![false; dim];
        for i in indices {
            assert!(i < dim, "basis index {i} out of range for dim {dim}");
            member[i] = true;
        }
        DiagonalTest { dim, member }
    }

    /// The always-false test (`D = 0`).
    pub fn bottom(dim: usize) -> DiagonalTest {
        DiagonalTest {
            dim,
            member: vec![false; dim],
        }
    }

    /// The always-true test (`D = I`).
    pub fn top(dim: usize) -> DiagonalTest {
        DiagonalTest {
            dim,
            member: vec![true; dim],
        }
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The basis indices on which the test holds.
    pub fn indices(&self) -> Vec<usize> {
        (0..self.dim).filter(|&i| self.member[i]).collect()
    }

    /// Boolean meet — intersection of supports. In `C(H)` this is
    /// superoperator composition (in either order).
    #[must_use]
    pub fn and(&self, other: &DiagonalTest) -> DiagonalTest {
        assert_eq!(self.dim, other.dim);
        DiagonalTest {
            dim: self.dim,
            member: (0..self.dim)
                .map(|i| self.member[i] && other.member[i])
                .collect(),
        }
    }

    /// Boolean join — union of supports (`¬(¬a ∧ ¬b)` by De Morgan).
    #[must_use]
    pub fn or(&self, other: &DiagonalTest) -> DiagonalTest {
        assert_eq!(self.dim, other.dim);
        DiagonalTest {
            dim: self.dim,
            member: (0..self.dim)
                .map(|i| self.member[i] || other.member[i])
                .collect(),
        }
    }

    /// Boolean complement — the projector `I − D`.
    #[must_use]
    pub fn not(&self) -> DiagonalTest {
        DiagonalTest {
            dim: self.dim,
            member: self.member.iter().map(|&b| !b).collect(),
        }
    }

    /// Inclusion of supports (the Boolean partial order, which agrees
    /// with the Löwner order on the projectors).
    pub fn le(&self, other: &DiagonalTest) -> bool {
        self.dim == other.dim && (0..self.dim).all(|i| !self.member[i] || other.member[i])
    }

    /// The diagonal projector `D`.
    pub fn projector(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.dim, self.dim);
        for i in self.indices() {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// The measurement superoperator `E(ρ) = DρD`.
    pub fn superoperator(&self) -> Superoperator {
        Superoperator::from_kraus(self.dim, self.dim, vec![self.projector()])
    }

    /// The test as a quantum predicate (effect) — projectors are effects.
    pub fn to_effect(&self) -> Effect {
        Effect::new(&self.projector()).expect("projectors are effects")
    }

    /// The two-outcome PVM `{D, I − D}` (outcome 0 = test holds).
    pub fn measurement(&self) -> Measurement {
        Measurement::new(vec![self.projector(), self.not().projector()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nka_core::EqChain;
    use qsim_quantum::states;

    fn all_tests(dim: usize) -> Vec<DiagonalTest> {
        // All 2^dim subsets — exhaustive Boolean-law checking.
        (0..(1usize << dim))
            .map(|mask| DiagonalTest::from_indices(dim, (0..dim).filter(|i| mask >> i & 1 == 1)))
            .collect()
    }

    #[test]
    fn computational_basis_is_pvm_and_discharges_hypotheses() {
        let meas = Measurement::computational_basis(3);
        assert!(is_pvm(&meas, 1e-12));
        assert!(pvm_hypotheses_hold(&meas, 1e-12));
    }

    #[test]
    fn non_projective_povm_rejected() {
        // The "half-strength" POVM {I/√2, I/√2} is complete but not
        // projective.
        let dim = 2;
        let k = CMatrix::identity(dim).scale(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
        let meas = Measurement::new(vec![k.clone(), k]);
        assert!(!is_pvm(&meas, 1e-9));
        assert!(!pvm_hypotheses_hold(&meas, 1e-9));
    }

    #[test]
    fn pvm_hypothesis_generator_shapes() {
        let syms = [
            Symbol::intern("n0"),
            Symbol::intern("n1"),
            Symbol::intern("n2"),
        ];
        let hyps = pvm_partition_hypotheses(&syms);
        assert_eq!(hyps.len(), 9);
        assert_eq!(hyps[0].to_string(), "n0 n0 = n0");
        assert_eq!(hyps[1].to_string(), "n0 n1 = 0");
    }

    #[test]
    fn pvm_hypotheses_drive_double_measure_proof() {
        // With the generated hypotheses, `n0 (n0 p) = n0 p` is provable —
        // the footnote's "projective outcomes are idempotent" in action.
        let syms = [Symbol::intern("n0"), Symbol::intern("n1")];
        let hyps = pvm_partition_hypotheses(&syms);
        let start: Expr = "n0 (n0 p)".parse().unwrap();
        let chain = EqChain::with_hyps(&start, &hyps)
            .semiring(&"(n0 n0) p".parse().unwrap())
            .unwrap()
            .hyp_at(&[0], 0)
            .unwrap();
        assert_eq!(chain.judgment().to_string(), "n0 (n0 p) = n0 p");
        chain.into_proof().check(&hyps).unwrap();
    }

    #[test]
    fn boolean_laws_hold_exhaustively() {
        let ts = all_tests(3);
        for a in &ts {
            // Complement and idempotence.
            assert_eq!(a.and(&a.not()), DiagonalTest::bottom(3));
            assert_eq!(a.or(&a.not()), DiagonalTest::top(3));
            assert_eq!(a.and(a), *a);
            assert_eq!(a.or(a), *a);
            assert_eq!(a.not().not(), *a);
            for b in &ts {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                // De Morgan.
                assert_eq!(a.and(b).not(), a.not().or(&b.not()));
                // Absorption.
                assert_eq!(a.and(&a.or(b)), *a);
                for c in &ts {
                    assert_eq!(a.and(&b.and(c)), a.and(b).and(c));
                    assert_eq!(a.and(&b.or(c)), a.and(b).or(&a.and(c)));
                }
            }
        }
    }

    #[test]
    fn meet_is_superoperator_composition_and_commutes() {
        let a = DiagonalTest::from_indices(4, [0, 1]);
        let b = DiagonalTest::from_indices(4, [1, 3]);
        let ab = a.superoperator().compose(&b.superoperator());
        let ba = b.superoperator().compose(&a.superoperator());
        assert!(ab.approx_eq(&a.and(&b).superoperator(), 1e-12));
        assert!(ab.approx_eq(&ba, 1e-12), "C(H) is commutative");
    }

    #[test]
    fn tests_are_pvms() {
        let a = DiagonalTest::from_indices(4, [0, 2]);
        assert!(is_pvm(&a.measurement(), 1e-12));
        assert!(pvm_hypotheses_hold(&a.measurement(), 1e-12));
    }

    #[test]
    fn guard_test_coincidence_on_diagonal_states() {
        // Observing a diagonal test does not disturb diagonal states —
        // the classical assumption of §1.2 recovered inside C(H):
        // E_D(ρ) + E_{¬D}(ρ) = ρ for diagonal ρ.
        let d = DiagonalTest::from_indices(4, [1, 2]);
        let mut rho = CMatrix::zeros(4, 4);
        rho[(0, 0)] = Complex::new(0.1, 0.0);
        rho[(1, 1)] = Complex::new(0.4, 0.0);
        rho[(2, 2)] = Complex::new(0.3, 0.0);
        rho[(3, 3)] = Complex::new(0.2, 0.0);
        let observed = &d.superoperator().apply(&rho) + &d.not().superoperator().apply(&rho);
        assert!(observed.approx_eq(&rho, 1e-12));

        // … while a non-diagonal (genuinely quantum) state *is* disturbed.
        let plus = states::pure_state(&[
            Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            Complex::ZERO,
            Complex::ZERO,
        ]);
        let d2 = DiagonalTest::from_indices(4, [0]);
        let observed = &d2.superoperator().apply(&plus) + &d2.not().superoperator().apply(&plus);
        assert!(!observed.approx_eq(&plus, 1e-6));
    }

    #[test]
    fn expectation_matches_classical_probability() {
        // tr(D ρ) — the effect's expectation — equals the probability
        // that the PVM answers "holds".
        let d = DiagonalTest::from_indices(3, [0, 2]);
        let rho = states::basis_density(3, 2);
        assert!((d.to_effect().expectation(&rho) - 1.0).abs() < 1e-12);
        let rho = states::basis_density(3, 1);
        assert!(d.to_effect().expectation(&rho).abs() < 1e-12);
    }

    #[test]
    fn effect_negation_matches_boolean_complement() {
        let d = DiagonalTest::from_indices(4, [1, 3]);
        assert!(d
            .not()
            .to_effect()
            .approx_eq(&d.to_effect().negation(), 1e-12));
    }

    #[test]
    fn lowner_order_agrees_with_inclusion() {
        let small = DiagonalTest::from_indices(4, [1]);
        let big = DiagonalTest::from_indices(4, [1, 2]);
        assert!(small.le(&big));
        assert!(small.to_effect().le(&big.to_effect(), 1e-12));
        assert!(!big.le(&small));
        assert!(!big.to_effect().le(&small.to_effect(), 1e-12));
    }
}
