//! Non-idempotent Kleene algebra with tests — NKAT (Section 7 of
//! Peng–Ying–Wu, PLDI 2022).
//!
//! KAT's Boolean tests do not survive quantization: a quantum guard is a
//! *measurement* (it changes the state), and a quantum proposition is an
//! *effect* (a PSD operator `A ⊑ I`). NKAT therefore splits the two roles:
//!
//! * [`Effect`] — quantum predicates with the effect-algebra structure
//!   (Definition 7.1), modelled in the path model by lifted constant
//!   superoperators `C_A(ρ) = tr(ρ)·A` (Definition 7.2 / Lemma 7.3);
//! * partitions `(mᵢ)` — tuples with `Σ mᵢ e = e` abstracting quantum
//!   measurements in the dual sense (Definition 7.4 / 7.5);
//! * [`NkatContext`] — a declared effect/partition vocabulary that
//!   generates the NKAT hypotheses under which plain NKA proofs run, plus
//!   the one genuinely non-NKA rule (negation-reverse, Lemma 7.7.4) as a
//!   primitive step of [`NkatDerivation`];
//! * [`qhl`] — quantum Hoare triples `{A} P {B}`, the weakest liberal
//!   precondition calculus, the propositional proof system of Figure 5,
//!   and the **Theorem 7.8 compiler** from QHL derivations to checked
//!   NKAT proofs of the encoded inequality `p·b̄ ≤ ā`.
//!
//! # Examples
//!
//! Validate a Hoare triple semantically and through the algebra:
//!
//! ```
//! use nkat::qhl::{wlp, HoareTriple};
//! use nka_qprog::Program;
//! use qsim_quantum::{gates, states};
//! use qsim_linalg::CMatrix;
//!
//! // {X-basis certainty} H {Z-basis certainty}: {|+⟩⟨+|} h {|0⟩⟨0|}.
//! let h = Program::unitary("h", &gates::hadamard());
//! let plus = h.run(&states::basis_density(2, 0)); // |+⟩⟨+|
//! let triple = HoareTriple::new(&plus, &h, &states::basis_density(2, 0));
//! assert!(triple.holds_partial(1e-9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod context;
pub mod effect;
pub mod model;
pub mod pvm;
pub mod qhl;

pub use context::{NkatContext, NkatDerivation, NkatError, NkatStep};
pub use effect::Effect;
pub use pvm::DiagonalTest;
