//! Propositional quantum Hoare logic (Sections 7.3–7.4).
//!
//! A quantum Hoare triple `{A} P {B}` asserts partial correctness
//! (eq. 7.3.1): `tr(Aρ) ≤ tr(B⟦P⟧ρ) + tr(ρ) − tr(⟦P⟧ρ)`, equivalently
//! `A ⊑ wlp(P, B) = I − ⟦P⟧†(I − B)` ([`wlp`], [`HoareTriple`]).
//!
//! [`QhlDerivation`] implements the deductive system of Figure 5 (the
//! propositional fragment: Ax.Sk, Ax.Ab, R.OR, R.IF, R.SC, R.LP) with
//! semantic side conditions checked in the model, and [`encode_qhl`]
//! compiles a derivation into a checked NKAT derivation of the encoded
//! inequality `p·b̄ ≤ ā` — the constructive content of **Theorem 7.8**:
//! every propositional QHL proof is subsumed by NKAT reasoning.

use crate::context::{NkatContext, NkatDerivation, NkatError};
use nka_core::{Judgment, LeChain, Proof, ProofError};
use nka_qprog::{EncoderSetting, Program};
use nka_syntax::{Expr, Symbol};
use qsim_linalg::CMatrix;

// The semantic half of QHL — triples and the wlp characterization —
// lives with the programs it speaks about (`nka_qprog::hoare`), so the
// Query API can reach it without a crate cycle. Re-exported here under
// the historical paths; everything below builds on them.
pub use nka_qprog::hoare::{wlp, HoareTriple};

/// A derivation in the propositional proof system of Figure 5 (the red
/// rules), with atomic triples as leaves (Ax.In / Ax.UT statements are
/// atomic propositions in the propositional fragment).
#[derive(Debug, Clone)]
pub enum QhlDerivation {
    /// `{A} skip {A}` (Ax.Sk).
    AxSkip {
        /// Shared pre/postcondition.
        a: CMatrix,
    },
    /// `{I} abort {O}` (Ax.Ab).
    AxAbort,
    /// An atomic triple taken as given; validity is checked semantically.
    Atomic(HoareTriple),
    /// Order rule (R.OR): strengthen the precondition to `a`, weaken the
    /// postcondition to `b`.
    Order {
        /// Strengthened precondition (`a ⊑ inner pre`).
        a: CMatrix,
        /// Weakened postcondition (`inner post ⊑ b`).
        b: CMatrix,
        /// Sub-derivation for `{A′} P {B′}`.
        inner: Box<QhlDerivation>,
    },
    /// Sequencing (R.SC).
    Seq(Box<QhlDerivation>, Box<QhlDerivation>),
    /// Branching (R.IF): one sub-derivation per branch, common post.
    If(Vec<QhlDerivation>),
    /// Looping (R.LP): `{B} P {C}` with `C = M₀†(A) + M₁†(B)` gives
    /// `{C} while M = 1 do P {A}`.
    Loop {
        /// Postcondition `A` of the loop.
        a: CMatrix,
        /// Sub-derivation for the body.
        inner: Box<QhlDerivation>,
    },
}

/// Error raised when a Figure-5 derivation is malformed.
#[derive(Debug, Clone)]
pub struct QhlError {
    detail: String,
}

impl std::fmt::Display for QhlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid QHL derivation: {}", self.detail)
    }
}

impl std::error::Error for QhlError {}

fn qhl_error(detail: impl Into<String>) -> QhlError {
    QhlError {
        detail: detail.into(),
    }
}

const TOL: f64 = 1e-8;

impl QhlDerivation {
    /// The triple this derivation concludes for `prog`, checking every
    /// rule's side conditions (Löwner inequalities of R.OR, the invariant
    /// equation of R.LP, matching intermediate conditions, atomic-triple
    /// validity) within `1e-8`.
    ///
    /// # Errors
    ///
    /// Fails on any violated side condition or structure mismatch.
    pub fn conclude(&self, prog: &Program) -> Result<HoareTriple, QhlError> {
        match (self, prog) {
            (QhlDerivation::AxSkip { a }, Program::Skip(d)) => {
                if a.rows() != *d {
                    return Err(qhl_error("skip dimension mismatch"));
                }
                Ok(HoareTriple::new(a, prog, a))
            }
            (QhlDerivation::AxAbort, Program::Abort(d)) => Ok(HoareTriple::new(
                &CMatrix::identity(*d),
                prog,
                &CMatrix::zeros(*d, *d),
            )),
            (QhlDerivation::Atomic(triple), _) => {
                if !triple.holds_partial(TOL) {
                    return Err(qhl_error("atomic triple does not hold"));
                }
                Ok(triple.clone())
            }
            (QhlDerivation::Order { a, b, inner }, _) => {
                let sub = inner.conclude(prog)?;
                if !qsim_linalg::lowner_le(a, sub.pre(), TOL) {
                    return Err(qhl_error("R.OR: A ⋢ A′"));
                }
                if !qsim_linalg::lowner_le(sub.post(), b, TOL) {
                    return Err(qhl_error("R.OR: B′ ⋢ B"));
                }
                Ok(HoareTriple::new(a, prog, b))
            }
            (QhlDerivation::Seq(d1, d2), Program::Seq(p1, p2)) => {
                let t1 = d1.conclude(p1)?;
                let t2 = d2.conclude(p2)?;
                if !t1.post().approx_eq(t2.pre(), TOL) {
                    return Err(qhl_error("R.SC: intermediate conditions differ"));
                }
                Ok(HoareTriple::new(t1.pre(), prog, t2.post()))
            }
            (QhlDerivation::If(branches), Program::Case(m, progs)) => {
                if branches.len() != progs.len() {
                    return Err(qhl_error("R.IF: branch count mismatch"));
                }
                let dim = prog.dim();
                let mut pre = CMatrix::zeros(dim, dim);
                let mut post: Option<CMatrix> = None;
                for (i, (d, p)) in branches.iter().zip(progs).enumerate() {
                    let t = d.conclude(p)?;
                    match &post {
                        None => post = Some(t.post().clone()),
                        Some(b) if t.post().approx_eq(b, TOL) => {}
                        Some(_) => return Err(qhl_error("R.IF: postconditions differ")),
                    }
                    let mi = m.measurement().operator(i);
                    pre = &pre + &(&(&mi.adjoint() * t.pre()) * mi);
                }
                Ok(HoareTriple::new(
                    &pre,
                    prog,
                    &post.ok_or_else(|| qhl_error("R.IF: empty case"))?,
                ))
            }
            (QhlDerivation::Loop { a, inner }, Program::While(m, body)) => {
                let t = inner.conclude(body)?;
                let m0 = m.measurement().operator(0);
                let m1 = m.measurement().operator(1);
                let c = &(&(&m0.adjoint() * a) * m0) + &(&(&m1.adjoint() * t.pre()) * m1);
                if !t.post().approx_eq(&c, TOL) {
                    return Err(qhl_error("R.LP: C ≠ M₀†(A) + M₁†(B)"));
                }
                Ok(HoareTriple::new(&c, prog, a))
            }
            _ => Err(qhl_error("rule does not match program structure")),
        }
    }
}

/// Maps semantic effects (matrices) to their propositional terms and
/// negation terms. Equal matrices share a term; compound terms (partition
/// sums) can be pre-registered so side conditions like R.LP's invariant
/// resolve to the right syntax.
struct EffectRegistry {
    entries: Vec<(CMatrix, Expr, Expr)>,
    fresh: usize,
}

impl EffectRegistry {
    fn new() -> EffectRegistry {
        EffectRegistry {
            entries: Vec::new(),
            fresh: 0,
        }
    }

    fn lookup(&self, m: &CMatrix) -> Option<(Expr, Expr)> {
        self.entries
            .iter()
            .find(|(mat, _, _)| mat.approx_eq(m, TOL))
            .map(|(_, t, n)| (*t, *n))
    }

    fn register(&mut self, m: &CMatrix, term: Expr, neg: Expr) {
        self.entries.push((m.clone(), term, neg));
    }

    fn term_for(&mut self, m: &CMatrix, ctx: &mut NkatContext) -> (Expr, Expr) {
        if let Some(found) = self.lookup(m) {
            return found;
        }
        let name = format!("q{}", self.fresh);
        let neg = format!("q{}_neg", self.fresh);
        self.fresh += 1;
        let (a, na) = ctx.declare_effect(&name, &neg);
        let pair = (Expr::atom(a), Expr::atom(na));
        self.register(m, pair.0, pair.1);
        pair
    }
}

/// The result of compiling a QHL derivation via Theorem 7.8.
#[derive(Debug)]
pub struct EncodedQhl {
    /// The generated NKAT vocabulary.
    pub ctx: NkatContext,
    /// The checked NKAT derivation.
    pub derivation: NkatDerivation,
    /// Index of the encoded conclusion `p·b̄ ≤ ā` among the facts.
    pub conclusion: usize,
    /// The encoding `p` of the program.
    pub program_expr: Expr,
    /// The term and negation of the precondition.
    pub pre_terms: (Expr, Expr),
    /// The term and negation of the postcondition.
    pub post_terms: (Expr, Expr),
}

/// A planned derivation node carrying its encoding and effect terms.
struct Node {
    kind: Kind,
    p: Expr,
    pre: (Expr, Expr),
    post: (Expr, Expr),
}

enum Kind {
    Skip,
    Abort,
    Atomic {
        hyp: usize,
    },
    Order {
        inner: Box<Node>,
        le_pre: usize,
        le_post: usize,
    },
    Seq(Box<Node>, Box<Node>),
    If {
        branches: Vec<(Expr, Node)>,
    },
    Loop {
        inner: Box<Node>,
        m0: Expr,
        m1: Expr,
    },
}

/// Compiles a Figure-5 derivation into a checked NKAT derivation of the
/// encoded inequality `Enc(P)·b̄ ≤ ā` — the constructive content of
/// Theorem 7.8. Semantic effects become effect atoms (equal effects share
/// an atom), measurements become partitions, the side conditions of R.OR
/// and the atomic triples enter as Horn hypotheses.
///
/// # Errors
///
/// Fails if the derivation is invalid ([`QhlDerivation::conclude`]), the
/// program cannot be encoded, or an internal algebra step fails to check
/// (which would be a bug; the tests re-verify every emitted derivation).
pub fn encode_qhl(
    derivation: &QhlDerivation,
    prog: &Program,
    setting: &mut EncoderSetting,
) -> Result<EncodedQhl, NkatError> {
    let to_nkat = |s: String| NkatError::from(ProofError::custom("qhl-encode", s));
    derivation
        .conclude(prog)
        .map_err(|e| to_nkat(e.to_string()))?;
    let program_expr = setting.encode(prog).map_err(|e| to_nkat(e.to_string()))?;

    let mut ctx = NkatContext::new("e");
    let mut registry = EffectRegistry::new();
    let node = plan(derivation, prog, &mut ctx, &mut registry, setting)?;
    let mut nkat = NkatDerivation::new(&ctx);
    let conclusion = emit(&node, &mut nkat)?;
    nkat.verify()?;
    Ok(EncodedQhl {
        ctx,
        derivation: nkat,
        conclusion,
        program_expr,
        pre_terms: node.pre,
        post_terms: node.post,
    })
}

fn plan(
    d: &QhlDerivation,
    prog: &Program,
    ctx: &mut NkatContext,
    reg: &mut EffectRegistry,
    setting: &mut EncoderSetting,
) -> Result<Node, NkatError> {
    let to_nkat = |s: String| NkatError::from(ProofError::custom("qhl-encode", s));
    let dim = prog.dim();
    let identity = CMatrix::identity(dim);
    let zero = CMatrix::zeros(dim, dim);
    // I ↦ (e, 0) and O ↦ (0, e), lazily.
    if reg.lookup(&identity).is_none() {
        reg.register(&identity, Expr::atom(ctx.top()), Expr::zero());
    }
    if reg.lookup(&zero).is_none() {
        reg.register(&zero, Expr::zero(), Expr::atom(ctx.top()));
    }

    match (d, prog) {
        (QhlDerivation::AxSkip { a }, Program::Skip(_)) => {
            let pair = reg.term_for(a, ctx);
            Ok(Node {
                kind: Kind::Skip,
                p: Expr::one(),
                pre: pair,
                post: pair,
            })
        }
        (QhlDerivation::AxAbort, Program::Abort(_)) => Ok(Node {
            kind: Kind::Abort,
            p: Expr::zero(),
            pre: (Expr::atom(ctx.top()), Expr::zero()),
            post: (Expr::zero(), Expr::atom(ctx.top())),
        }),
        (QhlDerivation::Atomic(triple), _) => {
            let p = setting.encode(prog).map_err(|e| to_nkat(e.to_string()))?;
            let pre = reg.term_for(triple.pre(), ctx);
            let post = reg.term_for(triple.post(), ctx);
            let hyp = ctx.add_hypothesis(Judgment::Le(p.mul(&post.1), pre.1));
            Ok(Node {
                kind: Kind::Atomic { hyp },
                p,
                pre,
                post,
            })
        }
        (QhlDerivation::Order { a, b, inner }, _) => {
            let sub = plan(inner, prog, ctx, reg, setting)?;
            let pre = reg.term_for(a, ctx);
            let post = reg.term_for(b, ctx);
            let le_pre = ctx.add_hypothesis(Judgment::Le(pre.0, sub.pre.0));
            let le_post = ctx.add_hypothesis(Judgment::Le(sub.post.0, post.0));
            let p = sub.p;
            Ok(Node {
                kind: Kind::Order {
                    inner: Box::new(sub),
                    le_pre,
                    le_post,
                },
                p,
                pre,
                post,
            })
        }
        (QhlDerivation::Seq(d1, d2), Program::Seq(p1, p2)) => {
            let s1 = plan(d1, p1, ctx, reg, setting)?;
            let s2 = plan(d2, p2, ctx, reg, setting)?;
            let p = s1.p.mul(&s2.p);
            let pre = s1.pre;
            let post = s2.post;
            Ok(Node {
                kind: Kind::Seq(Box::new(s1), Box::new(s2)),
                p,
                pre,
                post,
            })
        }
        (QhlDerivation::If(ds), Program::Case(m, progs)) => {
            // Partition first (its hypothesis index precedes the branches').
            let names: Vec<String> = (0..m.outcome_count())
                .map(|i| m.name(i).to_owned())
                .collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            ctx.declare_partition(&name_refs);
            // Pre-register each branch's pre/post so the compound
            // precondition resolves componentwise, then build the node.
            let mut branches = Vec::new();
            let mut pre_terms = Vec::new();
            let mut pre_negs = Vec::new();
            let mut p_terms = Vec::new();
            let mut post = None;
            for ((db, pb), name) in ds.iter().zip(progs).zip(&names) {
                let sub = plan(db, pb, ctx, reg, setting)?;
                let mi = Expr::atom(Symbol::intern(name));
                pre_terms.push(mi.mul(&sub.pre.0));
                pre_negs.push(mi.mul(&sub.pre.1));
                p_terms.push(mi.mul(&sub.p));
                if post.is_none() {
                    post = Some(sub.post);
                }
                branches.push((mi, sub));
            }
            let pre = (Expr::sum(pre_terms), Expr::sum(pre_negs));
            // Register the compound precondition's matrix so outer rules
            // (e.g. R.SC) can refer to it.
            if let Ok(t) = d.conclude(prog) {
                if reg.lookup(t.pre()).is_none() {
                    reg.register(t.pre(), pre.0, pre.1);
                }
            }
            Ok(Node {
                kind: Kind::If { branches },
                p: Expr::sum(p_terms),
                pre,
                post: post.ok_or_else(|| to_nkat("empty case".to_string()))?,
            })
        }
        (QhlDerivation::Loop { a, inner }, Program::While(m, body)) => {
            ctx.declare_partition(&[m.name(0), m.name(1)]);
            let m0 = Expr::atom(Symbol::intern(m.name(0)));
            let m1 = Expr::atom(Symbol::intern(m.name(1)));
            let a_pair = reg.term_for(a, ctx);
            // Inner triple {B} P {C}: fix B's term, then pre-register the
            // compound C = m0·a + m1·b so the body's planning resolves its
            // postcondition to the partition-sum shape.
            let t_inner = inner.conclude(body).map_err(|e| to_nkat(e.to_string()))?;
            let b_pair = reg.term_for(t_inner.pre(), ctx);
            let c_term = m0.mul(&a_pair.0).add(&m1.mul(&b_pair.0));
            let c_neg = m0.mul(&a_pair.1).add(&m1.mul(&b_pair.1));
            if reg.lookup(t_inner.post()).is_none() {
                reg.register(t_inner.post(), c_term, c_neg);
            }
            let sub = plan(inner, body, ctx, reg, setting)?;
            let p = m1.mul(&sub.p).star().mul(&m0);
            Ok(Node {
                kind: Kind::Loop {
                    inner: Box::new(sub),
                    m0,
                    m1,
                },
                p,
                pre: (c_term, c_neg),
                post: a_pair,
            })
        }
        _ => Err(to_nkat("rule does not match program structure".to_string())),
    }
}

/// Emits the Theorem 7.8 derivation for a node; returns the fact index of
/// `p·(post negation) ≤ (pre negation)`.
fn emit(node: &Node, nkat: &mut NkatDerivation) -> Result<usize, NkatError> {
    match &node.kind {
        // (Ax.Sk): 1·ā ≤ ā.
        Kind::Skip => {
            let start = Expr::one().mul(&node.post.1);
            let chain = LeChain::with_hyps(&start, nkat.facts()).semiring(&node.pre.1)?;
            nkat.nka(chain.into_proof())
        }
        // (Ax.Ab): 0·e ≤ 0.
        Kind::Abort => {
            let start = Expr::zero().mul(&node.post.1);
            let chain = LeChain::with_hyps(&start, nkat.facts()).semiring(&Expr::zero())?;
            nkat.nka(chain.into_proof())
        }
        Kind::Atomic { hyp } => Ok(*hyp),
        // (R.OR): p·b̄ ≤ p·b̄′ ≤ ā′ ≤ ā, via two negation-reversals.
        Kind::Order {
            inner,
            le_pre,
            le_post,
        } => {
            let inner_idx = emit(inner, nkat)?;
            let nb_le = nkat.neg_reverse(*le_post)?; // b̄ ≤ b̄′
            let na_le = nkat.neg_reverse(*le_pre)?; // ā′ ≤ ā
            let start = node.p.mul(&node.post.1);
            let chain = LeChain::with_hyps(&start, nkat.facts())
                .le_rw_at(&[1], Proof::Hyp(nb_le))?
                .le_step(Proof::Hyp(inner_idx))?
                .le_step(Proof::Hyp(na_le))?;
            nkat.nka(chain.into_proof())
        }
        // (R.SC): p₁(p₂ c̄) ≤ p₁ b̄ ≤ ā.
        Kind::Seq(s1, s2) => {
            let i1 = emit(s1, nkat)?;
            let i2 = emit(s2, nkat)?;
            let start = node.p.mul(&node.post.1); // (p₁ p₂) c̄
            let chain = LeChain::with_hyps(&start, nkat.facts())
                .semiring(&s1.p.mul(&s2.p.mul(&node.post.1)))?
                .le_rw_at(&[1], Proof::Hyp(i2))?
                .le_step(Proof::Hyp(i1))?;
            nkat.nka(chain.into_proof())
        }
        // (R.IF): (Σ mᵢ pᵢ)·b̄ = Σ mᵢ(pᵢ b̄) ≤ Σ mᵢ āᵢ.
        Kind::If { branches } => {
            let mut indices = Vec::new();
            for (_, sub) in branches {
                indices.push(emit(sub, nkat)?);
            }
            let start = node.p.mul(&node.post.1);
            let distributed = Expr::sum(
                branches
                    .iter()
                    .map(|(mi, sub)| mi.mul(&sub.p.mul(&node.post.1))),
            );
            let mut chain = LeChain::with_hyps(&start, nkat.facts()).semiring(&distributed)?;
            // Rewrite each pᵢ·b̄ → āᵢ under its mᵢ·– context. Paths into
            // the left-associated sum: term i of k sits at [0]^(k−1−i)
            // then ([1] if i > 0), and the redex is its right factor.
            let k = branches.len();
            for (i, (_, _sub)) in branches.iter().enumerate() {
                let mut path = vec![0usize; k - 1 - i];
                if i > 0 {
                    path.push(1);
                }
                path.push(1); // into Mul(mᵢ, redex)
                let idx = indices[i];
                chain = chain.le_rw_at(&path, Proof::Hyp(idx))?;
            }
            // Now at Σ mᵢ āᵢ = node.pre.1 (same shape by construction).
            debug_assert_eq!(chain.current(), &node.pre.1);
            nkat.nka(chain.into_proof())
        }
        // (R.LP): star induction on m₀ā + (m₁ p) c̄ ≤ c̄.
        Kind::Loop { inner, m0, m1 } => {
            let inner_idx = emit(inner, nkat)?;
            let na = &node.post.1;
            let c_neg = &node.pre.1; // m₀ ā + m₁ b̄
            let m1p = m1.mul(&inner.p);
            let premise_start = m0.mul(na).add(&m1p.mul(c_neg));
            let premise = LeChain::with_hyps(&premise_start, nkat.facts())
                .semiring(&m0.mul(na).add(&m1.mul(&inner.p.mul(c_neg))))?
                .le_rw_at(&[1, 1], Proof::Hyp(inner_idx))?;
            debug_assert_eq!(premise.current(), c_neg);
            let ind = Proof::StarIndLeft(Box::new(premise.into_proof()));
            // (m₁ p)* (m₀ ā) ≤ c̄ — reshape to ((m₁ p)* m₀) ā ≤ c̄.
            let start = node.p.mul(na);
            let chain = LeChain::with_hyps(&start, nkat.facts())
                .semiring(&m1p.star().mul(&m0.mul(na)))?
                .le_step(ind)?;
            nkat.nka(chain.into_proof())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_linalg::Complex;
    use qsim_quantum::{gates, states, Measurement};

    fn coin_flip_loop() -> Program {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        Program::while_loop(["m0", "m1"], &meas, h)
    }

    // `wlp`/`HoareTriple` unit tests moved with the code to
    // `nka_qprog::hoare`; these exercise the Figure-5 derivations and
    // the Theorem 7.8 compiler on top of the re-exported names.

    fn loop_derivation() -> (QhlDerivation, Program) {
        // {C} while M = 1 do H {|0⟩⟨0|} with C = diag(1, ½), via the body
        // triple {½·I} H {C} (C = M₀†(|0⟩⟨0|) + M₁†(½I) = diag(1, ½)).
        let w = coin_flip_loop();
        let half = CMatrix::identity(2).scale(Complex::from(0.5));
        let c = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.5]]);
        let h = Program::unitary("h", &gates::hadamard());
        let body = QhlDerivation::Atomic(HoareTriple::new(&half, &h, &c));
        (
            QhlDerivation::Loop {
                a: states::basis_density(2, 0),
                inner: Box::new(body),
            },
            w,
        )
    }

    #[test]
    fn figure5_loop_rule_checks() {
        let (d, w) = loop_derivation();
        let t = d.conclude(&w).unwrap();
        assert!(t
            .pre()
            .approx_eq(&CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.5]]), 1e-9));
        assert!(t.holds_partial(1e-7));
    }

    #[test]
    fn theorem_7_8_loop_encoding() {
        let (d, w) = loop_derivation();
        let mut setting = EncoderSetting::new(2);
        let encoded = encode_qhl(&d, &w, &mut setting).unwrap();
        let conclusion = encoded.derivation.conclusion(encoded.conclusion);
        // (m1 h)* m0 · ā ≤ m0 ā + m1 b̄.
        assert_eq!(
            conclusion.to_string(),
            format!(
                "{} {} ≤ {}",
                encoded.program_expr, encoded.post_terms.1, encoded.pre_terms.1
            )
        );
        encoded.derivation.verify().unwrap();
    }

    #[test]
    fn theorem_7_8_sequencing_and_order() {
        // {|+⟩⟨+|} H {|0⟩⟨0|} ; {|0⟩⟨0|} X {|1⟩⟨1|} with a final weakening.
        let h = Program::unitary("h", &gates::hadamard());
        let x = Program::unitary("x", &gates::pauli_x());
        let prog = h.then(&x);
        let plus = h.run(&states::basis_density(2, 0));
        let t1 = HoareTriple::new(&plus, &h, &states::basis_density(2, 0));
        let t2 = HoareTriple::new(
            &states::basis_density(2, 0),
            &x,
            &states::basis_density(2, 1),
        );
        let seq = QhlDerivation::Seq(
            Box::new(QhlDerivation::Atomic(t1)),
            Box::new(QhlDerivation::Atomic(t2)),
        );
        let weakened = QhlDerivation::Order {
            a: plus.scale(Complex::from(0.5)),
            b: CMatrix::identity(2),
            inner: Box::new(seq),
        };
        let mut setting = EncoderSetting::new(2);
        let encoded = encode_qhl(&weakened, &prog, &mut setting).unwrap();
        encoded.derivation.verify().unwrap();
        let conclusion = encoded.derivation.conclusion(encoded.conclusion);
        assert!(conclusion.to_string().contains("≤"));
    }

    #[test]
    fn theorem_7_8_branching() {
        // case M: branch 0 runs X ({|1⟩⟨1|'s pre} X {|1⟩⟨1|}), branch 1
        // skips ({|1⟩⟨1|} skip {|1⟩⟨1|}).
        let meas = Measurement::computational_basis(2);
        let x = Program::unitary("x", &gates::pauli_x());
        let prog = Program::case(["m0", "m1"], &meas, vec![x.clone(), Program::skip(2)]);
        let one = states::basis_density(2, 1);
        let t_x = HoareTriple::new(&states::basis_density(2, 0), &x, &one);
        let d = QhlDerivation::If(vec![
            QhlDerivation::Atomic(t_x),
            QhlDerivation::AxSkip { a: one.clone() },
        ]);
        let t = d.conclude(&prog).unwrap();
        // Pre = M0†(|0⟩⟨0|)M0 + M1†(|1⟩⟨1|)M1 = I.
        assert!(t.pre().approx_eq(&CMatrix::identity(2), 1e-9));
        let mut setting = EncoderSetting::new(2);
        let encoded = encode_qhl(&d, &prog, &mut setting).unwrap();
        encoded.derivation.verify().unwrap();
    }

    #[test]
    fn invalid_derivations_are_rejected() {
        let w = coin_flip_loop();
        // Atomic triple that does not hold.
        let bad = QhlDerivation::Atomic(HoareTriple::new(
            &CMatrix::identity(2),
            &w,
            &states::basis_density(2, 1),
        ));
        assert!(bad.conclude(&w).is_err());
        // Rule/program mismatch.
        let skip_rule = QhlDerivation::AxSkip {
            a: CMatrix::identity(2),
        };
        assert!(skip_rule.conclude(&w).is_err());
    }
}
