//! Quantum predicates (effects) and the effect algebra (Definitions
//! 7.1–7.2, Lemma 7.3).

use qsim_linalg::{is_psd, lowner_le, CMatrix, Complex};
use qsim_quantum::Superoperator;

/// A quantum predicate: a PSD operator `A` with `A ⊑ I` (D'Hondt &
/// Panangaden, as used in Section 7.1 of the paper).
///
/// Effects form an *effect algebra* `(L, ⊕, 0, e)`: `⊕` is addition,
/// defined only when the sum stays below the identity; negation is
/// `Ā = I − A`. The laws of Definition 7.1 are exercised in the tests.
///
/// # Examples
///
/// ```
/// use nkat::Effect;
/// use qsim_quantum::states;
///
/// let half = Effect::new(&states::maximally_mixed(2)).unwrap();
/// let sum = half.try_plus(&half).expect("½I ⊕ ½I = I is defined");
/// assert!(sum.approx_eq(&Effect::top(2), 1e-10));
/// assert!(half.try_plus(&sum).is_none()); // exceeds e — undefined
/// ```
#[derive(Debug, Clone)]
pub struct Effect {
    matrix: CMatrix,
}

impl Effect {
    /// Validates and wraps a PSD operator with `‖A‖ ≤ 1`.
    ///
    /// Returns `None` if `a` is not square/Hermitian/PSD or exceeds the
    /// identity (within `1e-8`).
    pub fn new(a: &CMatrix) -> Option<Effect> {
        if !a.is_square() || !a.is_hermitian(1e-8) || !is_psd(a, 1e-8) {
            return None;
        }
        if !lowner_le(a, &CMatrix::identity(a.rows()), 1e-8) {
            return None;
        }
        Some(Effect { matrix: a.clone() })
    }

    /// The bottom effect `0`.
    pub fn bottom(dim: usize) -> Effect {
        Effect {
            matrix: CMatrix::zeros(dim, dim),
        }
    }

    /// The top effect `e = I_H`.
    pub fn top(dim: usize) -> Effect {
        Effect {
            matrix: CMatrix::identity(dim),
        }
    }

    /// The underlying operator.
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.matrix.rows()
    }

    /// The negation `Ā = I − A` (Definition 7.1, rule 4).
    pub fn negation(&self) -> Effect {
        Effect {
            matrix: &CMatrix::identity(self.dim()) - &self.matrix,
        }
    }

    /// The partial sum `A ⊕ B`, defined iff `A + B ⊑ I`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn try_plus(&self, other: &Effect) -> Option<Effect> {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let sum = &self.matrix + &other.matrix;
        Effect::new(&sum)
    }

    /// Löwner comparison `self ⊑ other`.
    pub fn le(&self, other: &Effect, tol: f64) -> bool {
        lowner_le(&self.matrix, &other.matrix, tol)
    }

    /// Approximate equality.
    pub fn approx_eq(&self, other: &Effect, tol: f64) -> bool {
        self.matrix.approx_eq(&other.matrix, tol)
    }

    /// The constant superoperator `C_A(ρ) = tr(ρ)·A` whose path lifting
    /// represents this predicate in `PPred(H)` (Definition 7.2).
    pub fn constant_superoperator(&self) -> Superoperator {
        Superoperator::constant(&self.matrix)
    }

    /// `tr(Aρ)` — the "probability that the predicate holds" on `ρ`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, rho: &CMatrix) -> f64 {
        (&self.matrix * rho).trace().re
    }

    /// The dual action of a measurement branch on a predicate:
    /// `A ↦ M† A M` (how partitions act on `L`, Definition 7.4(3a)).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn pre_measure(&self, m: &CMatrix) -> Effect {
        let out = &(&m.adjoint() * &self.matrix) * m;
        Effect { matrix: out }
    }

    /// Scales the effect by `c ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `[0, 1]`.
    pub fn scaled(&self, c: f64) -> Effect {
        assert!((0.0..=1.0).contains(&c), "effect scaling outside [0, 1]");
        Effect {
            matrix: self.matrix.scale(Complex::from(c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::{states, Measurement};

    #[test]
    fn validation() {
        assert!(Effect::new(&CMatrix::identity(2)).is_some());
        assert!(Effect::new(&states::maximally_mixed(3)).is_some());
        // 2·I exceeds the identity.
        assert!(Effect::new(&CMatrix::identity(2).scale(Complex::from(2.0))).is_none());
        // Non-PSD.
        assert!(Effect::new(&CMatrix::from_real(&[&[-0.5, 0.0], &[0.0, 0.5]])).is_none());
    }

    #[test]
    fn effect_algebra_laws() {
        // Definition 7.1 on concrete samples.
        let dim = 2;
        let a = Effect::new(&states::basis_density(2, 0).scale(Complex::from(0.4))).unwrap();
        let b = Effect::new(&states::maximally_mixed(2).scale(Complex::from(0.6))).unwrap();
        // (1) commutativity where defined.
        let ab = a.try_plus(&b).unwrap();
        let ba = b.try_plus(&a).unwrap();
        assert!(ab.approx_eq(&ba, 1e-10));
        // (3) a ⊕ e defined ⇒ a = 0.
        assert!(a.try_plus(&Effect::top(dim)).is_none());
        assert!(Effect::bottom(dim).try_plus(&Effect::top(dim)).is_some());
        // (4) unique negation: a ⊕ ā = e.
        let total = a.try_plus(&a.negation()).unwrap();
        assert!(total.approx_eq(&Effect::top(dim), 1e-10));
        // (5) 0 ⊕ a = a.
        let zero_sum = Effect::bottom(dim).try_plus(&a).unwrap();
        assert!(zero_sum.approx_eq(&a, 1e-10));
        // Involution (Lemma 7.7.3).
        assert!(a.negation().negation().approx_eq(&a, 1e-12));
    }

    #[test]
    fn negation_reverses_order() {
        // Lemma 7.7.4 in the model.
        let a = Effect::new(&states::maximally_mixed(2).scale(Complex::from(0.5))).unwrap();
        let b = Effect::new(&states::maximally_mixed(2)).unwrap();
        assert!(a.le(&b, 1e-10));
        assert!(b.negation().le(&a.negation(), 1e-10));
    }

    #[test]
    fn partition_transform_in_the_model() {
        // Lemma 7.7.5: Σ Mᵢ†(āᵢ)Mᵢ = negation of Σ Mᵢ†(aᵢ)Mᵢ.
        let meas = Measurement::computational_basis(2);
        let a0 = Effect::new(&states::basis_density(2, 0).scale(Complex::from(0.3))).unwrap();
        let a1 = Effect::new(&states::maximally_mixed(2).scale(Complex::from(0.8))).unwrap();
        let lhs = a0
            .negation()
            .pre_measure(meas.operator(0))
            .try_plus(&a1.negation().pre_measure(meas.operator(1)))
            .unwrap();
        let rhs = a0
            .pre_measure(meas.operator(0))
            .try_plus(&a1.pre_measure(meas.operator(1)))
            .unwrap()
            .negation();
        assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn constant_superoperator_represents_the_predicate() {
        let a = Effect::new(&states::maximally_mixed(2).scale(Complex::from(0.9))).unwrap();
        let c = a.constant_superoperator();
        let mut seed = 7;
        let rho = states::random_density(2, &mut seed);
        let out = c.apply(&rho);
        assert!(out.approx_eq(&a.matrix().scale(Complex::from(rho.trace().re)), 1e-9));
    }

    #[test]
    fn expectation_bounds() {
        let mut seed = 13;
        let a = Effect::new(&states::maximally_mixed(2).scale(Complex::from(0.7))).unwrap();
        for _ in 0..5 {
            let rho = states::random_density(2, &mut seed);
            let p = a.expectation(&rho);
            assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }
}
