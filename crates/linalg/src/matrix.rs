//! Dense complex matrices.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense complex matrix.
///
/// # Examples
///
/// ```
/// use qsim_linalg::{CMatrix, Complex};
/// let x = CMatrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]]); // Pauli X
/// let z = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, -1.0]]); // Pauli Z
/// let y = &x * &z; // = -iY
/// assert!(y.approx_eq(&(&z * &x).scale(Complex::from(-1.0)), 1e-12));
/// assert!((x.trace().abs()) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> CMatrix {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> CMatrix {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from complex rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn from_rows(rows: &[Vec<Complex>]) -> CMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from real rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn from_real(rows: &[&[f64]]) -> CMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| Complex::from(x)));
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The rank-one matrix `|v⟩⟨w|`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths... they may differ —
    /// the result is `v.len() × w.len()`.
    pub fn outer(v: &[Complex], w: &[Complex]) -> CMatrix {
        let mut m = CMatrix::zeros(v.len(), w.len());
        for (i, &vi) in v.iter().enumerate() {
            for (j, &wj) in w.iter().enumerate() {
                m[(i, j)] = vi * wj.conj();
            }
        }
        m
    }

    /// A computational-basis column vector `|k⟩` of dimension `dim`, as a
    /// `dim × 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim`.
    pub fn basis_ket(dim: usize, k: usize) -> CMatrix {
        assert!(k < dim, "basis index out of range");
        let mut m = CMatrix::zeros(dim, 1);
        m[(k, 0)] = Complex::ONE;
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(j, i)] = self[(i, j)].conj();
            }
        }
        m
    }

    /// Entrywise complex conjugate (no transpose).
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(j, i)] = self[(i, j)];
            }
        }
        m
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scalar multiple.
    pub fn scale(&self, z: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * z).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut m = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.abs() == 0.0 {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        m[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum entrywise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Whether `‖self − other‖∞ ≤ tol` entrywise.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (*a - *b).abs() <= tol)
    }

    /// Whether the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Whether `A† A = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && (&self.adjoint() * self).approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Applies the matrix to a column vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// `⟨v| M |v⟩` for a column vector `v`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn quadratic_form(&self, v: &[Complex]) -> Complex {
        let mv = self.mul_vec(v);
        v.iter().zip(mv).map(|(a, b)| a.conj() * b).sum()
    }

    /// Extracts column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> Vec<Complex> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.abs() == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a * rhs[(k, j)];
                    let entry = &mut out[(i, j)];
                    *entry += prod;
                }
            }
        }
        out
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale(Complex::from(-1.0))
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ZERO, -Complex::I],
            vec![Complex::I, Complex::ZERO],
        ])
    }

    #[test]
    fn products_and_traces() {
        let x = pauli_x();
        let y = pauli_y();
        let xy = &x * &y;
        // XY = iZ.
        assert!(xy[(0, 0)].approx_eq(Complex::I, 1e-12));
        assert!(xy[(1, 1)].approx_eq(-Complex::I, 1e-12));
        assert!(xy.trace().abs() < 1e-12);
        assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn adjoints() {
        let y = pauli_y();
        assert!(y.is_hermitian(1e-12));
        assert!(y.is_unitary(1e-12));
        let v = CMatrix::from_rows(&[vec![Complex::I], vec![Complex::ONE]]);
        let vd = v.adjoint();
        assert_eq!(vd.rows(), 1);
        assert!(vd[(0, 0)].approx_eq(-Complex::I, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        // (X ⊗ I)|00⟩ = |10⟩.
        let v = xi.mul_vec(&[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO]);
        assert!(v[2].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn outer_products_and_quadratic_forms() {
        let plus = [
            Complex::from(1.0 / 2.0_f64.sqrt()),
            Complex::from(1.0 / 2.0_f64.sqrt()),
        ];
        let proj = CMatrix::outer(&plus, &plus);
        assert!((proj.trace().re - 1.0).abs() < 1e-12);
        assert!((&proj * &proj).approx_eq(&proj, 1e-12));
        let zero_ket = [Complex::ONE, Complex::ZERO];
        let val = proj.quadratic_form(&zero_ket);
        assert!((val.re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn basis_kets() {
        let k = CMatrix::basis_ket(4, 2);
        assert_eq!(k.rows(), 4);
        assert!(k[(2, 0)].approx_eq(Complex::ONE, 1e-12));
    }
}
