//! Subspaces of `C^d` represented by orthonormal bases.
//!
//! The canonical form of an extended positive operator (`PO∞(H)`, Section
//! 3.2 of the paper) is a pair of a *divergence subspace* and a finite PSD
//! part; this module provides the subspace algebra that representation
//! needs: spans, joins, kernels and supports of PSD matrices, projectors,
//! and orthogonal complements.

use crate::eigen::hermitian_eigen;
use crate::{CMatrix, Complex};

/// A linear subspace of `C^d`, stored as the columns of a `d × k` matrix
/// with orthonormal columns (`k` = dimension of the subspace).
///
/// # Examples
///
/// ```
/// use qsim_linalg::{CMatrix, Complex, Subspace};
/// let v = vec![Complex::ONE, Complex::ZERO];
/// let s = Subspace::from_spanning(2, &[v]);
/// assert_eq!(s.dim(), 1);
/// assert!(s.contains(&[Complex::from(2.0), Complex::ZERO], 1e-9));
/// assert!(!s.contains(&[Complex::ZERO, Complex::ONE], 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct Subspace {
    ambient: usize,
    /// `ambient × dim` matrix with orthonormal columns.
    basis: CMatrix,
}

impl Subspace {
    /// The zero subspace of `C^ambient`.
    pub fn zero(ambient: usize) -> Subspace {
        Subspace {
            ambient,
            basis: CMatrix::zeros(ambient, 0),
        }
    }

    /// The full space `C^ambient`.
    pub fn full(ambient: usize) -> Subspace {
        Subspace {
            ambient,
            basis: CMatrix::identity(ambient),
        }
    }

    /// The span of the given vectors (Gram–Schmidt with tolerance `1e-9`).
    ///
    /// # Panics
    ///
    /// Panics if any vector has length ≠ `ambient`.
    pub fn from_spanning(ambient: usize, vectors: &[Vec<Complex>]) -> Subspace {
        let mut space = Subspace::zero(ambient);
        for v in vectors {
            space = space.extended_with(v, 1e-9);
        }
        space
    }

    /// Dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.basis.cols()
    }

    /// Dimension of the ambient space.
    pub fn ambient_dim(&self) -> usize {
        self.ambient
    }

    /// The orthonormal basis, as matrix columns.
    pub fn basis(&self) -> &CMatrix {
        &self.basis
    }

    /// The orthogonal projector onto the subspace.
    pub fn projector(&self) -> CMatrix {
        &self.basis * &self.basis.adjoint()
    }

    /// Residual of `v` after projecting onto the subspace.
    fn residual(&self, v: &[Complex]) -> Vec<Complex> {
        let mut r = v.to_vec();
        for j in 0..self.basis.cols() {
            let col = self.basis.column(j);
            let coeff: Complex = col.iter().zip(v).map(|(b, x)| b.conj() * *x).sum();
            for (ri, bi) in r.iter_mut().zip(&col) {
                *ri -= *bi * coeff;
            }
        }
        r
    }

    /// Whether `v` lies in the subspace within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ambient`.
    pub fn contains(&self, v: &[Complex], tol: f64) -> bool {
        assert_eq!(v.len(), self.ambient);
        let norm: f64 = self.residual(v).iter().map(|z| z.norm_sqr()).sum();
        norm.sqrt() <= tol * v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt().max(1.0)
    }

    /// The subspace extended with `v` (unchanged if `v` is already inside,
    /// up to `tol`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ambient`.
    pub fn extended_with(&self, v: &[Complex], tol: f64) -> Subspace {
        assert_eq!(v.len(), self.ambient);
        let r = self.residual(v);
        // Re-orthogonalize once for numerical stability.
        let r = {
            let tmp = Subspace {
                ambient: self.ambient,
                basis: self.basis.clone(),
            };
            tmp.residual(&r)
        };
        let norm: f64 = r.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let scale: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt().max(1.0);
        if norm <= tol * scale {
            return self.clone();
        }
        let mut basis = CMatrix::zeros(self.ambient, self.dim() + 1);
        for j in 0..self.dim() {
            for i in 0..self.ambient {
                basis[(i, j)] = self.basis[(i, j)];
            }
        }
        for i in 0..self.ambient {
            basis[(i, self.dim())] = r[i] * (1.0 / norm);
        }
        Subspace {
            ambient: self.ambient,
            basis,
        }
    }

    /// The join (span of the union) of two subspaces.
    ///
    /// # Panics
    ///
    /// Panics on mismatched ambient dimensions.
    pub fn join(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient, other.ambient);
        let mut out = self.clone();
        for j in 0..other.dim() {
            out = out.extended_with(&other.basis.column(j), 1e-9);
        }
        out
    }

    /// The orthogonal complement.
    pub fn complement(&self) -> Subspace {
        // Eigen-decompose I − P: eigenvectors with eigenvalue 1 span the
        // complement.
        let p = self.projector();
        let q = &CMatrix::identity(self.ambient) - &p;
        Subspace::support_of_psd(&q, 1e-6)
    }

    /// The support of a PSD matrix: the span of eigenvectors with
    /// eigenvalue > `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not Hermitian.
    pub fn support_of_psd(m: &CMatrix, tol: f64) -> Subspace {
        let eig = hermitian_eigen(m);
        let ambient = m.rows();
        let cols: Vec<Vec<Complex>> = (0..ambient)
            .filter(|&k| eig.values[k] > tol)
            .map(|k| eig.vector(k))
            .collect();
        // Eigenvectors of a Hermitian matrix are already orthonormal.
        let mut basis = CMatrix::zeros(ambient, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for i in 0..ambient {
                basis[(i, j)] = col[i];
            }
        }
        Subspace { ambient, basis }
    }

    /// The kernel of a PSD matrix: eigenvectors with eigenvalue ≤ `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not Hermitian.
    pub fn kernel_of_psd(m: &CMatrix, tol: f64) -> Subspace {
        let eig = hermitian_eigen(m);
        let ambient = m.rows();
        let cols: Vec<Vec<Complex>> = (0..ambient)
            .filter(|&k| eig.values[k] <= tol)
            .map(|k| eig.vector(k))
            .collect();
        let mut basis = CMatrix::zeros(ambient, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for i in 0..ambient {
                basis[(i, j)] = col[i];
            }
        }
        Subspace { ambient, basis }
    }

    /// Whether this subspace is contained in `other` within `tol`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched ambient dimensions.
    pub fn is_subspace_of(&self, other: &Subspace, tol: f64) -> bool {
        assert_eq!(self.ambient, other.ambient);
        (0..self.dim()).all(|j| other.contains(&self.basis.column(j), tol))
    }

    /// Whether the two subspaces are equal within `tol`.
    pub fn approx_eq(&self, other: &Subspace, tol: f64) -> bool {
        self.dim() == other.dim() && self.is_subspace_of(other, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ket(dim: usize, k: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; dim];
        v[k] = Complex::ONE;
        v
    }

    #[test]
    fn spanning_and_dimension() {
        let plus: Vec<Complex> = vec![Complex::from(1.0), Complex::from(1.0)];
        let minus: Vec<Complex> = vec![Complex::from(1.0), Complex::from(-1.0)];
        let s = Subspace::from_spanning(2, &[plus.clone(), plus.clone()]);
        assert_eq!(s.dim(), 1);
        let full = Subspace::from_spanning(2, &[plus, minus]);
        assert_eq!(full.dim(), 2);
    }

    #[test]
    fn projector_is_idempotent_and_hermitian() {
        let s = Subspace::from_spanning(3, &[ket(3, 0), ket(3, 2)]);
        let p = s.projector();
        assert!(p.is_hermitian(1e-10));
        assert!((&p * &p).approx_eq(&p, 1e-10));
        assert!((p.trace().re - 2.0).abs() < 1e-10);
    }

    #[test]
    fn join_and_complement() {
        let a = Subspace::from_spanning(3, &[ket(3, 0)]);
        let b = Subspace::from_spanning(3, &[ket(3, 1)]);
        let j = a.join(&b);
        assert_eq!(j.dim(), 2);
        let c = j.complement();
        assert_eq!(c.dim(), 1);
        assert!(c.contains(&ket(3, 2), 1e-8));
    }

    #[test]
    fn support_and_kernel_partition() {
        // diag(0.5, 0, 0.25): support = span{e0, e2}, kernel = span{e1}.
        let m = CMatrix::from_real(&[&[0.5, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 0.25]]);
        let supp = Subspace::support_of_psd(&m, 1e-9);
        let ker = Subspace::kernel_of_psd(&m, 1e-9);
        assert_eq!(supp.dim(), 2);
        assert_eq!(ker.dim(), 1);
        assert!(supp.contains(&ket(3, 0), 1e-8));
        assert!(supp.contains(&ket(3, 2), 1e-8));
        assert!(ker.contains(&ket(3, 1), 1e-8));
        assert!(supp.join(&ker).approx_eq(&Subspace::full(3), 1e-8));
    }

    #[test]
    fn containment_checks() {
        let s = Subspace::from_spanning(2, &[vec![Complex::ONE, Complex::I]]);
        let inside = vec![Complex::from(3.0), Complex::I * 3.0];
        let outside = vec![Complex::ONE, -Complex::I];
        assert!(s.contains(&inside, 1e-9));
        assert!(!s.contains(&outside, 1e-9));
        assert!(s.is_subspace_of(&Subspace::full(2), 1e-9));
        assert!(Subspace::zero(2).is_subspace_of(&s, 1e-9));
    }
}
