//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi iteration is slow compared to Householder+QL, but it is simple,
//! numerically robust, and more than fast enough for the ≤ 64-dimensional
//! Hilbert spaces used throughout this reproduction.

use crate::{CMatrix, Complex};

/// The result of a Hermitian eigendecomposition: `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMatrix,
}

impl HermitianEigen {
    /// The eigenvector for `values[k]`, as a column vector.
    pub fn vector(&self, k: usize) -> Vec<Complex> {
        self.vectors.column(k)
    }
}

/// Computes the eigendecomposition of a Hermitian matrix by cyclic Jacobi
/// rotations.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian within `1e-8`.
///
/// # Examples
///
/// ```
/// use qsim_linalg::{CMatrix, eigen::hermitian_eigen};
/// let h = CMatrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let eig = hermitian_eigen(&h);
/// assert!((eig.values[0] + 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn hermitian_eigen(a: &CMatrix) -> HermitianEigen {
    assert!(a.is_square(), "eigendecomposition of non-square matrix");
    assert!(
        a.is_hermitian(1e-8),
        "eigendecomposition requires a Hermitian matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = CMatrix::identity(n);

    let off_diag = |m: &CMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)].norm_sqr();
                }
            }
        }
        s.sqrt()
    };

    let scale = a.max_abs().max(1.0);
    for _sweep in 0..100 {
        if off_diag(&m) <= 1e-13 * scale * n as f64 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let b = apq.abs();
                if b <= 1e-15 * scale {
                    continue;
                }
                let phi = apq.arg();
                let alpha = m[(p, p)].re;
                let gamma = m[(q, q)].re;
                // Choose θ so that the (p,q) entry of J† M J vanishes.
                // Writing the (p,q) block as [[α, b e^{iφ}], [b e^{−iφ}, γ]],
                // the rotated off-diagonal entry is
                // e^{iφ}·(sin 2θ·(α−γ)/2 + b·cos 2θ), zero at
                // tan 2θ = 2b / (γ − α).
                let theta = 0.5 * (2.0 * b).atan2(gamma - alpha);
                let (s, c) = theta.sin_cos();
                let e_phi = Complex::cis(phi);
                // Columns p and q of M ← M·J and of V ← V·J, then rows of
                // M ← J†·M. J is the identity outside the (p,q) block:
                // J[p][p] = c, J[p][q] = s·e^{iφ}, J[q][p] = −s·e^{−iφ},
                // J[q][q] = c.
                let (jpp, jpq) = (Complex::from(c), e_phi * s);
                let (jqp, jqq) = (-e_phi.conj() * s, Complex::from(c));
                for i in 0..n {
                    let (mip, miq) = (m[(i, p)], m[(i, q)]);
                    m[(i, p)] = mip * jpp + miq * jqp;
                    m[(i, q)] = mip * jpq + miq * jqq;
                    let (vip, viq) = (v[(i, p)], v[(i, q)]);
                    v[(i, p)] = vip * jpp + viq * jqp;
                    v[(i, q)] = vip * jpq + viq * jqq;
                }
                for j in 0..n {
                    let (mpj, mqj) = (m[(p, j)], m[(q, j)]);
                    m[(p, j)] = jpp.conj() * mpj + jqp.conj() * mqj;
                    m[(q, j)] = jpq.conj() * mpj + jqq.conj() * mqj;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN eigenvalue"));
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = CMatrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_col)] = v[(i, old_col)];
        }
    }
    HermitianEigen { values, vectors }
}

/// The smallest eigenvalue of a Hermitian matrix.
///
/// # Panics
///
/// Panics under the same conditions as [`hermitian_eigen`].
pub fn min_eigenvalue(a: &CMatrix) -> f64 {
    hermitian_eigen(a).values[0]
}

/// The largest eigenvalue of a Hermitian matrix.
///
/// # Panics
///
/// Panics under the same conditions as [`hermitian_eigen`].
pub fn max_eigenvalue(a: &CMatrix) -> f64 {
    *hermitian_eigen(a)
        .values
        .last()
        .expect("eigendecomposition of empty matrix")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(eig: &HermitianEigen) -> CMatrix {
        let n = eig.values.len();
        let mut d = CMatrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = Complex::from(eig.values[i]);
        }
        &(&eig.vectors * &d) * &eig.vectors.adjoint()
    }

    #[test]
    fn pauli_x_eigensystem() {
        let x = CMatrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let eig = hermitian_eigen(&x);
        assert!((eig.values[0] + 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        assert!(reconstruct(&eig).approx_eq(&x, 1e-10));
        assert!(eig.vectors.is_unitary(1e-10));
    }

    #[test]
    fn complex_hermitian_matrix() {
        // H = [[2, i], [-i, 3]]: eigenvalues (5 ± √5)/2.
        let h = CMatrix::from_rows(&[
            vec![Complex::from(2.0), Complex::I],
            vec![-Complex::I, Complex::from(3.0)],
        ]);
        let eig = hermitian_eigen(&h);
        let expected_low = (5.0 - 5.0_f64.sqrt()) / 2.0;
        let expected_high = (5.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((eig.values[0] - expected_low).abs() < 1e-10);
        assert!((eig.values[1] - expected_high).abs() < 1e-10);
        assert!(reconstruct(&eig).approx_eq(&h, 1e-10));
    }

    #[test]
    fn random_hermitian_reconstruction() {
        // Deterministic pseudo-random Hermitian matrices of several sizes.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for n in [2usize, 3, 5, 8, 12] {
            let mut m = CMatrix::zeros(n, n);
            for i in 0..n {
                m[(i, i)] = Complex::from(next());
                for j in (i + 1)..n {
                    let z = Complex::new(next(), next());
                    m[(i, j)] = z;
                    m[(j, i)] = z.conj();
                }
            }
            let eig = hermitian_eigen(&m);
            assert!(
                reconstruct(&eig).approx_eq(&m, 1e-8),
                "reconstruction failed at n = {n}"
            );
            assert!(eig.vectors.is_unitary(1e-8), "non-unitary V at n = {n}");
            // Ascending order.
            for w in eig.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn psd_matrix_has_nonnegative_spectrum() {
        // A†A is always PSD.
        let a = CMatrix::from_rows(&[
            vec![Complex::new(1.0, 1.0), Complex::from(2.0)],
            vec![Complex::from(0.5), Complex::new(0.0, -1.0)],
        ]);
        let psd = &a.adjoint() * &a;
        assert!(min_eigenvalue(&psd) > -1e-10);
        assert!(max_eigenvalue(&psd) > 0.0);
    }
}
