//! Dense complex linear algebra for the quantum substrate.
//!
//! The paper's semantic objects are finite-dimensional: density operators,
//! superoperators, effects, and the canonical forms of `PO∞(H)` all live in
//! `C^{d×d}` for small `d`. This crate supplies exactly the operations they
//! need, from scratch (no external linear-algebra crate exists in the
//! offline dependency set):
//!
//! * [`Complex`] — complex floating-point scalars;
//! * [`CMatrix`] — dense matrices: products, adjoints, traces, tensor
//!   (Kronecker) products;
//! * [`eigen::hermitian_eigen`] — a cyclic Jacobi eigendecomposition for
//!   Hermitian matrices, the workhorse behind positive-semidefiniteness
//!   and Löwner-order checks ([`lowner`]) and behind the
//!   divergence-subspace computations of the quantum path model;
//! * [`Subspace`] — orthonormal-basis subspaces with joins, kernels and
//!   supports of PSD operators.

pub mod complex;
pub mod eigen;
pub mod lowner;
pub mod matrix;
pub mod subspace;

pub use complex::Complex;
pub use lowner::{is_psd, lowner_le};
pub use matrix::CMatrix;
pub use subspace::Subspace;

/// Default numerical tolerance used across the quantum substrate.
pub const TOL: f64 = 1e-9;
