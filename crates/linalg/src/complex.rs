//! Complex floating-point scalars.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use qsim_linalg::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::from(-1.0));
/// assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive unit.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative unit.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics when inverting (numerically) zero.
    pub fn recip(self) -> Complex {
        let n = self.norm_sqr();
        assert!(n > 0.0, "reciprocal of zero complex number");
        Complex::new(self.re / n, -self.im / n)
    }

    /// Square root of `|z|²`-scaled... no: principal square root of `z`.
    pub fn sqrt(self) -> Complex {
        let r = self.abs();
        let theta = self.arg();
        Complex::cis(theta / 2.0) * r.sqrt()
    }

    /// Whether both components are within `tol` of `other`'s.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division *is* multiplication by the reciprocal here; the lint
    // assumes mismatched operators are typos.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!((a / a).approx_eq(Complex::ONE, 1e-12));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cis_and_sqrt() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::I, 1e-12));
        let s = Complex::new(-1.0, 0.0).sqrt();
        assert!(s.approx_eq(Complex::I, 1e-12));
        let w = Complex::new(0.0, 2.0);
        assert!((w.sqrt() * w.sqrt()).approx_eq(w, 1e-12));
    }
}
