//! The Löwner order on Hermitian operators.
//!
//! `A ⊑ B` iff `B − A` is positive semidefinite (Section 3.1 of the
//! paper). These checks underpin quantum predicates (effects), the partial
//! order of `PO∞(H)`, and Hoare-triple validity.

use crate::eigen::min_eigenvalue;
use crate::CMatrix;

/// Whether a Hermitian matrix is positive semidefinite within `tol`
/// (smallest eigenvalue ≥ `−tol`).
///
/// # Panics
///
/// Panics if `m` is not square or not Hermitian.
///
/// # Examples
///
/// ```
/// use qsim_linalg::{is_psd, CMatrix};
/// let proj = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.0]]);
/// assert!(is_psd(&proj, 1e-9));
/// let neg = CMatrix::from_real(&[&[-1.0, 0.0], &[0.0, 1.0]]);
/// assert!(!is_psd(&neg, 1e-9));
/// ```
pub fn is_psd(m: &CMatrix, tol: f64) -> bool {
    min_eigenvalue(m) >= -tol
}

/// Whether `a ⊑ b` in the Löwner order, within `tol`.
///
/// # Panics
///
/// Panics if the matrices are not square/Hermitian or differ in dimension.
pub fn lowner_le(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
    is_psd(&(b - a), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    #[test]
    fn identity_dominates_projectors() {
        let id = CMatrix::identity(2);
        let proj = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.0]]);
        assert!(lowner_le(&proj, &id, 1e-9));
        assert!(!lowner_le(&id, &proj, 1e-9));
    }

    #[test]
    fn lowner_is_a_partial_order_on_samples() {
        let a = CMatrix::from_real(&[&[0.3, 0.0], &[0.0, 0.7]]);
        let b = CMatrix::from_real(&[&[0.5, 0.0], &[0.0, 0.9]]);
        let c = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(lowner_le(&a, &b, 1e-9));
        assert!(lowner_le(&b, &c, 1e-9));
        assert!(lowner_le(&a, &c, 1e-9)); // transitivity instance
        assert!(lowner_le(&a, &a, 1e-9)); // reflexivity
    }

    #[test]
    fn incomparable_pair() {
        // diag(1, 0) and diag(0, 1) are Löwner-incomparable.
        let p = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let q = CMatrix::from_real(&[&[0.0, 0.0], &[0.0, 1.0]]);
        assert!(!lowner_le(&p, &q, 1e-9));
        assert!(!lowner_le(&q, &p, 1e-9));
    }

    #[test]
    fn off_diagonal_psd() {
        // [[1, i/2], [-i/2, 1]] has eigenvalues 1/2 and 3/2 — PSD.
        let m = CMatrix::from_rows(&[
            vec![Complex::from(1.0), Complex::I * 0.5],
            vec![-Complex::I * 0.5, Complex::from(1.0)],
        ]);
        assert!(is_psd(&m, 1e-9));
    }
}
