//! Unitary atoms as a group: reversibility as hypotheses (a "Future
//! Directions" feature of the paper).
//!
//! The paper's closing discussion suggests embedding unitary
//! superoperators into NKA *as a group* so that their reversibility
//! (`U U⁻¹ = U⁻¹ U = I`) is available algebraically — §5.2's loop
//! boundary rule and the Appendix-B QSP optimization both consume such
//! hypotheses one pair at a time. [`UnitaryGroup`] systematizes this:
//!
//! * [`UnitaryGroup::declare`] registers a `(u, u⁻¹)` atom pair and
//!   contributes the two cancellation hypotheses;
//! * [`UnitaryGroup::inverse_word`] computes the group inverse of a
//!   circuit word (reverse the word, invert each letter) — the algebraic
//!   form of *uncomputation*;
//! * [`UnitaryGroup::cancellation_proof`] generates, for any circuit word
//!   `w`, a checked NKA proof of `w·w⁻¹ = 1` from the pairwise
//!   hypotheses — the certificate a compiler needs to erase an
//!   uncomputation pair.
//!
//! The group structure stays *hypothetical* (Horn-clause premises, in the
//! sense of Corollary 4.3): soundness for concrete programs is discharged
//! by checking the concrete superoperators are unitary conjugations, as
//! the §5.2/Appendix-B validators do.
//!
//! # Examples
//!
//! ```
//! use nka_core::group::UnitaryGroup;
//!
//! let mut g = UnitaryGroup::new();
//! let (h, h_inv) = g.declare("h", "h_inv");
//! let (cx, cx_inv) = g.declare("cx", "cx_inv");
//! // Uncompute h;cx: the inverse word is cx⁻¹;h⁻¹.
//! assert_eq!(g.inverse_word(&[h, cx]), vec![cx_inv, h_inv]);
//! // And cancellation is provable from the group hypotheses.
//! let proof = g.cancellation_proof(&[h, cx])?;
//! assert_eq!(
//!     proof.check(&g.hypotheses())?.to_string(),
//!     "h cx (cx_inv h_inv) = 1",
//! );
//! # Ok::<(), nka_core::ProofError>(())
//! ```

use crate::builder::EqChain;
use crate::judgment::Judgment;
use crate::proof::{Proof, ProofError};
use nka_syntax::{Expr, Symbol};

/// A declared set of unitary atom pairs `(u, u⁻¹)` with their
/// cancellation hypotheses.
#[derive(Debug, Clone, Default)]
pub struct UnitaryGroup {
    /// `(u, u⁻¹)` pairs in declaration order.
    pairs: Vec<(Symbol, Symbol)>,
}

impl UnitaryGroup {
    /// An empty group context.
    pub fn new() -> UnitaryGroup {
        UnitaryGroup::default()
    }

    /// Declares a unitary atom and its inverse; returns the symbols.
    ///
    /// # Panics
    ///
    /// Panics if either name is already declared (as a unitary or an
    /// inverse) — reusing a name would make [`Self::inverse`] ambiguous.
    pub fn declare(&mut self, name: &str, inverse: &str) -> (Symbol, Symbol) {
        let u = Symbol::intern(name);
        let ui = Symbol::intern(inverse);
        for &(a, b) in &self.pairs {
            assert!(
                a != u && b != u && a != ui && b != ui,
                "unitary name reused: {name}/{inverse}"
            );
        }
        self.pairs.push((u, ui));
        (u, ui)
    }

    /// A self-inverse unitary (e.g. H, X, CNOT): `u⁻¹ = u`.
    pub fn declare_involution(&mut self, name: &str) -> Symbol {
        let u = Symbol::intern(name);
        for &(a, b) in &self.pairs {
            assert!(a != u && b != u, "unitary name reused: {name}");
        }
        self.pairs.push((u, u));
        u
    }

    /// The group hypotheses: `u u⁻¹ = 1` and `u⁻¹ u = 1` per pair
    /// (one hypothesis per involution).
    pub fn hypotheses(&self) -> Vec<Judgment> {
        let mut out = Vec::new();
        for &(u, ui) in &self.pairs {
            out.push(Judgment::Eq(
                Expr::atom(u).mul(&Expr::atom(ui)),
                Expr::one(),
            ));
            if u != ui {
                out.push(Judgment::Eq(
                    Expr::atom(ui).mul(&Expr::atom(u)),
                    Expr::one(),
                ));
            }
        }
        out
    }

    /// The inverse of a declared letter, if any.
    pub fn inverse(&self, s: Symbol) -> Option<Symbol> {
        for &(u, ui) in &self.pairs {
            if s == u {
                return Some(ui);
            }
            if s == ui {
                return Some(u);
            }
        }
        None
    }

    /// The hypothesis index of `a b = 1` in [`Self::hypotheses`], for a
    /// declared adjacent-inverse pair `(a, b)`.
    fn cancellation_hyp_index(&self, a: Symbol, b: Symbol) -> Option<usize> {
        let mut idx = 0;
        for &(u, ui) in &self.pairs {
            if u == ui {
                if a == u && b == u {
                    return Some(idx);
                }
                idx += 1;
            } else {
                if a == u && b == ui {
                    return Some(idx);
                }
                if a == ui && b == u {
                    return Some(idx + 1);
                }
                idx += 2;
            }
        }
        None
    }

    /// The group inverse of a circuit word: reverse it and invert every
    /// letter. This is the *uncomputation* of the circuit.
    ///
    /// # Panics
    ///
    /// Panics if a letter was not declared.
    pub fn inverse_word(&self, word: &[Symbol]) -> Vec<Symbol> {
        word.iter()
            .rev()
            .map(|&s| self.inverse(s).expect("letter declared in the group"))
            .collect()
    }

    /// The right-associated product expression of a word (`1` if empty).
    pub fn word_expr(word: &[Symbol]) -> Expr {
        Expr::product(word.iter().map(|&s| Expr::atom(s)))
    }

    /// Generates a checked proof of `w · w⁻¹ = 1` from the group
    /// hypotheses, cancelling innermost pairs one at a time:
    ///
    /// ```text
    /// u1 … un un⁻¹ … u1⁻¹ = u1 … (un un⁻¹) … u1⁻¹ = u1 … u1⁻¹ = … = 1
    /// ```
    ///
    /// The proof size is linear in the word length.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError`] if a letter is undeclared (surfaced as a
    /// failed hypothesis step).
    pub fn cancellation_proof(&self, word: &[Symbol]) -> Result<Proof, ProofError> {
        for &s in word {
            if self.inverse(s).is_none() {
                return Err(ProofError::custom(
                    "group",
                    format!("undeclared letter {s:?}"),
                ));
            }
        }
        let hyps = self.hypotheses();
        let start = Self::word_expr(word).mul(&Self::word_expr(&self.inverse_word(word)));
        let mut chain = EqChain::with_hyps(&start, &hyps);
        // Work outside-in: at step k the expression is provably equal to
        // w[..n−k] · inverse(w[..n−k]); reassociate to expose the
        // innermost adjacent pair, cancel it by hypothesis, and drop the
        // unit — all semiring + one Hyp rewrite per step.
        for k in (1..=word.len()).rev() {
            let prefix = &word[..k];
            let last = prefix[k - 1];
            let last_inv = self.inverse(last).ok_or_else(|| {
                ProofError::custom("group", format!("undeclared letter {last:?}"))
            })?;
            // Target shape: (pre) ((last last_inv) (post)) where
            // pre = w[..k−1], post = inverse(w[..k−1]).
            let pre = Self::word_expr(&prefix[..k - 1]);
            let post = Self::word_expr(&self.inverse_word(&prefix[..k - 1]));
            let pair = Expr::atom(last).mul(&Expr::atom(last_inv));
            let exposed = pre.mul(&pair.mul(&post));
            chain = chain.semiring(&exposed)?;
            // `semiring` leaves the expression exactly as written:
            // Mul(pre, Mul(pair, post)), so the pair sits at [1, 0]. (A
            // textual search would be wrong here — with repeated letters
            // the same pair shape can occur inside `pre` as well.)
            let hyp_idx = self
                .cancellation_hyp_index(last, last_inv)
                .expect("declared pair has a hypothesis");
            chain = chain.hyp_at(&[1, 0], hyp_idx)?;
            // Absorb the introduced 1.
            let collapsed = Self::word_expr(&prefix[..k - 1])
                .mul(&Self::word_expr(&self.inverse_word(&prefix[..k - 1])));
            chain = chain.semiring(&collapsed)?;
        }
        chain = chain.semiring(&Expr::one())?;
        Ok(chain.into_proof())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypotheses_shapes() {
        let mut g = UnitaryGroup::new();
        g.declare("u", "u_inv");
        g.declare_involution("h");
        let hyps = g.hypotheses();
        assert_eq!(hyps.len(), 3);
        assert_eq!(hyps[0].to_string(), "u u_inv = 1");
        assert_eq!(hyps[1].to_string(), "u_inv u = 1");
        assert_eq!(hyps[2].to_string(), "h h = 1");
    }

    #[test]
    fn inverse_lookup_both_directions() {
        let mut g = UnitaryGroup::new();
        let (u, ui) = g.declare("u", "u_inv");
        assert_eq!(g.inverse(u), Some(ui));
        assert_eq!(g.inverse(ui), Some(u));
        assert_eq!(g.inverse(Symbol::intern("stranger")), None);
    }

    #[test]
    fn inverse_word_reverses_and_inverts() {
        let mut g = UnitaryGroup::new();
        let (a, ai) = g.declare("ga", "ga_inv");
        let (b, bi) = g.declare("gb", "gb_inv");
        let h = g.declare_involution("gh");
        assert_eq!(g.inverse_word(&[a, b, h]), vec![h, bi, ai]);
        assert_eq!(g.inverse_word(&[]), Vec::<Symbol>::new());
    }

    #[test]
    fn cancellation_proofs_check_for_words_up_to_five() {
        let mut g = UnitaryGroup::new();
        let (a, _) = g.declare("ga", "ga_inv");
        let (b, _) = g.declare("gb", "gb_inv");
        let h = g.declare_involution("gh");
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![h],
            vec![a, b],
            vec![a, h, b],
            vec![b, b, a, h],
            vec![a, b, h, b, a],
        ];
        for w in words {
            let proof = g.cancellation_proof(&w).unwrap();
            let j = proof.check(&g.hypotheses()).unwrap();
            let lhs =
                UnitaryGroup::word_expr(&w).mul(&UnitaryGroup::word_expr(&g.inverse_word(&w)));
            assert_eq!(j, Judgment::Eq(lhs, Expr::one()), "word {w:?}");
        }
    }

    #[test]
    fn proof_size_is_linear_in_word_length() {
        let mut g = UnitaryGroup::new();
        let (a, _) = g.declare("ga", "ga_inv");
        let (b, _) = g.declare("gb", "gb_inv");
        let sizes: Vec<usize> = (1..=6)
            .map(|n| {
                let word: Vec<Symbol> = (0..n).map(|i| if i % 2 == 0 { a } else { b }).collect();
                g.cancellation_proof(&word).unwrap().size()
            })
            .collect();
        // Each extra letter adds a bounded number of rule applications
        // (measured: exactly 10 — reassociate, cancel, absorb).
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] - w[0] <= 12, "growth not linear: {sizes:?}");
        }
    }

    #[test]
    fn undeclared_letter_is_an_error() {
        let g = UnitaryGroup::new();
        let s = Symbol::intern("mystery");
        assert!(g.cancellation_proof(&[s]).is_err());
    }

    #[test]
    #[should_panic(expected = "unitary name reused")]
    fn duplicate_declaration_panics() {
        let mut g = UnitaryGroup::new();
        g.declare("u", "u_inv");
        g.declare("u", "other");
    }
}
