//! Serve v2 — the concurrent socket front-end over the decision
//! procedures, plus the observability layer behind `--stats`.
//!
//! Three submodules:
//!
//! * [`histogram`] — fixed log-bucketed, lock-free latency histograms
//!   (the p50/p99/p999 primitive; no dependencies).
//! * [`stats`] — per-op histogram registries, serve-layer counters, and
//!   [`stats::StatsBlock`]: the one struct both the human-readable
//!   `--stats` text and the machine-readable `--stats --json` object
//!   are rendered from (CLI one-shot, batch, stdin serve, and socket
//!   serve all share it).
//! * [`server`] — the `nka serve --listen` socket server: TCP/Unix
//!   listeners, a worker pool of warm [`Session`](crate::api::Session)s
//!   pinned per connection, bounded per-connection windows for
//!   backpressure, a server-wide overload cap with structured-error
//!   shedding, and graceful drain on shutdown or arena-cap
//!   (`--max-arena-nodes` → exit 3) with every already-read request
//!   answered first.
//!
//! The wire protocol over a socket is byte-for-byte the JSONL protocol
//! of `nka batch` / stdin `serve` ([`crate::api::wire`]) — a client
//! cannot tell which transport answered it, and the loadgen harness
//! (`nka-loadgen`) holds the server to that by diffing every socket
//! verdict against a sequential in-process session.

pub mod histogram;
pub mod server;
pub mod stats;

pub use histogram::{fmt_ns, HistogramSnapshot, LatencyHistogram};
pub use server::{ListenAddr, ServeConfig, Server, ServerHandle};
pub use stats::{OpHistograms, OpSnapshots, ServeCounters, StatsBlock};
