//! The serve-v2 observability layer: per-op latency histograms, stream
//! counters, and the human/JSON renderings behind `nka --stats` and
//! `--stats --json`.
//!
//! Two layers:
//!
//! * [`OpHistograms`] — one [`LatencyHistogram`] per wire op
//!   (`nka_eq`, …, `hoare`). Shared by every `--stats` surface: the
//!   one-shot CLI, `batch` (sequential and `--jobs N`), the stdin
//!   `serve` loop, and every worker of the socket server.
//! * [`StatsBlock`] — the full `--stats` report: engine counters
//!   ([`DeciderStats`], including the tiered-equivalence
//!   `starfree_hits`/`prefix_hits`/`fastpath_fallbacks`), term-size
//!   accounting, process-arena figures, throughput, the per-op
//!   histograms, and (for the socket server) the [`ServeCounters`]
//!   section. `render_human` produces the free-text lines `--stats` has
//!   always printed (now plus latency lines); `to_json` produces the
//!   single machine-readable object `--stats --json` emits instead.

use super::histogram::{fmt_ns, HistogramSnapshot, LatencyHistogram};
use crate::api::json::Json;
use crate::api::wire::WIRE_VERSION;
use crate::api::{AnalysisStats, OptimizeStats, QueryKind, SnapshotStats};
use nka_qprog::analysis::{PASS_NAMES, RULE_METADATA};
use nka_wfa::DeciderStats;
use std::time::Duration;

/// Every wire op, in the order stats are reported.
pub const OPS: [QueryKind; 8] = [
    QueryKind::NkaEq,
    QueryKind::KaEq,
    QueryKind::Series,
    QueryKind::Prove,
    QueryKind::ProgEq,
    QueryKind::Hoare,
    QueryKind::Analyze,
    QueryKind::Optimize,
];

fn op_index(kind: QueryKind) -> usize {
    match kind {
        QueryKind::NkaEq => 0,
        QueryKind::KaEq => 1,
        QueryKind::Series => 2,
        QueryKind::Prove => 3,
        QueryKind::ProgEq => 4,
        QueryKind::Hoare => 5,
        QueryKind::Analyze => 6,
        QueryKind::Optimize => 7,
    }
}

/// One latency histogram per wire op. Recording is lock-free; see
/// [`LatencyHistogram`].
#[derive(Debug, Default)]
pub struct OpHistograms {
    per_op: [LatencyHistogram; OPS.len()],
}

impl OpHistograms {
    /// An empty set of per-op histograms.
    #[must_use]
    pub fn new() -> OpHistograms {
        OpHistograms::default()
    }

    /// Records one answered query of kind `kind` that took `elapsed`.
    pub fn record(&self, kind: QueryKind, elapsed: Duration) {
        self.per_op[op_index(kind)].record(elapsed);
    }

    /// Total queries recorded across all ops.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_op.iter().map(LatencyHistogram::count).sum()
    }

    /// Snapshots every op's histogram, in [`OPS`] order.
    #[must_use]
    pub fn snapshot(&self) -> OpSnapshots {
        OpSnapshots {
            per_op: OPS.map(|kind| self.per_op[op_index(kind)].snapshot()),
        }
    }
}

/// A point-in-time copy of an [`OpHistograms`].
#[derive(Debug, Clone)]
pub struct OpSnapshots {
    per_op: [HistogramSnapshot; OPS.len()],
}

impl OpSnapshots {
    /// An all-empty snapshot set.
    #[must_use]
    pub fn empty() -> OpSnapshots {
        OpSnapshots {
            per_op: std::array::from_fn(|_| HistogramSnapshot::empty()),
        }
    }

    /// The snapshot for one op.
    #[must_use]
    pub fn op(&self, kind: QueryKind) -> &HistogramSnapshot {
        &self.per_op[op_index(kind)]
    }

    /// Total queries across all ops.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_op.iter().map(HistogramSnapshot::count).sum()
    }

    /// Merges another snapshot set in (per-op), for aggregating workers.
    pub fn merge(&mut self, other: &OpSnapshots) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.merge(b);
        }
    }
}

/// Socket-server counters, present in the stats report only when the
/// query stream came over `serve --listen`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Connections accepted over the server's life.
    pub connections_opened: u64,
    /// Connections fully closed (reader gone, queue drained).
    pub connections_closed: u64,
    /// Requests answered with a structured `overloaded` error because
    /// the server-wide pending hard cap was exceeded.
    pub rejected_overload: u64,
    /// Requests answered with a structured error because one line
    /// exceeded the per-line byte hard cap.
    pub rejected_line_bytes: u64,
    /// Malformed request lines answered with structured errors.
    pub wire_errors: u64,
    /// Connections dropped mid-response (client went away; EPIPE et
    /// al.). Each costs only its own connection, never the process.
    pub dropped_mid_response: u64,
    /// Requests currently queued or running (point-in-time).
    pub pending_now: u64,
    /// Engine recycles per worker (`--max-queries-per-worker`), indexed
    /// by worker id.
    pub worker_recycles: Vec<u64>,
    /// Queries answered per worker, indexed by worker id.
    pub worker_queries: Vec<u64>,
}

/// Everything one `--stats` report contains. Build it, then call
/// [`StatsBlock::render_human`] or [`StatsBlock::to_json`].
#[derive(Debug, Clone)]
pub struct StatsBlock {
    /// Cumulative engine counters for the stream.
    pub engine: DeciderStats,
    /// Total tree nodes across queried expressions.
    pub expr_nodes: u64,
    /// Distinct interned subterms across queried expressions.
    pub expr_subterms: u64,
    /// Engine recycles across the stream's sessions.
    pub engine_recycles: u64,
    /// Queries answered (histogram total; includes every op).
    pub queries: u64,
    /// Wall-clock covered by the report.
    pub elapsed: Duration,
    /// Per-op latency snapshots.
    pub ops: OpSnapshots,
    /// Static-analyzer counters (findings per pass, Tier B decides,
    /// certificate cache hits); all-zero until the first `analyze`.
    pub analysis: AnalysisStats,
    /// Optimizer counters (steps per rule, refuted candidates,
    /// fixpoints vs budget bails, certification cache traffic);
    /// all-zero until the first `optimize`.
    pub optimize: OptimizeStats,
    /// Warm-start counters (restored entries, snapshot-tier hits,
    /// dumps, load warnings); all-zero when no snapshot was involved.
    pub snapshot: SnapshotStats,
    /// Socket-server section, if the stream was served over sockets.
    pub serve: Option<ServeCounters>,
}

impl StatsBlock {
    /// Queries per second over the report's wall-clock window.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }

    /// The free-text multi-line rendering (the default `--stats`
    /// surface, printed to stderr). Keeps the historical line shapes —
    /// `engine stats:`, `fast-path stats:`, `expr stats:`,
    /// `arena stats:` — and adds `latency stats:` + per-op lines and,
    /// when serving sockets, a `serve stats:` line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let s = &self.engine;
        let mut out = format!(
            "engine stats: {} NKA + {} KA queries, {} verdict hits, {} compiles ({} cached), {} determinizations ({} cached)\n",
            s.nka_queries,
            s.ka_queries,
            s.answer_hits,
            s.compile_misses,
            s.compile_hits,
            s.dfa_misses,
            s.dfa_hits,
        );
        out.push_str(&format!(
            "fast-path stats: {} star-free hits + {} prefix hits, {} fallbacks to generic\n",
            s.starfree_hits, s.prefix_hits, s.fastpath_fallbacks,
        ));
        out.push_str(&format!(
            "expr stats: {} tree nodes over {} distinct subterms queried; {} expressions interned process-wide\n",
            self.expr_nodes,
            self.expr_subterms,
            nka_syntax::interned_expr_count(),
        ));
        out.push_str(&format!(
            "arena stats: {} resident nodes ({} persistent + {} live scratch), {} scratch retired over {} scopes, {} engine recycles\n",
            nka_syntax::arena_resident_nodes(),
            nka_syntax::interned_expr_count(),
            nka_syntax::scratch_live_nodes(),
            nka_syntax::scratch_retired_total(),
            nka_syntax::scratch_epoch(),
            self.engine_recycles,
        ));
        out.push_str(&format!(
            "latency stats: {} queries in {:.2}s ({:.1} q/s)\n",
            self.queries,
            self.elapsed.as_secs_f64(),
            self.qps(),
        ));
        for kind in OPS {
            let h = self.ops.op(kind);
            if h.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {}: n={} p50={} p99={} p999={} mean={}\n",
                kind.op(),
                h.count(),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.quantile(0.999)),
                fmt_ns(h.mean_ns()),
            ));
        }
        if !self.analysis.is_zero() {
            let per_pass: Vec<String> = PASS_NAMES
                .iter()
                .zip(self.analysis.findings_by_pass)
                .filter(|(_, n)| *n > 0)
                .map(|(pass, n)| format!("{pass}:{n}"))
                .collect();
            out.push_str(&format!(
                "analysis stats: {} findings [{}], {} Tier B decides, {} certificate cache hits\n",
                self.analysis.findings_total(),
                per_pass.join(" "),
                self.analysis.tier_b_decides,
                self.analysis.cert_cache_hits,
            ));
        }
        if !self.optimize.is_zero() {
            let per_rule: Vec<String> = RULE_METADATA
                .iter()
                .zip(self.optimize.steps_by_rule)
                .filter(|(_, n)| *n > 0)
                .map(|(meta, n)| format!("{}:{n}", meta.name))
                .collect();
            out.push_str(&format!(
                "optimize stats: {} queries, {} steps [{}], {} refuted, {} fixpoints, {} budget bails, {} cycle breaks, {} engine decides, {} certificate cache hits\n",
                self.optimize.queries,
                self.optimize.steps_applied,
                per_rule.join(" "),
                self.optimize.candidates_refuted,
                self.optimize.fixpoints,
                self.optimize.budget_bails,
                self.optimize.cycle_breaks,
                self.optimize.engine_decides,
                self.optimize.cert_cache_hits,
            ));
        }
        if !self.snapshot.is_zero() {
            let sn = &self.snapshot;
            let age = sn.loaded_created_unix_secs.map_or_else(
                || "-".to_owned(),
                |created| {
                    format!(
                        "{}s",
                        crate::snapshot::now_unix_secs().saturating_sub(created)
                    )
                },
            );
            out.push_str(&format!(
                "snapshot stats: {} entries restored (age {}), {} verdict hits + {} cert hits from snapshot, {} dumps ({} failed), {} load warnings\n",
                sn.restored_entries,
                age,
                sn.snapshot_hits,
                sn.cert_snapshot_hits,
                sn.dumps,
                sn.dump_failures,
                sn.load_warnings,
            ));
        }
        if let Some(serve) = &self.serve {
            out.push_str(&format!(
                "serve stats: {} connections ({} closed), {} pending now, {} overload-rejected, {} oversize-rejected, {} wire errors, {} dropped mid-response\n",
                serve.connections_opened,
                serve.connections_closed,
                serve.pending_now,
                serve.rejected_overload,
                serve.rejected_line_bytes,
                serve.wire_errors,
                serve.dropped_mid_response,
            ));
            let recycles: Vec<String> = serve
                .worker_queries
                .iter()
                .zip(&serve.worker_recycles)
                .enumerate()
                .map(|(w, (q, r))| format!("w{w}:{q}q/{r}r"))
                .collect();
            out.push_str(&format!(
                "worker stats: {} workers [{}] (queries/recycles)\n",
                serve.worker_queries.len(),
                recycles.join(" "),
            ));
        }
        out
    }

    /// The machine-readable rendering: one JSON object (`--stats
    /// --json` emits it as a single line on stderr). Field names are
    /// part of the wire contract and covered by a parse test:
    /// `engine.*` (the [`DeciderStats`] counters, including
    /// `starfree_hits`/`prefix_hits`/`fastpath_fallbacks`), `expr.*`,
    /// `arena.*`, `queries`/`elapsed_micros`/`qps`, `ops.<op>` with
    /// `count`/`mean_ns`/`p50_ns`/`p99_ns`/`p999_ns` and log-bucketed
    /// `buckets: [[lower_ns, count], …]`, and `serve.*` when serving
    /// sockets.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let int = |n: u64| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
        let mut fields = vec![
            ("v".to_owned(), Json::Int(WIRE_VERSION)),
            ("queries".to_owned(), int(self.queries)),
            (
                "elapsed_micros".to_owned(),
                int(u64::try_from(self.elapsed.as_micros()).unwrap_or(u64::MAX)),
            ),
            (
                "qps".to_owned(),
                Json::Int((self.qps().round() as i64).max(0)),
            ),
            ("engine".to_owned(), decider_stats_json(&self.engine)),
            (
                "expr".to_owned(),
                Json::Obj(vec![
                    ("nodes".to_owned(), int(self.expr_nodes)),
                    ("subterms".to_owned(), int(self.expr_subterms)),
                    (
                        "interned".to_owned(),
                        int(nka_syntax::interned_expr_count() as u64),
                    ),
                ]),
            ),
            ("arena".to_owned(), arena_stats_json(self.engine_recycles)),
        ];
        let mut ops = Vec::new();
        for kind in OPS {
            let h = self.ops.op(kind);
            if h.count() == 0 {
                continue;
            }
            let buckets = h
                .nonzero_buckets()
                .into_iter()
                .map(|(lower, n)| Json::Arr(vec![int(lower), int(n)]))
                .collect();
            ops.push((
                kind.op().to_owned(),
                Json::Obj(vec![
                    ("count".to_owned(), int(h.count())),
                    ("mean_ns".to_owned(), int(h.mean_ns())),
                    ("p50_ns".to_owned(), int(h.quantile(0.50))),
                    ("p99_ns".to_owned(), int(h.quantile(0.99))),
                    ("p999_ns".to_owned(), int(h.quantile(0.999))),
                    ("buckets".to_owned(), Json::Arr(buckets)),
                ]),
            ));
        }
        fields.push(("ops".to_owned(), Json::Obj(ops)));
        fields.push((
            "analysis".to_owned(),
            Json::Obj(vec![
                (
                    "findings".to_owned(),
                    Json::Obj(
                        PASS_NAMES
                            .iter()
                            .zip(self.analysis.findings_by_pass)
                            .map(|(pass, n)| ((*pass).to_owned(), int(n)))
                            .collect(),
                    ),
                ),
                (
                    "findings_total".to_owned(),
                    int(self.analysis.findings_total()),
                ),
                (
                    "tier_b_decides".to_owned(),
                    int(self.analysis.tier_b_decides),
                ),
                (
                    "cert_cache_hits".to_owned(),
                    int(self.analysis.cert_cache_hits),
                ),
            ]),
        ));
        fields.push((
            "optimize".to_owned(),
            Json::Obj(vec![
                ("queries".to_owned(), int(self.optimize.queries)),
                ("steps_applied".to_owned(), int(self.optimize.steps_applied)),
                (
                    "steps".to_owned(),
                    Json::Obj(
                        RULE_METADATA
                            .iter()
                            .zip(self.optimize.steps_by_rule)
                            .map(|(meta, n)| (meta.name.to_owned(), int(n)))
                            .collect(),
                    ),
                ),
                (
                    "candidates_refuted".to_owned(),
                    int(self.optimize.candidates_refuted),
                ),
                ("fixpoints".to_owned(), int(self.optimize.fixpoints)),
                ("budget_bails".to_owned(), int(self.optimize.budget_bails)),
                ("cycle_breaks".to_owned(), int(self.optimize.cycle_breaks)),
                (
                    "engine_decides".to_owned(),
                    int(self.optimize.engine_decides),
                ),
                (
                    "cert_cache_hits".to_owned(),
                    int(self.optimize.cert_cache_hits),
                ),
            ]),
        ));
        let sn = &self.snapshot;
        fields.push((
            "snapshot".to_owned(),
            Json::Obj(vec![
                ("restored_entries".to_owned(), int(sn.restored_entries)),
                ("snapshot_hits".to_owned(), int(sn.snapshot_hits)),
                ("cert_snapshot_hits".to_owned(), int(sn.cert_snapshot_hits)),
                ("load_warnings".to_owned(), int(sn.load_warnings)),
                ("dumps".to_owned(), int(sn.dumps)),
                ("dump_failures".to_owned(), int(sn.dump_failures)),
                (
                    "age_secs".to_owned(),
                    sn.loaded_created_unix_secs.map_or(Json::Null, |created| {
                        int(crate::snapshot::now_unix_secs().saturating_sub(created))
                    }),
                ),
            ]),
        ));
        if let Some(serve) = &self.serve {
            fields.push((
                "serve".to_owned(),
                Json::Obj(vec![
                    (
                        "connections_opened".to_owned(),
                        int(serve.connections_opened),
                    ),
                    (
                        "connections_closed".to_owned(),
                        int(serve.connections_closed),
                    ),
                    ("pending_now".to_owned(), int(serve.pending_now)),
                    ("rejected_overload".to_owned(), int(serve.rejected_overload)),
                    (
                        "rejected_line_bytes".to_owned(),
                        int(serve.rejected_line_bytes),
                    ),
                    ("wire_errors".to_owned(), int(serve.wire_errors)),
                    (
                        "dropped_mid_response".to_owned(),
                        int(serve.dropped_mid_response),
                    ),
                    (
                        "worker_recycles".to_owned(),
                        Json::Arr(serve.worker_recycles.iter().map(|&n| int(n)).collect()),
                    ),
                    (
                        "worker_queries".to_owned(),
                        Json::Arr(serve.worker_queries.iter().map(|&n| int(n)).collect()),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

/// The [`DeciderStats`] counters as a JSON object — shared between the
/// per-response `stats` field of the wire format and the `--stats
/// --json` report.
#[must_use]
pub fn decider_stats_json(stats: &DeciderStats) -> Json {
    let int = |n: u64| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
    Json::Obj(vec![
        ("nka_queries".to_owned(), int(stats.nka_queries)),
        ("ka_queries".to_owned(), int(stats.ka_queries)),
        ("answer_hits".to_owned(), int(stats.answer_hits)),
        ("compile_hits".to_owned(), int(stats.compile_hits)),
        ("compile_misses".to_owned(), int(stats.compile_misses)),
        ("dfa_hits".to_owned(), int(stats.dfa_hits)),
        ("dfa_misses".to_owned(), int(stats.dfa_misses)),
        ("starfree_hits".to_owned(), int(stats.starfree_hits)),
        ("prefix_hits".to_owned(), int(stats.prefix_hits)),
        (
            "fastpath_fallbacks".to_owned(),
            int(stats.fastpath_fallbacks),
        ),
    ])
}

/// The process-arena lifecycle figures as a JSON object (the JSON form
/// of the `arena stats:` line).
#[must_use]
pub fn arena_stats_json(engine_recycles: u64) -> Json {
    let int = |n: u64| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
    Json::Obj(vec![
        (
            "resident_nodes".to_owned(),
            int(nka_syntax::arena_resident_nodes() as u64),
        ),
        (
            "persistent_nodes".to_owned(),
            int(nka_syntax::interned_expr_count() as u64),
        ),
        (
            "scratch_live".to_owned(),
            int(nka_syntax::scratch_live_nodes() as u64),
        ),
        (
            "scratch_retired".to_owned(),
            int(nka_syntax::scratch_retired_total()),
        ),
        (
            "scratch_epochs".to_owned(),
            int(nka_syntax::scratch_epoch()),
        ),
        ("engine_recycles".to_owned(), int(engine_recycles)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(serve: Option<ServeCounters>) -> StatsBlock {
        let hists = OpHistograms::new();
        hists.record(QueryKind::NkaEq, Duration::from_micros(3));
        hists.record(QueryKind::NkaEq, Duration::from_micros(5));
        hists.record(QueryKind::ProgEq, Duration::from_millis(2));
        StatsBlock {
            engine: DeciderStats {
                nka_queries: 3,
                starfree_hits: 1,
                ..DeciderStats::default()
            },
            expr_nodes: 10,
            expr_subterms: 7,
            engine_recycles: 2,
            queries: hists.total(),
            elapsed: Duration::from_secs(1),
            ops: hists.snapshot(),
            analysis: AnalysisStats::default(),
            optimize: OptimizeStats::default(),
            snapshot: SnapshotStats::default(),
            serve,
        }
    }

    #[test]
    fn human_rendering_keeps_the_historical_lines_and_adds_latency() {
        let text = sample_block(None).render_human();
        for needle in [
            "engine stats: 3 NKA",
            "fast-path stats: 1 star-free hits",
            "expr stats: 10 tree nodes over 7 distinct subterms",
            "arena stats:",
            "latency stats: 3 queries",
            "  nka_eq: n=2 p50=",
            "  prog_eq: n=1 p50=",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains("serve stats:"), "no serve section expected");
    }

    #[test]
    fn json_rendering_parses_and_carries_the_contract_fields() {
        let serve = ServeCounters {
            connections_opened: 4,
            worker_recycles: vec![1, 0],
            worker_queries: vec![2, 1],
            ..ServeCounters::default()
        };
        let line = sample_block(Some(serve)).to_json().to_string();
        let value = Json::parse(&line).expect("stats JSON parses");
        let engine = value.get("engine").expect("engine section");
        assert_eq!(engine.get("starfree_hits").and_then(Json::as_i64), Some(1));
        assert!(engine.get("prefix_hits").is_some());
        assert!(engine.get("fastpath_fallbacks").is_some());
        let arena = value.get("arena").expect("arena section");
        assert!(arena.get("resident_nodes").and_then(Json::as_i64).is_some());
        let ops = value.get("ops").expect("ops section");
        let nka = ops.get("nka_eq").expect("nka_eq histogram");
        assert_eq!(nka.get("count").and_then(Json::as_i64), Some(2));
        assert!(nka.get("p999_ns").and_then(Json::as_i64).is_some());
        let buckets = nka.get("buckets").and_then(Json::as_array).unwrap();
        assert!(!buckets.is_empty(), "histogram buckets present");
        let serve = value.get("serve").expect("serve section");
        assert_eq!(
            serve.get("connections_opened").and_then(Json::as_i64),
            Some(4)
        );
        assert_eq!(
            serve
                .get("worker_recycles")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn snapshot_section_is_versioned_and_renders_only_when_active() {
        // No snapshot involvement: no human line, but the JSON contract
        // always carries `v` and the zeroed section.
        let quiet = sample_block(None);
        assert!(!quiet.render_human().contains("snapshot stats:"));
        let value = Json::parse(&quiet.to_json().to_string()).unwrap();
        assert_eq!(value.get("v").and_then(Json::as_i64), Some(WIRE_VERSION));
        let snapshot = value.get("snapshot").expect("snapshot section");
        assert_eq!(
            snapshot.get("restored_entries").and_then(Json::as_i64),
            Some(0)
        );
        assert!(matches!(snapshot.get("age_secs"), Some(Json::Null)));
        // With warm-start activity the human line appears and the JSON
        // reports a numeric age.
        let mut warm = sample_block(None);
        warm.snapshot.restored_entries = 9;
        warm.snapshot.snapshot_hits = 4;
        warm.snapshot.cert_snapshot_hits = 2;
        warm.snapshot.dumps = 1;
        warm.snapshot.loaded_created_unix_secs = Some(crate::snapshot::now_unix_secs());
        let text = warm.render_human();
        assert!(
            text.contains("snapshot stats: 9 entries restored"),
            "{text}"
        );
        assert!(text.contains("4 verdict hits + 2 cert hits"), "{text}");
        let value = Json::parse(&warm.to_json().to_string()).unwrap();
        let snapshot = value.get("snapshot").unwrap();
        assert_eq!(
            snapshot.get("snapshot_hits").and_then(Json::as_i64),
            Some(4)
        );
        assert!(snapshot.get("age_secs").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn qps_is_queries_over_elapsed() {
        let block = sample_block(None);
        assert!((block.qps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_section_renders_only_when_nonzero_but_is_always_in_json() {
        // All-zero analyzer counters: no human line (the historical
        // line set is unchanged for non-analyze streams), but the JSON
        // contract always carries the section, reading zero.
        let quiet = sample_block(None);
        assert!(!quiet.render_human().contains("analysis stats:"));
        let value = Json::parse(&quiet.to_json().to_string()).unwrap();
        let analysis = value.get("analysis").expect("analysis section");
        assert_eq!(
            analysis.get("tier_b_decides").and_then(Json::as_i64),
            Some(0)
        );
        assert_eq!(
            analysis.get("findings_total").and_then(Json::as_i64),
            Some(0)
        );
        // Non-zero counters: human line lists only the active passes.
        let mut busy = sample_block(None);
        busy.analysis.tier_b_decides = 4;
        busy.analysis.cert_cache_hits = 1;
        busy.analysis.findings_by_pass[0] = 2; // unused_qubit
        busy.analysis.findings_by_pass[5] = 1; // dead_branch
        let text = busy.render_human();
        assert!(
            text.contains(
                "analysis stats: 3 findings [unused_qubit:2 dead_branch:1], \
                 4 Tier B decides, 1 certificate cache hits"
            ),
            "{text}"
        );
        let value = Json::parse(&busy.to_json().to_string()).unwrap();
        let findings = value.get("analysis").unwrap().get("findings").unwrap();
        assert_eq!(findings.get("dead_branch").and_then(Json::as_i64), Some(1));
        assert_eq!(findings.get("metrics").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn optimize_section_renders_only_when_nonzero_but_is_always_in_json() {
        // All-zero optimizer counters: no human line, but the JSON
        // contract always carries the section, reading zero.
        let quiet = sample_block(None);
        assert!(!quiet.render_human().contains("optimize stats:"));
        let value = Json::parse(&quiet.to_json().to_string()).unwrap();
        let optimize = value.get("optimize").expect("optimize section");
        assert_eq!(optimize.get("queries").and_then(Json::as_i64), Some(0));
        assert_eq!(
            optimize.get("steps_applied").and_then(Json::as_i64),
            Some(0)
        );
        // Non-zero counters: human line lists only the rules that fired.
        let mut busy = sample_block(None);
        busy.optimize.queries = 2;
        busy.optimize.steps_applied = 3;
        let abort_sink = nka_qprog::optimize::rule_index("abort-sink").unwrap();
        let dead_branch = nka_qprog::optimize::rule_index("dead-branch").unwrap();
        busy.optimize.steps_by_rule[abort_sink] = 2;
        busy.optimize.steps_by_rule[dead_branch] = 1;
        busy.optimize.candidates_refuted = 1;
        busy.optimize.fixpoints = 2;
        busy.optimize.engine_decides = 5;
        busy.optimize.cert_cache_hits = 2;
        let text = busy.render_human();
        assert!(
            text.contains(
                "optimize stats: 2 queries, 3 steps [dead-branch:1 abort-sink:2], \
                 1 refuted, 2 fixpoints, 0 budget bails, 0 cycle breaks, \
                 5 engine decides, 2 certificate cache hits"
            ),
            "{text}"
        );
        let value = Json::parse(&busy.to_json().to_string()).unwrap();
        let steps = value.get("optimize").unwrap().get("steps").unwrap();
        assert_eq!(steps.get("abort-sink").and_then(Json::as_i64), Some(2));
        assert_eq!(steps.get("gate-fusion").and_then(Json::as_i64), Some(0));
    }
}
