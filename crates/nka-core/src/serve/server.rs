//! The concurrent socket server behind `nka serve --listen`.
//!
//! # Architecture
//!
//! ```text
//!  accept loop (per listener, TCP / Unix)        worker pool (N threads)
//!  ───────────────────────────────────────       ───────────────────────
//!  accept → assign connection to a worker   ┌──▶ worker 0: warm Session
//!           (round-robin) and spawn a       │       pop job → decode →
//!           reader thread                   │       run → encode → write
//!                                           │       to the job's conn
//!  reader (per connection)                  │
//!  ──────────────────────                   │    worker 1: warm Session
//!  read one line (byte-capped) ─────────────┘       …
//!    └─ window.acquire()  ◀── backpressure: blocks (stops reading the
//!       push onto the conn's worker queue       socket) while the
//!                                               connection's in-flight
//!                                               window is full
//! ```
//!
//! Every connection is pinned to one worker, so responses come back in
//! request order with no reorder buffer; concurrency comes from many
//! connections spread across workers, each worker owning one warm
//! [`Session`] over the shared persistent arena (expressions are
//! hash-consed process-wide, so workers share interned terms).
//!
//! # Backpressure and overload
//!
//! * **Per-connection window** ([`ServeConfig::queue_depth`]): a reader
//!   blocks acquiring a window slot before enqueuing the next request,
//!   i.e. the server simply *stops reading that connection's socket*
//!   when its queue is full — the kernel's TCP/UDS buffers fill and the
//!   client's writes stall. Memory per connection is bounded by
//!   `queue_depth` raw lines.
//! * **Server-wide hard cap** ([`ServeConfig::max_pending`]): past it,
//!   requests are answered *in order* with a structured
//!   `{"verdict":"error","error":"overloaded: …"}` line instead of
//!   being run — load is shed without breaking the one-line-in /
//!   one-line-out contract.
//! * **Per-line byte cap** ([`ServeConfig::max_line_bytes`]): an
//!   oversized line is discarded as it streams in (never fully
//!   buffered) and answered with a structured error.
//!
//! # Drain
//!
//! [`ServerHandle::begin_drain`] (used by the CLI's SIGTERM/SIGINT
//! handler) or an exceeded [`ServeConfig::max_arena_nodes`] puts the
//! server into drain: listeners stop accepting, readers stop reading,
//! every request already read is answered and flushed, then workers
//! exit and [`Server::join`] returns the exit code (`0` for a requested
//! shutdown, `3` for the arena cap — the same supervisor contract as
//! the stdin loop).
//!
//! A client that disconnects mid-response costs only its own
//! connection: the write fails (Rust ignores `SIGPIPE`, so it surfaces
//! as `EPIPE`), the connection is marked dead, its remaining queued
//! requests are skipped, and every other connection keeps being served.

use super::stats::{OpHistograms, ServeCounters, StatsBlock};
use crate::api::json::Json;
use crate::api::{wire, AnalysisStats, OptimizeStats, Session, SessionOptions, SnapshotStats};
use crate::snapshot::{self, ConfigGuard, LoadedSnapshot, SnapshotBuilder};
use nka_wfa::DeciderStats;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked connection reads re-check the drain flag (the
/// reader's `set_read_timeout`). Idle workers and window waiters no
/// longer tick on this: they park on their condvars and are woken by a
/// targeted `notify_one` on enqueue/slot-free (plus `notify_all` at
/// drain transitions), so an idle pool stays asleep instead of waking
/// every pool-size × 10 times a second.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Accept-loop poll interval (listeners are non-blocking so they can
/// observe drain).
const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// Where the server listens. Parsed from `--listen`:
/// `unix:/path/to.sock` for a Unix-domain socket, anything else
/// (optionally prefixed `tcp:`) as a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP listener on `host:port` (port `0` picks a free port;
    /// query it via [`Server::tcp_addrs`]).
    Tcp(String),
    /// A Unix-domain socket at the given path (any stale file is
    /// replaced; the path is removed again on [`Server::join`]).
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses a `--listen` argument. Never fails: everything that is
    /// not `unix:`-prefixed is a TCP address (bind reports bad ones).
    #[must_use]
    pub fn parse(arg: &str) -> ListenAddr {
        if let Some(path) = arg.strip_prefix("unix:") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if let Some(rest) = arg.strip_prefix("tcp:") {
            ListenAddr::Tcp(rest.to_owned())
        } else {
            ListenAddr::Tcp(arg.to_owned())
        }
    }
}

/// Configuration of the socket server. `Default` gives the CLI
/// defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Options for each worker's [`Session`] (budget, recycling, …).
    pub session: SessionOptions,
    /// Worker threads, each with one warm session. Defaults to the
    /// machine's available parallelism, clamped to `1..=8`.
    pub workers: usize,
    /// Per-connection in-flight window: how many requests may be
    /// queued/running per connection before the server stops reading
    /// its socket (the backpressure bound).
    pub queue_depth: usize,
    /// Server-wide pending-request hard cap: past it, further requests
    /// are answered with a structured `overloaded` error instead of
    /// being run.
    pub max_pending: usize,
    /// Per-request-line byte hard cap; longer lines are answered with a
    /// structured error without ever being buffered whole.
    pub max_line_bytes: usize,
    /// Exit-3 arena governance, as in the stdin loop: once the
    /// process-wide resident expression arena exceeds this, the server
    /// drains (answering everything already read) and
    /// [`Server::join`] returns `3`.
    pub max_arena_nodes: Option<usize>,
    /// Respond in JSONL (`true`, the `--json` flag) or human text.
    pub json: bool,
    /// How long a response write to a stalled client may block before
    /// the connection is declared dead. Bounds drain time under
    /// pathological readers.
    pub write_timeout: Option<Duration>,
    /// Warm-start snapshot file: loaded once at bind and shared by the
    /// whole worker pool; every worker's caches are merged and re-dumped
    /// here when the server drains (SIGTERM or the arena cap). A
    /// missing, corrupt, or mismatched file degrades to a cold start
    /// (with a warning counted) — never to a wrong answer.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            session: SessionOptions::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            queue_depth: 64,
            max_pending: 1024,
            max_line_bytes: 1 << 20,
            max_arena_nodes: None,
            json: false,
            write_timeout: Some(Duration::from_secs(30)),
            snapshot_path: None,
        }
    }
}

/// Either kind of accepted stream, unified behind `Read`/`Write`.
#[derive(Debug)]
enum Socket {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Socket {
    fn try_clone(&self) -> io::Result<Socket> {
        match self {
            Socket::Tcp(s) => s.try_clone().map(Socket::Tcp),
            #[cfg(unix)]
            Socket::Unix(s) => s.try_clone().map(Socket::Unix),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Socket::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Socket::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Socket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Socket::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Socket {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Socket::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Socket::Unix(s) => s.flush(),
        }
    }
}

/// The per-connection in-flight window (a small counting semaphore).
#[derive(Debug, Default)]
struct Window {
    inflight: Mutex<usize>,
    freed: Condvar,
}

impl Window {
    /// Blocks until the window has room, then takes a slot. Progress is
    /// guaranteed because workers release slots as they answer: every
    /// [`Window::release`] signals `freed`, so a plain (untimed) wait
    /// cannot strand the reader.
    fn acquire(&self, depth: usize) {
        let mut n = self.inflight.lock().unwrap();
        while *n >= depth {
            n = self.freed.wait(n).unwrap();
        }
        *n += 1;
    }

    fn release(&self) {
        let mut n = self.inflight.lock().unwrap();
        *n = n.saturating_sub(1);
        drop(n);
        self.freed.notify_one();
    }
}

/// One accepted connection, shared between its reader thread and the
/// worker that answers it.
#[derive(Debug)]
struct Conn {
    window: Window,
    out: Mutex<Socket>,
    /// Set on the first failed response write (client went away):
    /// remaining queued requests for this connection are skipped.
    dead: AtomicBool,
}

impl Conn {
    /// Writes one response line; on failure marks the connection dead.
    fn write_line(&self, line: &str, shared: &Shared) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut out = self.out.lock().unwrap();
        let mut payload = String::with_capacity(line.len() + 1);
        payload.push_str(line);
        payload.push('\n');
        let result = out.write_all(payload.as_bytes()).and_then(|()| out.flush());
        if result.is_err() {
            // EPIPE / timeout: this client is gone or wedged. Only its
            // own connection dies — the PR 1 stdout contract, per-socket.
            self.dead.store(true, Ordering::Relaxed);
            shared
                .counters
                .dropped_mid_response
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Why a request was shed instead of run.
#[derive(Debug)]
enum RejectReason {
    Overloaded { pending: usize, cap: usize },
    LineTooLong { cap: usize },
}

/// A unit of work for a worker.
#[derive(Debug)]
enum Job {
    /// A request line to decode, run, and answer.
    Run { conn: Arc<Conn>, line: String },
    /// A request answered with a structured error without running.
    Reject {
        conn: Arc<Conn>,
        reason: RejectReason,
    },
}

/// A worker's inbound queue. Multiple readers push; one worker pops.
#[derive(Debug, Default)]
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    nonempty: Condvar,
}

impl WorkerQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.nonempty.notify_one();
    }
}

/// Per-worker published accounting, read by stats snapshots.
#[derive(Debug, Default, Clone)]
struct WorkerPub {
    stats: DeciderStats,
    expr_nodes: u64,
    expr_subterms: u64,
    recycles: u64,
    queries: u64,
    analysis: AnalysisStats,
    optimize: OptimizeStats,
    snapshot: SnapshotStats,
}

/// Plain counters of the serve layer (see [`ServeCounters`]).
#[derive(Debug, Default)]
struct Counters {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_line_bytes: AtomicU64,
    wire_errors: AtomicU64,
    dropped_mid_response: AtomicU64,
}

/// State shared by every thread of one server.
#[derive(Debug)]
struct Shared {
    cfg: ServeConfig,
    started: Instant,
    draining: AtomicBool,
    exit_code: AtomicU8,
    drain_note: Mutex<Option<String>>,
    pending_total: AtomicUsize,
    readers_live: AtomicUsize,
    next_worker: AtomicUsize,
    queues: Vec<WorkerQueue>,
    published: Vec<Mutex<WorkerPub>>,
    hists: OpHistograms,
    counters: Counters,
    /// The boot-time snapshot every worker restores from, if one loaded.
    snapshot: Option<Arc<LoadedSnapshot>>,
    /// Load failures at bind (corrupt / mismatched / unreadable file).
    snapshot_load_warnings: AtomicU64,
    /// Drain-time merge target: each exiting worker folds its caches in
    /// here; [`Server::join`] writes the result to `snapshot_path`.
    snapshot_merge: Mutex<Option<SnapshotBuilder>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Enters drain mode (idempotent; the first caller's code and note
    /// win). Listeners stop accepting, readers stop reading, queued
    /// requests are still answered.
    fn begin_drain(&self, exit_code: u8, note: &str) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.exit_code.store(exit_code, Ordering::SeqCst);
        *self.drain_note.lock().unwrap() = Some(note.to_owned());
        for queue in &self.queues {
            queue.nonempty.notify_all();
        }
    }
}

/// The outcome of one capped line read.
enum LineRead {
    Line(String),
    TooLong,
    Timeout,
    Eof,
}

/// Reads one `\n`-terminated line, accumulating across read timeouts
/// (`acc`/`discarding` persist between calls) and never buffering more
/// than `cap` bytes of an oversized line.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    acc: &mut Vec<u8>,
    discarding: &mut bool,
    cap: usize,
) -> io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                return Ok(LineRead::Timeout)
            }
            Err(err) => return Err(err),
        };
        if available.is_empty() {
            // EOF. A final unterminated line still gets answered, like
            // `BufRead::lines` in the stdin loop.
            if !*discarding && !acc.is_empty() {
                let line = String::from_utf8_lossy(acc).into_owned();
                acc.clear();
                return Ok(LineRead::Line(line));
            }
            return Ok(LineRead::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let was_discarding = *discarding;
                if !was_discarding {
                    acc.extend_from_slice(&available[..pos]);
                }
                reader.consume(pos + 1);
                *discarding = false;
                if was_discarding || acc.len() > cap {
                    acc.clear();
                    return Ok(LineRead::TooLong);
                }
                let line = String::from_utf8_lossy(acc).into_owned();
                acc.clear();
                return Ok(LineRead::Line(line));
            }
            None => {
                let n = available.len();
                if !*discarding {
                    acc.extend_from_slice(available);
                    if acc.len() > cap {
                        acc.clear();
                        *discarding = true;
                    }
                }
                reader.consume(n);
            }
        }
    }
}

/// The per-connection reader: pulls byte-capped lines off the socket
/// and enqueues them (through the backpressure window) onto the
/// connection's worker.
fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, sock: Socket, worker: usize) {
    let _ = sock.set_read_timeout(Some(POLL_TICK));
    let mut reader = BufReader::new(sock);
    let mut acc = Vec::new();
    let mut discarding = false;
    loop {
        if shared.draining() || conn.dead.load(Ordering::Relaxed) {
            break;
        }
        let job = match read_line_capped(
            &mut reader,
            &mut acc,
            &mut discarding,
            shared.cfg.max_line_bytes,
        ) {
            Ok(LineRead::Timeout) => continue,
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::TooLong) => Job::Reject {
                conn: Arc::clone(conn),
                reason: RejectReason::LineTooLong {
                    cap: shared.cfg.max_line_bytes,
                },
            },
            Ok(LineRead::Line(line)) => Job::Run {
                conn: Arc::clone(conn),
                line,
            },
        };
        // Backpressure: block (i.e. stop reading this socket) until the
        // connection's in-flight window has room. Workers keep
        // answering, so this always makes progress — including during
        // drain, where the line just read is still owed an answer.
        conn.window.acquire(shared.cfg.queue_depth);
        let pending = shared.pending_total.fetch_add(1, Ordering::SeqCst) + 1;
        let job = match job {
            // Past the server-wide hard cap the request is shed — but
            // in order, through the same queue, so the one-response-
            // per-request contract survives overload.
            Job::Run { conn, .. } if pending > shared.cfg.max_pending => Job::Reject {
                conn,
                reason: RejectReason::Overloaded {
                    pending,
                    cap: shared.cfg.max_pending,
                },
            },
            job => job,
        };
        shared.queues[worker].push(job);
    }
}

/// Renders a shed request's structured error line.
fn reject_line(reason: &RejectReason, json: bool) -> String {
    let msg = match reason {
        RejectReason::Overloaded { pending, cap } => {
            format!("overloaded: {pending} requests pending exceeds the server cap of {cap}; retry later")
        }
        RejectReason::LineTooLong { cap } => {
            format!("request line exceeds the {cap}-byte cap")
        }
    };
    if json {
        Json::Obj(vec![
            ("verdict".to_owned(), Json::Str("error".to_owned())),
            ("error".to_owned(), Json::Str(msg)),
        ])
        .to_string()
    } else {
        format!("error: {msg}")
    }
}

/// One worker: a warm [`Session`] answering its queue until drain
/// completes (drain + empty queue + no readers left anywhere).
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let mut session = Session::with_options(shared.cfg.session.clone());
    if let Some(snap) = &shared.snapshot {
        session.load_snapshot(snap);
        publish_worker(shared, index, &session);
    }
    loop {
        let job = {
            let queue = &shared.queues[index];
            let mut jobs = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.draining() && shared.readers_live.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                // Untimed park: [`WorkerQueue::push`] notifies on every
                // enqueue, and both drain entry (`begin_drain`) and the
                // last reader's exit broadcast `notify_all`, so every
                // state change that alters the conditions above also
                // wakes this worker.
                jobs = queue.nonempty.wait(jobs).unwrap();
            }
        };
        let Some(job) = job else { break };
        match job {
            Job::Run { conn, line } => {
                handle_request(shared, &mut session, index, &conn, &line);
                shared.pending_total.fetch_sub(1, Ordering::SeqCst);
                conn.window.release();
            }
            Job::Reject { conn, reason } => {
                let counter = match reason {
                    RejectReason::Overloaded { .. } => &shared.counters.rejected_overload,
                    RejectReason::LineTooLong { .. } => &shared.counters.rejected_line_bytes,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                conn.write_line(&reject_line(&reason, shared.cfg.json), shared);
                shared.pending_total.fetch_sub(1, Ordering::SeqCst);
                conn.window.release();
            }
        }
        // Exit-3 governance, checked between requests like the stdin
        // loop: entering drain still answers everything already read.
        if let Some(cap) = shared.cfg.max_arena_nodes {
            let resident = nka_syntax::arena_resident_nodes();
            if resident > cap {
                shared.begin_drain(
                    3,
                    &format!(
                        "arena cap exceeded: {resident} resident expression nodes > \
                         --max-arena-nodes {cap}; draining for worker recycling"
                    ),
                );
            }
        }
    }
    // Drain: fold this worker's caches into the shared re-dump builder
    // (deduplication across workers happens in the builder).
    if let Some(builder) = shared.snapshot_merge.lock().unwrap().as_mut() {
        session.export_snapshot_into(builder);
    }
    publish_worker(shared, index, &session);
}

/// Decodes, runs, answers, and accounts one request line.
fn handle_request(
    shared: &Arc<Shared>,
    session: &mut Session,
    index: usize,
    conn: &Arc<Conn>,
    line: &str,
) {
    let start = Instant::now();
    match wire::decode_request(line) {
        Ok(None) => {} // blank / comment: consumed, no response owed
        Ok(Some(query)) => {
            let resp = session.run(&query);
            let rendered = if shared.cfg.json {
                wire::encode_response(&query, &resp)
            } else {
                wire::encode_response_text(&query, &resp)
            };
            // Service time = decode + run + encode; the write is the
            // client's pace, not the server's.
            shared.hists.record(query.kind(), start.elapsed());
            conn.write_line(&rendered, shared);
            publish_worker(shared, index, session);
        }
        Err(err) => {
            shared.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            let rendered = if shared.cfg.json {
                wire::encode_error(&err)
            } else {
                format!("error: {err}")
            };
            conn.write_line(&rendered, shared);
        }
    }
}

/// Publishes a worker's cumulative session accounting for snapshots.
fn publish_worker(shared: &Shared, index: usize, session: &Session) {
    let mut slot = shared.published[index].lock().unwrap();
    slot.stats = session.stats();
    slot.expr_nodes = session.expr_nodes_seen();
    slot.expr_subterms = session.expr_subterms_seen();
    slot.recycles = session.engine_recycles();
    slot.queries = session.queries_run();
    slot.analysis = session.analysis_stats();
    slot.optimize = session.optimize_stats();
    slot.snapshot = session.snapshot_stats();
}

/// The accept loop of one TCP listener.
fn accept_tcp(shared: &Arc<Shared>, listener: &TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    loop {
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                start_connection(shared, Socket::Tcp(stream));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// The accept loop of one Unix-domain listener.
#[cfg(unix)]
fn accept_unix(shared: &Arc<Shared>, listener: &UnixListener) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    loop {
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => start_connection(shared, Socket::Unix(stream)),
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Registers an accepted stream: assigns it a worker, splits it into a
/// reader half and a shared writer half, and spawns the reader thread.
fn start_connection(shared: &Arc<Shared>, sock: Socket) {
    let Ok(read_half) = sock.try_clone() else {
        return; // the fd went away between accept and clone
    };
    let _ = sock.set_write_timeout(shared.cfg.write_timeout);
    shared
        .counters
        .connections_opened
        .fetch_add(1, Ordering::Relaxed);
    let worker = shared.next_worker.fetch_add(1, Ordering::Relaxed) % shared.queues.len();
    let conn = Arc::new(Conn {
        window: Window::default(),
        out: Mutex::new(sock),
        dead: AtomicBool::new(false),
    });
    // Count the reader *before* spawning so drain can't conclude "no
    // readers" between accept and thread start.
    shared.readers_live.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        reader_loop(&shared, &conn, read_half, worker);
        shared
            .counters
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
        shared.readers_live.fetch_sub(1, Ordering::SeqCst);
        // Idle workers blocked on their queues must re-check the exit
        // condition once the last reader leaves.
        for queue in &shared.queues {
            queue.nonempty.notify_all();
        }
    });
}

/// A cloneable handle onto a running [`Server`]: stats snapshots and
/// drain control, usable from other threads while `join` blocks.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Whether drain has begun.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// Starts a graceful drain: stop accepting and reading, answer
    /// everything already read, then exit with `exit_code`.
    pub fn begin_drain(&self, exit_code: u8, note: &str) {
        self.shared.begin_drain(exit_code, note);
    }

    /// The drain note, if drain has begun (e.g. the arena-cap message).
    #[must_use]
    pub fn drain_note(&self) -> Option<String> {
        self.shared.drain_note.lock().unwrap().clone()
    }

    /// Requests queued or running right now.
    #[must_use]
    pub fn pending_now(&self) -> usize {
        self.shared.pending_total.load(Ordering::SeqCst)
    }

    /// A full stats snapshot ([`StatsBlock`]) aggregating every worker.
    #[must_use]
    pub fn stats_block(&self) -> StatsBlock {
        let shared = &self.shared;
        let mut engine = DeciderStats::default();
        let mut expr_nodes = 0;
        let mut expr_subterms = 0;
        let mut recycles = 0;
        let mut analysis = AnalysisStats::default();
        let mut optimize = OptimizeStats::default();
        let mut snapshot = SnapshotStats::default();
        let mut worker_recycles = Vec::with_capacity(shared.published.len());
        let mut worker_queries = Vec::with_capacity(shared.published.len());
        for slot in &shared.published {
            let w = slot.lock().unwrap().clone();
            engine = engine.merged(&w.stats);
            expr_nodes += w.expr_nodes;
            expr_subterms += w.expr_subterms;
            recycles += w.recycles;
            analysis = analysis.merged(&w.analysis);
            optimize = optimize.merged(&w.optimize);
            snapshot = snapshot.merged(&w.snapshot);
            worker_recycles.push(w.recycles);
            worker_queries.push(w.queries);
        }
        snapshot.load_warnings += shared.snapshot_load_warnings.load(Ordering::Relaxed);
        let c = &shared.counters;
        StatsBlock {
            engine,
            expr_nodes,
            expr_subterms,
            engine_recycles: recycles,
            queries: shared.hists.total(),
            elapsed: shared.started.elapsed(),
            ops: shared.hists.snapshot(),
            analysis,
            optimize,
            snapshot,
            serve: Some(ServeCounters {
                connections_opened: c.connections_opened.load(Ordering::Relaxed),
                connections_closed: c.connections_closed.load(Ordering::Relaxed),
                rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
                rejected_line_bytes: c.rejected_line_bytes.load(Ordering::Relaxed),
                wire_errors: c.wire_errors.load(Ordering::Relaxed),
                dropped_mid_response: c.dropped_mid_response.load(Ordering::Relaxed),
                pending_now: shared.pending_total.load(Ordering::SeqCst) as u64,
                worker_recycles,
                worker_queries,
            }),
        }
    }
}

/// A running socket server. Construct with [`Server::bind`], control
/// through [`Server::handle`], block on [`Server::join`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    tcp_addrs: Vec<SocketAddr>,
    unix_paths: Vec<PathBuf>,
}

impl Server {
    /// Binds every listener, spawns the worker pool, and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Any bind failure (bad address, permission, …); nothing keeps
    /// running on error.
    pub fn bind(cfg: ServeConfig, addrs: &[ListenAddr]) -> io::Result<Server> {
        assert!(cfg.workers > 0, "a server needs at least one worker");
        assert!(
            cfg.queue_depth > 0,
            "a zero queue depth would deadlock every reader"
        );
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listen addresses",
            ));
        }
        // Load the warm-start snapshot once; the pool shares it. A file
        // that is missing is a normal first boot; one that fails to
        // load degrades to cold with a warning — serving always starts.
        let guard = ConfigGuard::from_options(&cfg.session.decide);
        let mut loaded = None;
        let mut load_warnings = 0u64;
        if let Some(path) = &cfg.snapshot_path {
            if path.exists() {
                match snapshot::load(path, &guard) {
                    Ok(snap) => loaded = Some(Arc::new(snap)),
                    Err(err) => {
                        load_warnings = 1;
                        eprintln!(
                            "warning: snapshot {} not restored ({err}); starting cold",
                            path.display()
                        );
                    }
                }
            }
        }
        let merge = cfg
            .snapshot_path
            .as_ref()
            .map(|_| SnapshotBuilder::new(guard));
        let shared = Arc::new(Shared {
            started: Instant::now(),
            draining: AtomicBool::new(false),
            exit_code: AtomicU8::new(0),
            drain_note: Mutex::new(None),
            pending_total: AtomicUsize::new(0),
            readers_live: AtomicUsize::new(0),
            next_worker: AtomicUsize::new(0),
            queues: (0..cfg.workers).map(|_| WorkerQueue::default()).collect(),
            published: (0..cfg.workers)
                .map(|_| Mutex::new(WorkerPub::default()))
                .collect(),
            hists: OpHistograms::new(),
            counters: Counters::default(),
            snapshot: loaded,
            snapshot_load_warnings: AtomicU64::new(load_warnings),
            snapshot_merge: Mutex::new(merge),
            cfg,
        });

        let mut tcp_addrs = Vec::new();
        let mut unix_paths = Vec::new();
        let mut accept_threads = Vec::new();
        for addr in addrs {
            match addr {
                ListenAddr::Tcp(spec) => {
                    let listener = TcpListener::bind(spec.as_str())?;
                    tcp_addrs.push(listener.local_addr()?);
                    let shared = Arc::clone(&shared);
                    accept_threads.push(std::thread::spawn(move || accept_tcp(&shared, &listener)));
                }
                #[cfg(unix)]
                ListenAddr::Unix(path) => {
                    // Replace a stale socket file from a previous run;
                    // a live server would have to be stopped first
                    // anyway (the supervisor contract).
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    unix_paths.push(path.clone());
                    let shared = Arc::clone(&shared);
                    accept_threads
                        .push(std::thread::spawn(move || accept_unix(&shared, &listener)));
                }
                #[cfg(not(unix))]
                ListenAddr::Unix(path) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!(
                            "unix sockets unsupported on this platform: {}",
                            path.display()
                        ),
                    ));
                }
            }
        }

        let worker_threads = (0..shared.cfg.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();

        Ok(Server {
            shared,
            accept_threads,
            worker_threads,
            tcp_addrs,
            unix_paths,
        })
    }

    /// The bound TCP addresses (with real ports for `:0` binds), in
    /// `--listen` order.
    #[must_use]
    pub fn tcp_addrs(&self) -> &[SocketAddr] {
        &self.tcp_addrs
    }

    /// A cloneable control/observability handle.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the server has fully drained (someone must call
    /// [`ServerHandle::begin_drain`], or the arena cap must trip), then
    /// returns the exit code: `0` for a requested shutdown, `3` for
    /// `--max-arena-nodes`.
    #[must_use]
    pub fn join(self) -> u8 {
        for handle in self.accept_threads {
            let _ = handle.join();
        }
        for handle in self.worker_threads {
            let _ = handle.join();
        }
        // Every worker has folded its caches into the merge builder by
        // now; re-dump so the next boot (supervisor restart loop) warm
        // starts. A failed write only warns — the drain still succeeds.
        if let Some(path) = &self.shared.cfg.snapshot_path {
            if let Some(builder) = self.shared.snapshot_merge.lock().unwrap().take() {
                if let Err(err) = builder.write_to(path) {
                    eprintln!("warning: snapshot dump to {} failed: {err}", path.display());
                }
            }
        }
        for path in &self.unix_paths {
            let _ = std::fs::remove_file(path);
        }
        self.shared.exit_code.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QueryKind;
    use std::io::BufRead;

    fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
        let addr = server.tcp_addrs()[0];
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        (BufReader::new(stream.try_clone().expect("clone")), stream)
    }

    #[test]
    fn answers_requests_and_drains_cleanly() {
        let server = Server::bind(
            ServeConfig {
                workers: 2,
                json: true,
                ..ServeConfig::default()
            },
            &[ListenAddr::Tcp("127.0.0.1:0".to_owned())],
        )
        .expect("bind");
        let handle = server.handle();
        let (mut reader, mut writer) = connect(&server);
        writer
            .write_all(
                b"{\"op\":\"nka_eq\",\"lhs\":\"(p q)* p\",\"rhs\":\"p (q p)*\"}\np + p = p\n",
            )
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"verdict\":\"holds\""), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"verdict\":\"refuted\""), "{line}");
        drop((reader, writer));
        handle.begin_drain(0, "test over");
        assert_eq!(server.join(), 0);
        let block = handle.stats_block();
        assert_eq!(block.queries, 2);
        assert!(block.serve.as_ref().unwrap().connections_opened >= 1);
    }

    #[test]
    fn oversized_lines_get_structured_errors_without_buffering() {
        let server = Server::bind(
            ServeConfig {
                workers: 1,
                json: true,
                max_line_bytes: 64,
                ..ServeConfig::default()
            },
            &[ListenAddr::Tcp("127.0.0.1:0".to_owned())],
        )
        .expect("bind");
        let handle = server.handle();
        let (mut reader, mut writer) = connect(&server);
        let huge = format!("{}\n", "x".repeat(4096));
        writer.write_all(huge.as_bytes()).unwrap();
        writer.write_all(b"p = p\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"error\"") && line.contains("64-byte cap"),
            "{line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"verdict\":\"holds\""), "{line}");
        handle.begin_drain(0, "done");
        assert_eq!(server.join(), 0);
        assert_eq!(handle.stats_block().serve.unwrap().rejected_line_bytes, 1);
    }

    #[test]
    fn idle_pool_parks_until_notified_with_unchanged_verdicts_and_drain() {
        // Workers now block on untimed condvar waits (no poll ticks);
        // this pins the two behaviors that must survive that change:
        // queries enqueued after an idle stretch still get identical
        // verdicts (the notify_one on push wakes the right worker), and
        // drain still terminates every parked worker (the notify_all
        // broadcasts at drain entry / reader exit).
        let server = Server::bind(
            ServeConfig {
                workers: 4,
                json: true,
                ..ServeConfig::default()
            },
            &[ListenAddr::Tcp("127.0.0.1:0".to_owned())],
        )
        .expect("bind");
        let handle = server.handle();
        let (mut reader, mut writer) = connect(&server);
        // Let the whole pool go idle (parked, nothing queued).
        std::thread::sleep(Duration::from_millis(250));
        writer
            .write_all(
                b"{\"op\":\"optimize\",\"prog\":\"qubits 1; abort; h q0\"}\n\
                  {\"op\":\"nka_eq\",\"lhs\":\"(p q)* p\",\"rhs\":\"p (q p)*\"}\n",
            )
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"optimized\":\"qubits 1; abort\"")
                && line.contains("\"rule\":\"abort-sink\""),
            "{line}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"verdict\":\"holds\""), "{line}");
        drop((reader, writer));
        // Drain with every worker parked again: join would hang here if
        // any wakeup were lost.
        std::thread::sleep(Duration::from_millis(100));
        handle.begin_drain(0, "idle-pool test over");
        assert_eq!(server.join(), 0);
        let block = handle.stats_block();
        assert_eq!(block.queries, 2);
        assert_eq!(block.optimize.queries, 1);
        assert_eq!(block.optimize.steps_applied, 1);
        assert_eq!(block.ops.op(QueryKind::Optimize).count(), 1);
    }

    #[test]
    fn listen_addr_parsing() {
        assert_eq!(
            ListenAddr::parse("unix:/tmp/x.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            ListenAddr::parse("tcp:0.0.0.0:80"),
            ListenAddr::Tcp("0.0.0.0:80".to_owned())
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:7411"),
            ListenAddr::Tcp("127.0.0.1:7411".to_owned())
        );
    }
}
