//! Fixed log-bucketed latency histograms — the measurement primitive of
//! the serve-v2 observability layer.
//!
//! A [`LatencyHistogram`] is a fixed array of atomic counters over
//! log-linear nanosecond buckets: values below `2^SUB_BITS` ns get one
//! bucket each (exact), and every power-of-two octave above that is
//! split into `2^SUB_BITS` equal sub-buckets, so any recorded value is
//! attributed to a bucket whose width is at most `1/2^SUB_BITS` of its
//! lower bound (≤ 12.5 % relative error with the default of 3 sub-bits).
//! Recording is one relaxed `fetch_add` — no locks, no allocation, safe
//! to call from every worker thread of a busy server — and the whole
//! structure is a few KiB, so per-op histograms are cheap to keep.
//!
//! Quantiles (p50/p99/p999) are estimated from a [`HistogramSnapshot`]
//! by walking the cumulative counts to the target rank and reporting the
//! midpoint of the bucket that contains it; the error is bounded by the
//! bucket width. No dependencies, by design (the build environment is
//! offline): this is the classic HdrHistogram idea reduced to the subset
//! the server needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: indices `0..SUB` are exact small values, then
/// one group of `SUB` buckets per octave up to `u64::MAX` ns (whose
/// index is `((64 - SUB_BITS) << SUB_BITS) | (SUB - 1)`, hence `+ 1`).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// The bucket index of a nanosecond value. Monotone in `ns`.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let sub = ((ns >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) | sub
}

/// The smallest nanosecond value mapped to `idx` (inverse of
/// `bucket_index` on bucket lower bounds).
#[must_use]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (idx & (SUB - 1)) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// The largest nanosecond value mapped to `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(idx + 1) - 1
}

/// A concurrent, fixed-size, log-bucketed histogram of nanosecond
/// latencies. See the [module docs](self) for the bucketing scheme.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: Box::new([ZERO; BUCKETS]),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. Lock-free; safe from any thread.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one latency sample given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters, for quantile estimation
    /// and rendering. Buckets are read relaxed, so a snapshot taken
    /// while other threads record is approximate by at most the
    /// in-flight samples — fine for observability.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive count/sum from the bucket read for internal consistency
        // of the quantile walk; the sum counter is still the real total.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (renders as `n=0`).
    #[must_use]
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Number of samples in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, in nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 if empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`):
    /// the midpoint of the bucket containing the rank-`⌈q·n⌉` sample.
    /// Returns 0 for an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lower = bucket_lower(idx);
                let upper = bucket_upper(idx);
                return lower + (upper - lower) / 2;
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Adds another snapshot's counters into this one (for aggregating
    /// per-worker or per-connection histograms).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The non-empty buckets as `(lower_bound_ns, count)` pairs, in
    /// increasing latency order — the machine-readable form emitted by
    /// `--stats --json`.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_lower(idx), n))
            .collect()
    }
}

/// Human-friendly rendering of a nanosecond figure (`850ns`, `12.3µs`,
/// `4.6ms`, `1.2s`), used by the `--stats` text surface.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_boundaries_are_monotone() {
        for ns in 0..SUB as u64 {
            assert_eq!(bucket_index(ns), ns as usize);
            assert_eq!(bucket_lower(ns as usize), ns);
        }
        // Every bucket's lower bound maps back to its own index, and
        // bounds strictly increase.
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let lower = bucket_lower(idx);
            assert!(lower > prev, "bounds not increasing at {idx}");
            assert_eq!(bucket_index(lower), idx, "lower bound of {idx} misbinned");
            prev = lower;
        }
        // Values one below a boundary land in the previous bucket.
        for idx in SUB..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(idx) - 1), idx - 1);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_the_sub_bucket_width() {
        for &ns in &[9u64, 100, 1_000, 12_345, 1_000_000, 123_456_789] {
            let idx = bucket_index(ns);
            let (lower, upper) = (bucket_lower(idx), bucket_upper(idx));
            assert!(lower <= ns && ns <= upper, "{ns} outside its bucket");
            let width = upper - lower + 1;
            assert!(
                width as f64 <= lower as f64 / (SUB as f64) + 1.0,
                "bucket of {ns} too wide: [{lower}, {upper}]"
            );
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp_are_close() {
        let h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        let p50 = snap.quantile(0.50) as f64;
        let p99 = snap.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.15, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.15, "p99 = {p99}");
        // p0 and p100 are the extreme buckets.
        assert!(snap.quantile(0.0) <= snap.quantile(1.0));
        let mean = snap.mean_ns();
        assert!((4_500..=5_500).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn merge_accumulates_counts_and_sums() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record_ns(ns);
        }
        b.record_ns(1_000_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum_ns(), 10 + 20 + 30 + 1_000_000);
        assert_eq!(merged.nonzero_buckets().len(), 4);
        // The p999 of the merged data sits in the millisecond bucket.
        let p999 = merged.quantile(0.999);
        assert!((900_000..=1_100_000).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn duration_recording_saturates_instead_of_overflowing() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000 + 1));
        assert_eq!(h.count(), 1);
        // The saturated sample lands in the topmost bucket (quantiles
        // report bucket midpoints, so compare against its lower bound).
        let snap = h.snapshot();
        assert!(snap.quantile(1.0) >= bucket_lower(BUCKETS - 1));
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_300), "12.3µs");
        assert_eq!(fmt_ns(4_600_000), "4.6ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }
}
