//! Judgments of the NKA proof calculus.

use nka_syntax::Expr;
use std::fmt;

/// A judgment: either an equation `e = f` or an inequation `e ≤ f`
/// (the NKA partial order of Figure 3 is primitive, not defined from `+`
/// as in KA).
///
/// # Examples
///
/// ```
/// use nka_core::Judgment;
/// use nka_syntax::Expr;
/// let e: Expr = "p q".parse()?;
/// let f: Expr = "q p".parse()?;
/// let j = Judgment::eq(&e, &f);
/// assert_eq!(j.to_string(), "p q = q p");
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Judgment {
    /// `lhs = rhs`.
    Eq(Expr, Expr),
    /// `lhs ≤ rhs`.
    Le(Expr, Expr),
}

impl Judgment {
    /// Builds an equation judgment.
    pub fn eq(lhs: &Expr, rhs: &Expr) -> Judgment {
        Judgment::Eq(*lhs, *rhs)
    }

    /// Builds an inequation judgment.
    pub fn le(lhs: &Expr, rhs: &Expr) -> Judgment {
        Judgment::Le(*lhs, *rhs)
    }

    /// The left-hand side.
    pub fn lhs(&self) -> &Expr {
        match self {
            Judgment::Eq(l, _) | Judgment::Le(l, _) => l,
        }
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &Expr {
        match self {
            Judgment::Eq(_, r) | Judgment::Le(_, r) => r,
        }
    }

    /// Whether this is an equation.
    pub fn is_eq(&self) -> bool {
        matches!(self, Judgment::Eq(..))
    }

    /// For an equation, the same equation with sides swapped; inequations
    /// are returned unchanged (`≤` is not symmetric).
    pub fn flipped(&self) -> Judgment {
        match self {
            Judgment::Eq(l, r) => Judgment::Eq(*r, *l),
            le @ Judgment::Le(..) => le.clone(),
        }
    }
}

impl fmt::Display for Judgment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Judgment::Eq(l, r) => write!(f, "{l} = {r}"),
            Judgment::Le(l, r) => write!(f, "{l} ≤ {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let l: Expr = "a".parse().unwrap();
        let r: Expr = "b + c".parse().unwrap();
        let eq = Judgment::eq(&l, &r);
        assert_eq!(eq.lhs(), &l);
        assert_eq!(eq.rhs(), &r);
        assert!(eq.is_eq());
        assert_eq!(eq.to_string(), "a = b + c");
        let le = Judgment::le(&l, &r);
        assert!(!le.is_eq());
        assert_eq!(le.to_string(), "a ≤ b + c");
    }

    #[test]
    fn flip() {
        let l: Expr = "a".parse().unwrap();
        let r: Expr = "b".parse().unwrap();
        assert_eq!(Judgment::eq(&l, &r).flipped(), Judgment::eq(&r, &l));
        assert_eq!(Judgment::le(&l, &r).flipped(), Judgment::le(&l, &r));
    }
}
