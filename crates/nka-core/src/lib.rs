//! Non-idempotent Kleene algebra: axioms, machine-checkable proof calculus,
//! derived theorems, and the decision procedure façade.
//!
//! This crate is the algebraic heart of the reproduction of Peng–Ying–Wu
//! (PLDI 2022). It provides:
//!
//! * the NKA axioms of **Figure 3** ([`axioms`]) as instantiable schemas;
//! * a **proof calculus** ([`proof`]) — proof objects whose inference rules
//!   are exactly equational/inequational logic over those axioms, plus the
//!   two inductive star rules, hypothesis references (for Horn clauses,
//!   Corollary 4.3), and a decidable `BySemiring` bridge for pure
//!   semiring-plus-congruence steps (the "(distributive-law)" steps of the
//!   paper's derivations);
//! * a **chain builder** ([`builder`]) for transcribing the paper's
//!   derivations step by step, checking each step as it is added;
//! * every derived theorem of **Figure 2a/2b** ([`theorems`]) as a checked
//!   proof, following the derivations of Appendix C.1;
//! * a small **auto-prover** ([`prover`]) that searches for rewrite proofs
//!   under hypotheses;
//! * [`decide_eq`] — the decision procedure for `⊢NKA e = f`
//!   (Remark 2.1 / Theorem A.6), a one-shot façade over the shared
//!   budgeted [`Decider`] engine re-exported from `nka-wfa`;
//! * the **query API v1** ([`api`]) — the typed [`Session`]/[`Query`]
//!   facade with structured [`Verdict`]s and the JSONL wire format;
//!   the primary surface for every multi-query consumer (CLI, benches,
//!   batch files, the `nka serve` loop).
//!
//! # Examples
//!
//! Prove the sliding law and check the proof object:
//!
//! ```
//! use nka_core::theorems;
//! use nka_syntax::Expr;
//!
//! let p: Expr = "p".parse()?;
//! let q: Expr = "q".parse()?;
//! let proof = theorems::sliding(&p, &q);
//! let judgment = proof.check_closed()?;
//! assert_eq!(judgment.to_string(), "(p q)* p = p (q p)*");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod api;
pub mod axioms;
pub mod builder;
pub mod group;
pub mod judgment;
pub mod proof;
pub mod prover;
pub mod render;
pub mod semiring_nf;
pub mod serve;
pub mod snapshot;
pub mod theorems;

pub use api::{ApiError, Query, QueryKind, Response, Session, SessionOptions, Verdict};
pub use axioms::{EqAxiom, LeAxiom};
pub use builder::{EqChain, LeChain};
pub use group::UnitaryGroup;
pub use judgment::Judgment;
pub use proof::{Proof, ProofError};
// The decision-procedure surface is the shared engine from `nka-wfa`;
// re-exported here so downstream crates need only one import site.
pub use nka_wfa::{DecideError, DecideOptions, Decider, DeciderStats};

use nka_syntax::Expr;

/// Decides `⊢NKA e = f` via the rational-power-series model
/// (Theorem A.6).
///
/// One-shot façade over the shared [`Decider`] engine; anything deciding
/// more than one query should hold a [`Decider`] and reuse its caches.
///
/// # Errors
///
/// Returns [`DecideError`] if the subset construction exceeds the default
/// state budget — it never panics. Use [`Decider::with_budget`] for
/// explicit budget control.
///
/// # Examples
///
/// ```
/// use nka_core::decide_eq;
/// use nka_syntax::Expr;
/// let double: Expr = "p* p*".parse()?;
/// let single: Expr = "p*".parse()?;
/// assert!(!decide_eq(&double, &single)?); // p* p* counts splits — not idempotent
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decide_eq(e: &Expr, f: &Expr) -> Result<bool, DecideError> {
    nka_wfa::decide_eq(e, f)
}
