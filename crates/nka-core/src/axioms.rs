//! The NKA axioms of Figure 3, as instantiable schemas.
//!
//! Equational semiring axioms are [`EqAxiom`]; the one inequational axiom
//! (`1 + p p* ≤ p*`) is [`LeAxiom`]. The remaining Figure-3 items —
//! partial-order laws, monotonicity, and the two inductive star rules —
//! are *structural rules* of the proof calculus ([`crate::proof::Proof`]),
//! since they have judgment premises rather than being equation schemas.

use nka_syntax::Expr;
use std::fmt;

/// A pattern over metavariables `?0, ?1, …` used to state axiom schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// The constant `0`.
    Zero,
    /// The constant `1`.
    One,
    /// Metavariable with the given index.
    Var(usize),
    /// Sum pattern.
    Add(Box<Pat>, Box<Pat>),
    /// Product pattern.
    Mul(Box<Pat>, Box<Pat>),
    /// Star pattern.
    Star(Box<Pat>),
}

impl Pat {
    /// Shorthand constructors.
    pub fn v(i: usize) -> Pat {
        Pat::Var(i)
    }
    /// Sum of two patterns. (An associated constructor, not an operator
    /// on `self` — `std::ops::Add` does not apply.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(l: Pat, r: Pat) -> Pat {
        Pat::Add(Box::new(l), Box::new(r))
    }
    /// Product of two patterns.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(l: Pat, r: Pat) -> Pat {
        Pat::Mul(Box::new(l), Box::new(r))
    }
    /// Star of a pattern.
    pub fn star(p: Pat) -> Pat {
        Pat::Star(Box::new(p))
    }

    /// Substitutes `args[i]` for `?i`.
    ///
    /// # Panics
    ///
    /// Panics if a metavariable index exceeds `args.len()`.
    pub fn instantiate(&self, args: &[Expr]) -> Expr {
        match self {
            Pat::Zero => Expr::zero(),
            Pat::One => Expr::one(),
            Pat::Var(i) => args[*i],
            Pat::Add(l, r) => l.instantiate(args).add(&r.instantiate(args)),
            Pat::Mul(l, r) => l.instantiate(args).mul(&r.instantiate(args)),
            Pat::Star(p) => p.instantiate(args).star(),
        }
    }

    /// Matches `expr` against the pattern, extending `bindings`
    /// (indexed by metavariable). Returns `false` on clash.
    pub fn matches(&self, expr: &Expr, bindings: &mut Vec<Option<Expr>>) -> bool {
        use nka_syntax::ExprNode;
        match (self, expr.node()) {
            (Pat::Zero, ExprNode::Zero) => true,
            (Pat::One, ExprNode::One) => true,
            (Pat::Var(i), _) => {
                if *i >= bindings.len() {
                    bindings.resize(*i + 1, None);
                }
                match &bindings[*i] {
                    Some(bound) => bound == expr,
                    None => {
                        bindings[*i] = Some(*expr);
                        true
                    }
                }
            }
            (Pat::Add(pl, pr), ExprNode::Add(el, er))
            | (Pat::Mul(pl, pr), ExprNode::Mul(el, er)) => {
                pl.matches(&el, bindings) && pr.matches(&er, bindings)
            }
            (Pat::Star(p), ExprNode::Star(e)) => p.matches(&e, bindings),
            _ => false,
        }
    }
}

/// The equational axioms of NKA (the semiring laws of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EqAxiom {
    /// `p + (q + r) = (p + q) + r`
    AddAssoc,
    /// `p + q = q + p`
    AddComm,
    /// `p + 0 = p`
    AddZero,
    /// `p (q r) = (p q) r`
    MulAssoc,
    /// `1 p = p`
    MulOneLeft,
    /// `p 1 = p`
    MulOneRight,
    /// `0 p = 0`
    MulZeroLeft,
    /// `p 0 = 0`
    MulZeroRight,
    /// `p (q + r) = p q + p r`
    DistLeft,
    /// `(p + q) r = p r + q r`
    DistRight,
}

impl EqAxiom {
    /// All equational axioms (used by the auto-prover).
    pub const ALL: [EqAxiom; 10] = [
        EqAxiom::AddAssoc,
        EqAxiom::AddComm,
        EqAxiom::AddZero,
        EqAxiom::MulAssoc,
        EqAxiom::MulOneLeft,
        EqAxiom::MulOneRight,
        EqAxiom::MulZeroLeft,
        EqAxiom::MulZeroRight,
        EqAxiom::DistLeft,
        EqAxiom::DistRight,
    ];

    /// The `(lhs, rhs)` pattern pair of the schema.
    pub fn patterns(&self) -> (Pat, Pat) {
        use Pat as P;
        match self {
            EqAxiom::AddAssoc => (
                P::add(P::v(0), P::add(P::v(1), P::v(2))),
                P::add(P::add(P::v(0), P::v(1)), P::v(2)),
            ),
            EqAxiom::AddComm => (P::add(P::v(0), P::v(1)), P::add(P::v(1), P::v(0))),
            EqAxiom::AddZero => (P::add(P::v(0), P::Zero), P::v(0)),
            EqAxiom::MulAssoc => (
                P::mul(P::v(0), P::mul(P::v(1), P::v(2))),
                P::mul(P::mul(P::v(0), P::v(1)), P::v(2)),
            ),
            EqAxiom::MulOneLeft => (P::mul(P::One, P::v(0)), P::v(0)),
            EqAxiom::MulOneRight => (P::mul(P::v(0), P::One), P::v(0)),
            EqAxiom::MulZeroLeft => (P::mul(P::Zero, P::v(0)), P::Zero),
            EqAxiom::MulZeroRight => (P::mul(P::v(0), P::Zero), P::Zero),
            EqAxiom::DistLeft => (
                P::mul(P::v(0), P::add(P::v(1), P::v(2))),
                P::add(P::mul(P::v(0), P::v(1)), P::mul(P::v(0), P::v(2))),
            ),
            EqAxiom::DistRight => (
                P::mul(P::add(P::v(0), P::v(1)), P::v(2)),
                P::add(P::mul(P::v(0), P::v(2)), P::mul(P::v(1), P::v(2))),
            ),
        }
    }

    /// Number of metavariables of the schema.
    pub fn arity(&self) -> usize {
        match self {
            EqAxiom::AddAssoc | EqAxiom::MulAssoc | EqAxiom::DistLeft | EqAxiom::DistRight => 3,
            EqAxiom::AddComm => 2,
            _ => 1,
        }
    }

    /// Instantiates the schema at concrete expressions.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` is less than [`EqAxiom::arity`].
    pub fn instantiate(&self, args: &[Expr]) -> (Expr, Expr) {
        assert!(args.len() >= self.arity(), "too few axiom arguments");
        let (l, r) = self.patterns();
        (l.instantiate(args), r.instantiate(args))
    }
}

impl fmt::Display for EqAxiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EqAxiom::AddAssoc => "add-assoc",
            EqAxiom::AddComm => "add-comm",
            EqAxiom::AddZero => "add-zero",
            EqAxiom::MulAssoc => "mul-assoc",
            EqAxiom::MulOneLeft => "mul-one-left",
            EqAxiom::MulOneRight => "mul-one-right",
            EqAxiom::MulZeroLeft => "mul-zero-left",
            EqAxiom::MulZeroRight => "mul-zero-right",
            EqAxiom::DistLeft => "dist-left",
            EqAxiom::DistRight => "dist-right",
        };
        write!(f, "{name}")
    }
}

/// The inequational axioms of NKA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeAxiom {
    /// `1 + p p* ≤ p*` — the star unfolding axiom.
    StarUnfold,
}

impl LeAxiom {
    /// The `(lhs, rhs)` pattern pair.
    pub fn patterns(&self) -> (Pat, Pat) {
        use Pat as P;
        match self {
            LeAxiom::StarUnfold => (
                P::add(P::One, P::mul(P::v(0), P::star(P::v(0)))),
                P::star(P::v(0)),
            ),
        }
    }

    /// Instantiates the schema.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty.
    pub fn instantiate(&self, args: &[Expr]) -> (Expr, Expr) {
        let (l, r) = self.patterns();
        (l.instantiate(args), r.instantiate(args))
    }
}

impl fmt::Display for LeAxiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeAxiom::StarUnfold => write!(f, "star-unfold"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_dist_left() {
        let args: Vec<Expr> = ["a", "b", "c"].iter().map(|s| s.parse().unwrap()).collect();
        let (l, r) = EqAxiom::DistLeft.instantiate(&args);
        assert_eq!(l.to_string(), "a (b + c)");
        assert_eq!(r.to_string(), "a b + a c");
    }

    #[test]
    fn pattern_matching_infers_bindings() {
        let (lhs, _) = EqAxiom::MulAssoc.patterns();
        let e: Expr = "a (b c* + d) e".parse().unwrap();
        // e = Mul(Mul(a, ...), e)? Actually "a X e" parses as (a X) e — match
        // against p (q r) fails; try the matching subterm (a (X e)) instead.
        let re: Expr = "a ((b c* + d) e)".parse().unwrap();
        let mut bindings = Vec::new();
        assert!(lhs.matches(&re, &mut bindings));
        assert_eq!(bindings[0].as_ref().unwrap().to_string(), "a");
        assert_eq!(bindings[1].as_ref().unwrap().to_string(), "b c* + d");
        assert_eq!(bindings[2].as_ref().unwrap().to_string(), "e");
        let mut b2 = Vec::new();
        assert!(!lhs.matches(&e, &mut b2));
    }

    #[test]
    fn nonlinear_patterns_require_equal_bindings() {
        // ?0 + ?0 matches a + a but not a + b.
        let pat = Pat::add(Pat::v(0), Pat::v(0));
        let same: Expr = "a + a".parse().unwrap();
        let diff: Expr = "a + b".parse().unwrap();
        let mut bindings = Vec::new();
        assert!(pat.matches(&same, &mut bindings));
        let mut bindings = Vec::new();
        assert!(!pat.matches(&diff, &mut bindings));
    }

    #[test]
    fn star_unfold_instance() {
        let p: Expr = "m0 x".parse().unwrap();
        let (l, r) = LeAxiom::StarUnfold.instantiate(&[p]);
        assert_eq!(l.to_string(), "1 + m0 x (m0 x)*");
        assert_eq!(r.to_string(), "(m0 x)*");
    }

    #[test]
    fn every_axiom_is_a_theorem_of_the_power_series_model() {
        // Soundness smoke test: instantiate every equational axiom at random
        // expressions and confirm the decision procedure accepts it.
        use nka_syntax::{random_expr, ExprGenConfig, Symbol};
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        let config = ExprGenConfig::new(alphabet).with_target_size(4);
        let mut seed = 11;
        for ax in EqAxiom::ALL {
            let args: Vec<Expr> = (0..ax.arity())
                .map(|_| random_expr(&config, &mut seed))
                .collect();
            let (l, r) = ax.instantiate(&args);
            assert!(
                nka_wfa::decide_eq(&l, &r).unwrap(),
                "axiom {ax} failed at {l} = {r}"
            );
        }
    }
}
