//! Canonical forms for the semiring fragment of NKA.
//!
//! The free semiring over an alphabet is `N⟨Σ*⟩`: polynomials with natural
//! coefficients over noncommutative words. Treating every starred subterm
//! as an extra (recursively canonicalized) letter yields a canonical form
//! for NKA expressions **modulo the semiring axioms plus congruence** — the
//! decidable fragment behind the `BySemiring` proof rule: two expressions
//! have equal canonical forms iff they are provably equal using only
//! `add-assoc/comm/zero`, `mul-assoc/one/zero`, distributivity, and
//! congruence (including under `*`).
//!
//! This is the machine-checked analogue of the steps the paper labels
//! "(distributive-law)" in its derivations.

use nka_syntax::{Expr, ExprNode, Symbol};
use std::collections::BTreeMap;

/// A letter of a canonical word: an atom or an (already canonical) starred
/// polynomial.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CanonLetter {
    /// An alphabet symbol.
    Atom(Symbol),
    /// `q*` for a canonicalized `q`.
    Star(CanonPoly),
}

/// A canonical polynomial: a finite multiset of words with positive
/// multiplicities, i.e. an element of the free semiring.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct CanonPoly(BTreeMap<Vec<CanonLetter>, u64>);

impl CanonPoly {
    /// The zero polynomial.
    pub fn zero() -> CanonPoly {
        CanonPoly::default()
    }

    /// The unit polynomial (`1·ε`).
    pub fn one() -> CanonPoly {
        let mut m = BTreeMap::new();
        m.insert(Vec::new(), 1);
        CanonPoly(m)
    }

    /// A single-letter monomial.
    pub fn letter(l: CanonLetter) -> CanonPoly {
        let mut m = BTreeMap::new();
        m.insert(vec![l], 1);
        CanonPoly(m)
    }

    fn insert(&mut self, word: Vec<CanonLetter>, coeff: u64) {
        if coeff == 0 {
            return;
        }
        let entry = self.0.entry(word).or_insert(0);
        *entry = entry
            .checked_add(coeff)
            .expect("canonical-form coefficient overflow");
    }

    /// Sum of polynomials.
    pub fn add(&self, other: &CanonPoly) -> CanonPoly {
        let mut out = self.clone();
        for (w, &c) in &other.0 {
            out.insert(w.clone(), c);
        }
        out
    }

    /// Noncommutative product of polynomials.
    pub fn mul(&self, other: &CanonPoly) -> CanonPoly {
        let mut out = CanonPoly::zero();
        for (u, &cu) in &self.0 {
            for (v, &cv) in &other.0 {
                let mut w = u.clone();
                w.extend(v.iter().cloned());
                out.insert(
                    w,
                    cu.checked_mul(cv)
                        .expect("canonical-form coefficient overflow"),
                );
            }
        }
        out
    }

    /// Number of monomials.
    pub fn term_count(&self) -> usize {
        self.0.len()
    }

    /// Rebuilds an expression from the canonical form: a left-associated
    /// sum (in canonical monomial order) of products of letters, with the
    /// products associated to the right if `right_assoc` and to the left
    /// otherwise. The result is always in the same canonical class:
    /// `canon(p.to_expr(b)) == p`.
    ///
    /// The auto-prover uses both association variants as rewriting
    /// representatives, which lets plain syntactic matching reach redexes
    /// that are only exposed modulo associativity/distributivity.
    pub fn to_expr(&self, right_assoc: bool) -> Expr {
        let letter_expr = |l: &CanonLetter| match l {
            CanonLetter::Atom(s) => Expr::atom(*s),
            CanonLetter::Star(p) => p.to_expr(right_assoc).star(),
        };
        let mut terms = Vec::new();
        for (word, &coeff) in &self.0 {
            let factors: Vec<Expr> = word.iter().map(letter_expr).collect();
            let product = if factors.is_empty() {
                Expr::one()
            } else if right_assoc {
                let mut iter = factors.into_iter().rev();
                let last = iter.next().expect("non-empty factors");
                iter.fold(last, |acc, f| f.mul(&acc))
            } else {
                Expr::product(factors)
            };
            for _ in 0..coeff {
                terms.push(product);
            }
        }
        Expr::sum(terms)
    }
}

/// Computes the canonical form of an expression in the semiring-plus-
/// congruence fragment. Stars are opaque letters wrapping the canonical
/// form of their body (so congruence under `*` is captured).
///
/// # Examples
///
/// ```
/// use nka_core::semiring_nf::canon;
/// use nka_syntax::Expr;
/// let a: Expr = "(p + q) r".parse()?;
/// let b: Expr = "p r + q r".parse()?;
/// assert_eq!(canon(&a), canon(&b));
/// let c: Expr = "p r + r q".parse()?;
/// assert_ne!(canon(&a), canon(&c)); // multiplication is noncommutative
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
pub fn canon(e: &Expr) -> CanonPoly {
    match e.node() {
        ExprNode::Zero => CanonPoly::zero(),
        ExprNode::One => CanonPoly::one(),
        ExprNode::Atom(s) => CanonPoly::letter(CanonLetter::Atom(s)),
        ExprNode::Add(l, r) => canon(&l).add(&canon(&r)),
        ExprNode::Mul(l, r) => canon(&l).mul(&canon(&r)),
        ExprNode::Star(inner) => CanonPoly::letter(CanonLetter::Star(canon(&inner))),
    }
}

/// Whether `e = f` holds in the semiring-plus-congruence fragment.
pub fn semiring_equal(e: &Expr, f: &Expr) -> bool {
    canon(e) == canon(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(l: &str, r: &str) -> bool {
        semiring_equal(&l.parse().unwrap(), &r.parse().unwrap())
    }

    #[test]
    fn associativity_commutativity_units() {
        assert!(eq("a + (b + c)", "(c + a) + b"));
        assert!(eq("a (b c)", "(a b) c"));
        assert!(eq("a + 0", "a"));
        assert!(eq("1 a 1", "a"));
        assert!(eq("0 a + b 0", "0"));
    }

    #[test]
    fn distributivity_both_sides() {
        assert!(eq("a (b + c) d", "a b d + a c d"));
        assert!(eq("(a + b) (c + d)", "a c + a d + b c + b d"));
    }

    #[test]
    fn multiplicities_are_tracked() {
        assert!(eq("a + a", "a + a"));
        assert!(!eq("a + a", "a"));
        assert!(eq("(1 + 1) a", "a + a"));
    }

    #[test]
    fn congruence_under_star() {
        assert!(eq("(a (b + c))*", "(a b + a c)*"));
        assert!(!eq("(a b)*", "(b a)*"));
    }

    #[test]
    fn star_is_otherwise_opaque() {
        // 0* = 1 is a star law, NOT a semiring law — must not be equated.
        assert!(!eq("0*", "1"));
        assert!(!eq("a* a", "a a*"));
        assert!(!eq("1 + a a*", "a*"));
    }

    #[test]
    fn noncommutativity_of_product() {
        assert!(!eq("a b", "b a"));
    }

    #[test]
    fn fragment_is_sound_for_the_series_model() {
        use nka_syntax::{random_expr, ExprGenConfig, Symbol};
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        let config = ExprGenConfig::new(alphabet.clone()).with_target_size(7);
        let mut seed = 2024;
        for _ in 0..60 {
            let e = random_expr(&config, &mut seed);
            let f = random_expr(&config, &mut seed);
            if semiring_equal(&e, &f) {
                assert!(
                    nka_wfa::decide_eq(&e, &f).unwrap(),
                    "semiring NF equated {e} and {f}, but series differ"
                );
            }
        }
    }
}
