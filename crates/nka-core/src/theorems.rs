//! The derived theorems of Figure 2, as machine-checked proofs.
//!
//! Every function transcribes the corresponding derivation of Appendix C.1
//! of the paper into a [`Proof`] object; the proofs are re-checked from
//! scratch by the test suite and cross-validated against the decision
//! procedure. Figure 2a: [`fixed_point_right`], [`fixed_point_left`],
//! [`monotone_star`], [`product_star`], [`sliding`], [`denesting_left`],
//! [`denesting_right`], [`positivity`]. Figure 2b: [`unrolling`],
//! [`swap_star`], [`star_rewrite`].
//!
//! Theorems with hypotheses (the Horn clauses of Figure 2b) take the
//! hypothesis *proof* as an argument — pass [`Proof::Hyp`] to use a
//! hypothesis of an enclosing Horn clause (Corollary 4.3), or any proof of
//! the required judgment to chain lemmas.
//!
//! # Panics
//!
//! These builders construct fixed derivations whose steps cannot fail for
//! any instantiation (semiring steps are substitution-stable and all
//! rewrites use explicit paths); they would only panic on an internal bug,
//! which the test suite guards against.

use crate::axioms::LeAxiom;
use crate::builder::{EqChain, LeChain};
use crate::judgment::Judgment;
use crate::proof::Proof;
use nka_syntax::Expr;

fn one() -> Expr {
    Expr::one()
}

fn zero() -> Expr {
    Expr::zero()
}

/// `1 + p p* ≤ p*` — the star-unfolding axiom, as a proof.
pub fn star_unfold_le(p: &Expr) -> Proof {
    Proof::AxiomLe(LeAxiom::StarUnfold, vec![*p])
}

/// Figure 2a (fixed-point, right form): `1 + p p* = p*`.
pub fn fixed_point_right(p: &Expr) -> Proof {
    let ps = p.star();
    let unfold = one().add(&p.mul(&ps)); // 1 + p p*
    let le = star_unfold_le(p);
    // ≥ : p* ≤ 1 + p p* by star induction.
    let premise = LeChain::new(&one().add(&p.mul(&unfold)))
        .le_rw_at(&[1, 1], le.clone())
        .expect("fixed_point_right premise");
    let ind = Proof::StarIndLeft(Box::new(premise.into_proof())); // p* 1 ≤ 1 + p p*
    let ge = LeChain::new(&ps)
        .eq_step(Proof::BySemiring(ps, ps.mul(&one())))
        .expect("fixed_point_right unit")
        .le_step(ind)
        .expect("fixed_point_right induction");
    Proof::AntiSym(Box::new(le), Box::new(ge.into_proof()))
}

/// Figure 2a (fixed-point, left form): `1 + p* p = p*`.
pub fn fixed_point_left(p: &Expr) -> Proof {
    let ps = p.star();
    let lhs = one().add(&ps.mul(p)); // 1 + p* p

    // ≥ : p* ≤ 1 + p* p.
    // Premise: 1 + p (1 + p* p) = 1 + (1 + p p*) p → 1 + p* p.
    let premise_eq = EqChain::new(&one().add(&p.mul(&lhs)))
        .semiring(&one().add(&one().add(&p.mul(&ps)).mul(p)))
        .expect("fixed_point_left reshape")
        .rw_at(&[1, 0], fixed_point_right(p))
        .expect("fixed_point_left fp-right");
    let ind = Proof::StarIndLeft(Box::new(premise_eq.into_proof().as_le())); // p* 1 ≤ 1 + p* p
    let ge = LeChain::new(&ps)
        .eq_step(Proof::BySemiring(ps, ps.mul(&one())))
        .expect("fixed_point_left unit")
        .le_step(ind)
        .expect("fixed_point_left induction");

    // ≤ : first p* p ≤ p p* …
    let pps = p.mul(&ps);
    let swap_premise = LeChain::new(&p.add(&p.mul(&pps)))
        .semiring(&p.mul(&one().add(&pps)))
        .expect("fixed_point_left swap reshape")
        .eq_rw_at(&[1], fixed_point_right(p))
        .expect("fixed_point_left swap fp");
    // p* p ≤ p p*, then 1 + p* p ≤ 1 + p p* ≤ p*.
    let swap = Proof::StarIndLeft(Box::new(swap_premise.into_proof()));
    let le = LeChain::new(&lhs)
        .le_rw_at(&[1], swap)
        .expect("fixed_point_left mono")
        .le_step(star_unfold_le(p))
        .expect("fixed_point_left unfold");

    Proof::AntiSym(Box::new(le.into_proof()), Box::new(ge.into_proof()))
}

/// Figure 2a (monotone-star): from a proof of `p ≤ q`, conclude `p* ≤ q*`.
pub fn monotone_star(p: &Expr, q: &Expr, le_pq: Proof, hyps: &[Judgment]) -> Proof {
    let qs = q.star();
    let premise = LeChain::with_hyps(&one().add(&p.mul(&qs)), hyps)
        .le_rw_at(&[1, 0], le_pq)
        .expect("monotone_star mono")
        .le_step(star_unfold_le(q))
        .expect("monotone_star unfold");
    let ind = Proof::StarIndLeft(Box::new(premise.into_proof())); // p* 1 ≤ q*
    let ps = p.star();
    LeChain::with_hyps(&ps, hyps)
        .eq_step(Proof::BySemiring(ps, ps.mul(&one())))
        .expect("monotone_star unit")
        .le_step(ind)
        .expect("monotone_star induction")
        .into_proof()
}

/// Figure 2a (product-star): `1 + p (q p)* q = (p q)*`.
pub fn product_star(p: &Expr, q: &Expr) -> Proof {
    let qp = q.mul(p);
    let pq = p.mul(q);
    let lhs = one().add(&p.mul(&qp.star()).mul(q)); // 1 + (p (q p)*) q
    let rhs = pq.star();

    // ≥ : (p q)* ≤ 1 + p (q p)* q.
    // Premise: 1 + (p q)(1 + p (q p)* q) = 1 + p (1 + (q p)(q p)*) q → lhs.
    let reshaped = one().add(&p.mul(&one().add(&qp.mul(&qp.star()))).mul(q));
    let premise = EqChain::new(&one().add(&pq.mul(&lhs)))
        .semiring(&reshaped)
        .expect("product_star reshape")
        .rw_at(&[1, 0, 1], fixed_point_right(&qp))
        .expect("product_star fp");
    // premise judgment: 1 + (p q) lhs = lhs  ⇒ star induction (left).
    let ind = Proof::StarIndLeft(Box::new(premise.into_proof().as_le())); // (p q)* 1 ≤ lhs
    let ge = LeChain::new(&rhs)
        .eq_step(Proof::BySemiring(rhs, rhs.mul(&one())))
        .expect("product_star unit")
        .le_step(ind)
        .expect("product_star induction");

    // ≤ : first (q p)* q ≤ q (p q)* …
    let q_pqs = q.mul(&pq.star());
    let slide_premise = EqChain::new(&q.add(&qp.mul(&q_pqs)))
        .semiring(&q.mul(&one().add(&pq.mul(&pq.star()))))
        .expect("product_star slide reshape")
        .rw_at(&[1], fixed_point_right(&pq))
        .expect("product_star slide fp");
    // (q p)* q ≤ q (p q)*, then
    // 1 + p ((q p)* q) ≤ 1 + p (q (p q)*) = 1 + (p q)(p q)* ≤ (p q)*.
    let slide = Proof::StarIndLeft(Box::new(slide_premise.into_proof().as_le()));
    let le = LeChain::new(&lhs)
        .semiring(&one().add(&p.mul(&qp.star().mul(q))))
        .expect("product_star assoc")
        .le_rw_at(&[1, 1], slide)
        .expect("product_star mono")
        .semiring(&one().add(&pq.mul(&pq.star())))
        .expect("product_star regroup")
        .le_step(star_unfold_le(&pq))
        .expect("product_star unfold");

    Proof::AntiSym(Box::new(le.into_proof()), Box::new(ge.into_proof()))
}

/// Figure 2a (sliding): `(p q)* p = p (q p)*`.
pub fn sliding(p: &Expr, q: &Expr) -> Proof {
    let pq = p.mul(q);
    let qp = q.mul(p);
    let start = pq.star().mul(p);
    EqChain::new(&start)
        .rw_rev_at(&[0], product_star(p, q))
        .expect("sliding product-star")
        .semiring(&p.mul(&one().add(&qp.star().mul(&qp))))
        .expect("sliding reshape")
        .rw_at(&[1], fixed_point_left(&qp))
        .expect("sliding fp")
        .into_proof()
}

/// Figure 2a (denesting, left form): `(p + q)* = (p* q)* p*`.
pub fn denesting_left(p: &Expr, q: &Expr) -> Proof {
    let ps = p.star();
    let p_plus_q = p.add(q);
    let psq = ps.mul(q);
    let rhs = psq.star().mul(&ps); // (p* q)* p*
    let qps = q.mul(&ps);

    // ≤ : premise chain from C.1.
    // 1 + (p + q)((p* q)* p*)
    //   = 1 + p (p* q)* p* + q (p* q)* p*              (semiring)
    //   = 1 + p (p* (q p*)*) + q (p* (q p*)*)          (sliding ×2)
    //   = (1 + (q p*)(q p*)*) + (p p*)(q p*)*          (semiring)
    //   = (q p*)* + (p p*)(q p*)*                      (fixed-point)
    //   = (1 + p p*)(q p*)*                            (semiring)
    //   = p* (q p*)*                                   (fixed-point)
    //   = (p* q)* p*                                   (sliding, reversed)
    let slide = sliding(&ps, q); // (p* q)* p* = p* (q p*)*
    let step1 = one()
        .add(&p.mul(&psq.star().mul(&ps)))
        .add(&q.mul(&psq.star().mul(&ps)));
    let premise = EqChain::new(&one().add(&p_plus_q.mul(&rhs)))
        .semiring(&step1)
        .expect("denesting reshape 1")
        .rw_at(&[0, 1, 1], slide.clone())
        .expect("denesting slide 1")
        .rw_at(&[1, 1], slide.clone())
        .expect("denesting slide 2")
        .semiring(
            &one()
                .add(&qps.mul(&qps.star()))
                .add(&p.mul(&ps).mul(&qps.star())),
        )
        .expect("denesting reshape 2")
        .rw_at(&[0], fixed_point_right(&qps))
        .expect("denesting fp 1")
        .semiring(&one().add(&p.mul(&ps)).mul(&qps.star()))
        .expect("denesting reshape 3")
        .rw_at(&[0], fixed_point_right(p))
        .expect("denesting fp 2")
        .rw_rev_at(&[], slide)
        .expect("denesting slide back");
    let ind = Proof::StarIndLeft(Box::new(premise.into_proof().as_le())); // (p+q)* 1 ≤ rhs
    let lhs_star = p_plus_q.star();
    let le = LeChain::new(&lhs_star)
        .eq_step(Proof::BySemiring(lhs_star, lhs_star.mul(&one())))
        .expect("denesting unit")
        .le_step(ind)
        .expect("denesting induction");

    // ≥ : two nested star inductions (C.1).
    // Inner: (1 + q (p+q)*) + p (p+q)* = (p+q)*, so p* (1 + q (p+q)*) ≤ (p+q)*.
    let inner_q = one().add(&q.mul(&p_plus_q.star()));
    let inner_premise = EqChain::new(&inner_q.add(&p.mul(&p_plus_q.star())))
        .semiring(&one().add(&p_plus_q.mul(&p_plus_q.star())))
        .expect("denesting ge reshape")
        .rw_at(&[], fixed_point_right(&p_plus_q))
        .expect("denesting ge fp");
    let inner = Proof::StarIndLeft(Box::new(inner_premise.into_proof().as_le()));
    // Outer premise: p* + (p* q)(p+q)* = p* (1 + q (p+q)*) ≤ (p+q)*,
    // so (p* q)* p* ≤ (p+q)*.
    let outer_premise = LeChain::new(&ps.add(&psq.mul(&p_plus_q.star())))
        .semiring(&ps.mul(&inner_q))
        .expect("denesting outer reshape")
        .le_step(inner)
        .expect("denesting outer step");
    let ge = Proof::StarIndLeft(Box::new(outer_premise.into_proof()));

    Proof::AntiSym(Box::new(le.into_proof()), Box::new(ge))
}

/// Figure 2a (denesting, right form): `(p + q)* = p* (q p*)*`.
pub fn denesting_right(p: &Expr, q: &Expr) -> Proof {
    let ps = p.star();
    EqChain::new(&p.add(q).star())
        .rw_at(&[], denesting_left(p, q))
        .expect("denesting_right left form")
        .rw_at(&[], sliding(&ps, q))
        .expect("denesting_right slide")
        .into_proof()
}

/// Figure 2a (positivity): `0 ≤ p`.
pub fn positivity(p: &Expr) -> Proof {
    // Premise: 0 + 1 p ≤ p.
    let premise = LeChain::new(&zero().add(&one().mul(p)))
        .semiring(p)
        .expect("positivity reshape");
    let ind = Proof::StarIndLeft(Box::new(premise.into_proof())); // 1* 0 ≤ p
    LeChain::new(&zero())
        .eq_step(Proof::BySemiring(zero(), one().star().mul(&zero())))
        .expect("positivity zero")
        .le_step(ind)
        .expect("positivity induction")
        .into_proof()
}

/// Figure 2b (unrolling): `(p p)* (1 + p) = p*`.
pub fn unrolling(p: &Expr) -> Proof {
    let pp = p.mul(p);
    let pps = pp.star();
    let one_p = one().add(p);
    let lhs = pps.mul(&one_p); // (p p)* (1 + p)
    let ps = p.star();

    // ≤ : premise (1 + p) + (p p) p* ≤ p*.
    let premise_eq = EqChain::new(&one_p.add(&pp.mul(&ps)))
        .semiring(&one().add(&p.mul(&one().add(&p.mul(&ps)))))
        .expect("unrolling reshape 1")
        .rw_at(&[1, 1], fixed_point_right(p))
        .expect("unrolling fp 1")
        .rw_at(&[], fixed_point_right(p))
        .expect("unrolling fp 2");
    let le = Proof::StarIndLeft(Box::new(premise_eq.into_proof().as_le())); // (p p)* (1 + p) ≤ p*

    // ≥ : premise 1 + ((p p)* (1 + p)) p = (p p)* (1 + p).
    let premise_eq = EqChain::new(&one().add(&lhs.mul(p)))
        .semiring(&pps.mul(p).add(&one().add(&pps.mul(&pp))))
        .expect("unrolling reshape 2")
        .rw_at(&[1], fixed_point_left(&pp))
        .expect("unrolling fp 3")
        .semiring(&lhs)
        .expect("unrolling reshape 3");
    let ind = Proof::StarIndRight(Box::new(premise_eq.into_proof().as_le())); // 1 p* ≤ lhs
    let ge = LeChain::new(&ps)
        .eq_step(Proof::BySemiring(ps, one().mul(&ps)))
        .expect("unrolling unit")
        .le_step(ind)
        .expect("unrolling induction");

    Proof::AntiSym(Box::new(le), Box::new(ge.into_proof()))
}

/// Figure 2b (swap-star): from a proof of `p q = q p`, conclude
/// `p* q = q p*`.
pub fn swap_star(p: &Expr, q: &Expr, comm: Proof, hyps: &[Judgment]) -> Proof {
    let ps = p.star();
    let psq = ps.mul(q);
    let qps = q.mul(&ps);

    // q p* ≤ p* q  via star-ind-right.
    let premise1 = EqChain::with_hyps(&q.add(&psq.mul(p)), hyps)
        .semiring(&q.add(&ps.mul(&qp_of(q, p))))
        .expect("swap_star reshape 1")
        .rw_rev_at(&[1, 1], comm.clone())
        .expect("swap_star comm 1")
        .semiring(&one().add(&ps.mul(p)).mul(q))
        .expect("swap_star reshape 2")
        .rw_at(&[0], fixed_point_left(p))
        .expect("swap_star fp 1");
    let dir1 = Proof::StarIndRight(Box::new(premise1.into_proof().as_le())); // q p* ≤ p* q

    // p* q ≤ q p*  via star-ind-left.
    let premise2 = EqChain::with_hyps(&q.add(&p.mul(&qps)), hyps)
        .semiring(&q.add(&p.mul(q).mul(&ps)))
        .expect("swap_star reshape 3")
        .rw_at(&[1, 0], comm)
        .expect("swap_star comm 2")
        .semiring(&q.mul(&one().add(&p.mul(&ps))))
        .expect("swap_star reshape 4")
        .rw_at(&[1], fixed_point_right(p))
        .expect("swap_star fp 2");
    let dir2 = Proof::StarIndLeft(Box::new(premise2.into_proof().as_le())); // p* q ≤ q p*

    Proof::AntiSym(Box::new(dir2), Box::new(dir1))
}

fn qp_of(q: &Expr, p: &Expr) -> Expr {
    q.mul(p)
}

/// Figure 2b (star-rewrite): from a proof of `p q = r p`, conclude
/// `p q* = r* p`.
pub fn star_rewrite(p: &Expr, q: &Expr, r: &Expr, hyp: Proof, hyps: &[Judgment]) -> Proof {
    let qs = q.star();
    let rs = r.star();
    let pqs = p.mul(&qs);
    let rsp = rs.mul(p);

    // p q* ≤ r* p  via star-ind-right.
    let premise1 = EqChain::with_hyps(&p.add(&rsp.mul(q)), hyps)
        .semiring(&p.add(&rs.mul(&p.mul(q))))
        .expect("star_rewrite reshape 1")
        .rw_at(&[1, 1], hyp.clone())
        .expect("star_rewrite hyp 1")
        .semiring(&one().add(&rs.mul(r)).mul(p))
        .expect("star_rewrite reshape 2")
        .rw_at(&[0], fixed_point_left(r))
        .expect("star_rewrite fp 1");
    let dir1 = Proof::StarIndRight(Box::new(premise1.into_proof().as_le())); // p q* ≤ r* p

    // r* p ≤ p q*  via star-ind-left.
    let premise2 = EqChain::with_hyps(&p.add(&r.mul(&pqs)), hyps)
        .semiring(&p.add(&r.mul(p).mul(&qs)))
        .expect("star_rewrite reshape 3")
        .rw_rev_at(&[1, 0], hyp)
        .expect("star_rewrite hyp 2")
        .semiring(&p.mul(&one().add(&q.mul(&qs))))
        .expect("star_rewrite reshape 4")
        .rw_at(&[1], fixed_point_right(q))
        .expect("star_rewrite fp 2");
    let dir2 = Proof::StarIndLeft(Box::new(premise2.into_proof().as_le())); // r* p ≤ p q*

    Proof::AntiSym(Box::new(dir1), Box::new(dir2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    fn check_closed_theorem(proof: &Proof, expected: &str) {
        let j = proof.check_closed().unwrap_or_else(|err| {
            panic!("proof failed to check: {err}");
        });
        assert_eq!(j.to_string(), expected);
        // Cross-validate equations against the decision procedure.
        if let Judgment::Eq(l, r) = &j {
            assert!(
                nka_wfa::decide_eq(l, r).unwrap(),
                "theorem not confirmed by the decision procedure: {j}"
            );
        }
    }

    #[test]
    fn fixed_point_right_checks() {
        check_closed_theorem(&fixed_point_right(&e("p")), "1 + p p* = p*");
        check_closed_theorem(
            &fixed_point_right(&e("m0 x + y")),
            "1 + (m0 x + y) (m0 x + y)* = (m0 x + y)*",
        );
    }

    #[test]
    fn fixed_point_left_checks() {
        check_closed_theorem(&fixed_point_left(&e("p")), "1 + p* p = p*");
    }

    #[test]
    fn monotone_star_checks() {
        // Use the hypothesis p ≤ q.
        let hyps = [Judgment::le(&e("p"), &e("q"))];
        let proof = monotone_star(&e("p"), &e("q"), Proof::Hyp(0), &hyps);
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.to_string(), "p* ≤ q*");
    }

    #[test]
    fn product_star_checks() {
        check_closed_theorem(&product_star(&e("p"), &e("q")), "1 + p (q p)* q = (p q)*");
    }

    #[test]
    fn sliding_checks() {
        check_closed_theorem(&sliding(&e("p"), &e("q")), "(p q)* p = p (q p)*");
        check_closed_theorem(
            &sliding(&e("a b"), &e("c")),
            "(a b c)* (a b) = a b (c (a b))*",
        );
    }

    #[test]
    fn denesting_checks() {
        check_closed_theorem(&denesting_left(&e("p"), &e("q")), "(p + q)* = (p* q)* p*");
        check_closed_theorem(&denesting_right(&e("p"), &e("q")), "(p + q)* = p* (q p*)*");
    }

    #[test]
    fn positivity_checks() {
        let proof = positivity(&e("p q*"));
        assert_eq!(proof.check_closed().unwrap().to_string(), "0 ≤ p q*");
    }

    #[test]
    fn unrolling_checks() {
        check_closed_theorem(&unrolling(&e("p")), "(p p)* (1 + p) = p*");
    }

    #[test]
    fn swap_star_checks() {
        let hyps = [Judgment::eq(&e("p q"), &e("q p"))];
        let proof = swap_star(&e("p"), &e("q"), Proof::Hyp(0), &hyps);
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.to_string(), "p* q = q p*");
    }

    #[test]
    fn star_rewrite_checks() {
        let hyps = [Judgment::eq(&e("p q"), &e("r p"))];
        let proof = star_rewrite(&e("p"), &e("q"), &e("r"), Proof::Hyp(0), &hyps);
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.to_string(), "p q* = r* p");
    }

    #[test]
    fn theorems_instantiate_at_compound_expressions() {
        // Substitution-stability: instantiate at bigger terms and recheck.
        let p = e("(a + b) c*");
        let q = e("d");
        check_closed_theorem(
            &sliding(&p, &q),
            "((a + b) c* d)* ((a + b) c*) = (a + b) c* (d ((a + b) c*))*",
        );
        fixed_point_left(&p).check_closed().unwrap();
        product_star(&p, &q).check_closed().unwrap();
        denesting_left(&q, &p).check_closed().unwrap();
        unrolling(&p).check_closed().unwrap();
    }

    #[test]
    fn proofs_have_reasonable_size() {
        // Not a correctness property, but a regression guard: the sliding
        // proof should stay well under a thousand rule applications.
        assert!(sliding(&e("p"), &e("q")).size() < 1000);
    }
}
