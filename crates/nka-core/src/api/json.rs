//! A minimal JSON value: parser, printer, and accessors.
//!
//! The build environment is offline, so the wire layer cannot pull in
//! `serde`; this hand-rolled implementation covers exactly the JSON
//! subset the [`crate::api::wire`] protocol uses — objects, arrays,
//! strings, integers, booleans, and `null`. Printing always produces a
//! single line (no pretty-printing), which is what a JSONL stream wants.
//!
//! Numbers are restricted to `i64` integers: every numeric field in the
//! protocol (truncation lengths, proof sizes, counters, microseconds) is
//! an integer, and refusing floats keeps round-tripping exact.
//!
//! # Examples
//!
//! ```
//! use nka_core::api::json::Json;
//!
//! let v = Json::parse(r#"{"op":"series","expr":"a*","max_len":4}"#)?;
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("series"));
//! assert_eq!(v.get("max_len").and_then(Json::as_i64), Some(4));
//! assert_eq!(Json::parse(&v.to_string())?, v);
//! # Ok::<(), String>(())
//! ```

use std::fmt;

/// A JSON value (integer-only numbers; see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol never uses fractional numbers).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when printing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on malformed
    /// input, a non-integer number, or trailing content.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `&str` inside [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The slice inside [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_int(bytes, pos),
        Some(&b) => Err(format!(
            "unexpected character {:?} at byte {}",
            b as char, *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!(
            "non-integer number at byte {start} (the protocol is integer-only)"
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                        // Surrogate pairs are not needed by this protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("unescaped control byte 0x{b:02x} in string"))
            }
            Some(_) => {
                // Copy one UTF-8 character verbatim.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                let ch = s.chars().next().expect("non-empty remainder");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Writes `s` as a JSON string literal (quotes included) into `out`.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.write(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"op":"prove","hyps":["m1 m1 = m1","m1 m0 = 0"],"n":-3,"ok":true,"x":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("hyps").and_then(Json::as_array).unwrap().len(), 2);
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(-3));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a \"b\"\n\t\\ ∞ ε".to_owned());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        let parsed = Json::parse(r#""A∞""#).unwrap();
        assert_eq!(parsed.as_str(), Some("A∞"));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{} junk").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).unwrap().len(), 2);
    }
}
