//! The line-oriented wire format of `nka batch` and `nka serve`.
//!
//! One request per line, one response line per request. Requests are
//! either a JSON object (JSONL) or the bare shorthand `e = f`:
//!
//! ```text
//! {"op":"nka_eq","lhs":"(p q)* p","rhs":"p (q p)*"}
//! {"op":"ka_eq","lhs":"p + p","rhs":"p"}
//! {"op":"series","expr":"(a + a)*","max_len":4}
//! {"op":"prove","lhs":"m1 (m0 p + m1)","rhs":"m1","hyps":["m1 m1 = m1","m1 m0 = 0"]}
//! (p q)* p = p (q p)*
//! # comments and blank lines are skipped
//! ```
//!
//! The `op` names match [`QueryKind::op`]. `max_len` defaults to
//! [`DEFAULT_SERIES_MAX_LEN`]; `hyps` defaults to empty.
//!
//! # Forward compatibility
//!
//! Request keys are an *allowlist*: the keys of the chosen `op`, plus
//! every key this protocol version may emit on a response line (so any
//! *response* line is a valid *request* line for the same query — the
//! JSONL stream round-trips, `decode_request(encode_response(q, …)) ==
//! q`). Any other top-level key answers a structured `unsupported
//! field` error instead of being silently ignored — a client using a
//! newer field learns immediately rather than getting a silently
//! different query. Response lines carry the protocol version as
//! `"v":` [`WIRE_VERSION`]; clients should accept unknown *response*
//! keys (additions bump nothing) and treat a `v` greater than what
//! they know as "newer server, same core fields".
//!
//! Responses repeat the query fields and add `verdict` (a
//! [`Verdict::name`]), verdict-specific payload (`proof_size`,
//! `holds_by_decision`, `terms`, `detail`), the term-size accounting
//! `expr_nodes`/`expr_subterms` (tree nodes vs distinct interned
//! subterms — see `Query::term_stats`), the engine-counter delta under
//! `stats`, and wall-clock `micros`. Words in `terms` are
//! space-separated symbol names with `""` for ε; coefficients are
//! decimal strings or `"∞"` (strings, so arbitrary-precision values
//! survive).

use super::json::Json;
use super::{
    ApiError, Query, Response, Verdict, DEFAULT_OPTIMIZE_BEAM, DEFAULT_OPTIMIZE_MAX_STEPS,
    DEFAULT_SERIES_MAX_LEN,
};
#[cfg(doc)]
use super::{QueryKind, Session};
use crate::serve::stats::decider_stats_json;
use nka_syntax::Word;

/// The wire protocol version, emitted as `"v"` on every response line
/// (and on the `--stats --json` object). Bumped only for breaking
/// changes — additive response keys do not bump it.
pub const WIRE_VERSION: i64 = 1;

/// Keys that may appear on a response line beyond the query's own
/// fields. They are accepted (and ignored) on *request* lines so that
/// response lines reparse as their originating request; anything
/// outside this list and the op's own keys is an `unsupported field`
/// error.
const RESPONSE_ONLY_KEYS: &[&str] = &[
    "v",
    "verdict",
    "proof_size",
    "holds_by_decision",
    "terms",
    "enc_p",
    "enc_q",
    "encoded",
    "findings",
    "optimized",
    "steps",
    "fixpoint",
    "note",
    "certificate",
    "detail",
    "expr_nodes",
    "expr_subterms",
    "stats",
    "micros",
    "error",
    "field",
    "span",
];

/// Golden-corpus annotation keys (`tests/data/*.jsonl`): expected
/// verdicts riding along on request lines for the replay harnesses.
/// Accepted (and ignored) on any op so annotated corpora stay valid
/// request streams.
const ANNOTATION_KEYS: &[&str] = &[
    "expect",
    "expect_passes",
    "expect_warnings",
    "expect_steps",
    "expect_final_hash",
];

/// The allowlisted request keys of each op (always including `"op"`
/// itself).
fn request_keys(op: &str) -> &'static [&'static str] {
    match op {
        "nka_eq" | "ka_eq" => &["op", "lhs", "rhs"],
        "series" => &["op", "expr", "max_len"],
        "prog_eq" => &["op", "p", "q"],
        "hoare" => &["op", "pre", "prog", "post"],
        "analyze" => &["op", "prog", "passes"],
        "optimize" => &["op", "prog", "rules", "max_steps", "beam"],
        "prove" => &["op", "lhs", "rhs", "hyps"],
        _ => &["op"],
    }
}

/// Enforces the forward-compat policy (see the [module docs](self)):
/// every top-level key must be either a request key of `op` or a
/// response-only key.
fn check_top_level_keys(value: &Json, op: &str) -> Result<(), ApiError> {
    let Json::Obj(fields) = value else {
        return Ok(());
    };
    let allowed = request_keys(op);
    for (key, _) in fields {
        if !allowed.contains(&key.as_str())
            && !RESPONSE_ONLY_KEYS.contains(&key.as_str())
            && !ANNOTATION_KEYS.contains(&key.as_str())
        {
            return Err(ApiError::Malformed(format!(
                "unsupported field {key:?} for op {op:?} (wire protocol v{WIRE_VERSION} accepts: \
                 {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Decodes one request line. `Ok(None)` means the line is skippable —
/// blank or a `#` comment.
///
/// # Errors
///
/// [`ApiError::Malformed`] for bad JSON / unknown `op` / missing keys,
/// [`ApiError::Parse`] (span-bearing) for an unparsable expression.
pub fn decode_request(line: &str) -> Result<Option<Query>, ApiError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    if !line.starts_with('{') {
        // Bare `e = f` shorthand for an NKA equality query.
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(ApiError::Malformed(format!(
                "expected a JSON object or 'e = f', got {line:?}"
            )));
        };
        return Query::nka_eq(lhs.trim(), rhs.trim()).map(Some);
    }
    let value = Json::parse(line).map_err(|msg| ApiError::Malformed(format!("bad JSON: {msg}")))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::Malformed("missing string key \"op\"".to_owned()))?;
    check_top_level_keys(&value, op)?;
    let query = match op {
        "nka_eq" => Query::nka_eq(str_key(&value, "lhs")?, str_key(&value, "rhs")?)?,
        "ka_eq" => Query::ka_eq(str_key(&value, "lhs")?, str_key(&value, "rhs")?)?,
        "series" => {
            let max_len = match value.get("max_len") {
                None => DEFAULT_SERIES_MAX_LEN,
                Some(v) => usize::try_from(v.as_i64().ok_or_else(|| {
                    ApiError::Malformed("\"max_len\" must be an integer".to_owned())
                })?)
                .map_err(|_| ApiError::Malformed("\"max_len\" must be ≥ 0".to_owned()))?,
            };
            Query::series(str_key(&value, "expr")?, max_len)?
        }
        "prog_eq" => Query::prog_eq(str_key(&value, "p")?, str_key(&value, "q")?)?,
        "hoare" => Query::hoare(
            str_key(&value, "pre")?,
            str_key(&value, "prog")?,
            str_key(&value, "post")?,
        )?,
        "analyze" => {
            let passes: Vec<&str> = match value.get("passes") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| ApiError::Malformed("\"passes\" must be an array".to_owned()))?
                    .iter()
                    .map(|p| {
                        p.as_str().ok_or_else(|| {
                            ApiError::Malformed("\"passes\" entries must be strings".to_owned())
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            Query::analyze(str_key(&value, "prog")?, &passes)?
        }
        "optimize" => {
            let rules: Vec<&str> = match value.get("rules") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| ApiError::Malformed("\"rules\" must be an array".to_owned()))?
                    .iter()
                    .map(|r| {
                        r.as_str().ok_or_else(|| {
                            ApiError::Malformed("\"rules\" entries must be strings".to_owned())
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            let int_key = |key: &str, default: usize| -> Result<usize, ApiError> {
                match value.get(key) {
                    None => Ok(default),
                    Some(v) => usize::try_from(v.as_i64().ok_or_else(|| {
                        ApiError::Malformed(format!("{key:?} must be an integer"))
                    })?)
                    .map_err(|_| ApiError::Malformed(format!("{key:?} must be ≥ 0"))),
                }
            };
            let max_steps = int_key("max_steps", DEFAULT_OPTIMIZE_MAX_STEPS)?;
            let beam = int_key("beam", DEFAULT_OPTIMIZE_BEAM)?;
            Query::optimize(str_key(&value, "prog")?, &rules, max_steps, beam)?
        }
        "prove" => {
            let hyps: Vec<&str> = match value.get("hyps") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| ApiError::Malformed("\"hyps\" must be an array".to_owned()))?
                    .iter()
                    .map(|h| {
                        h.as_str().ok_or_else(|| {
                            ApiError::Malformed("\"hyps\" entries must be strings".to_owned())
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            Query::prove(str_key(&value, "lhs")?, str_key(&value, "rhs")?, &hyps)?
        }
        other => {
            return Err(ApiError::Malformed(format!(
                "unknown op {other:?} (expected nka_eq, ka_eq, series, prove, prog_eq, hoare, \
                 analyze, or optimize)"
            )))
        }
    };
    Ok(Some(query))
}

fn str_key<'a>(value: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::Malformed(format!("missing string key {key:?}")))
}

/// The query's own fields, as they appear in both request and response
/// lines.
fn query_fields(query: &Query) -> Vec<(String, Json)> {
    let mut fields = vec![("op".to_owned(), Json::Str(query.kind().op().to_owned()))];
    match query {
        Query::NkaEq { lhs, rhs } | Query::KaEq { lhs, rhs } => {
            fields.push(("lhs".to_owned(), Json::Str(lhs.to_string())));
            fields.push(("rhs".to_owned(), Json::Str(rhs.to_string())));
        }
        Query::Series { expr, max_len } => {
            fields.push(("expr".to_owned(), Json::Str(expr.to_string())));
            fields.push((
                "max_len".to_owned(),
                Json::Int(i64::try_from(*max_len).unwrap_or(i64::MAX)),
            ));
        }
        Query::Prove { lhs, rhs, hyps } => {
            fields.push(("lhs".to_owned(), Json::Str(lhs.to_string())));
            fields.push(("rhs".to_owned(), Json::Str(rhs.to_string())));
            fields.push((
                "hyps".to_owned(),
                Json::Arr(
                    hyps.iter()
                        .map(|(l, r)| Json::Str(format!("{l} = {r}")))
                        .collect(),
                ),
            ));
        }
        Query::ProgEq { p, q } => {
            fields.push(("p".to_owned(), Json::Str(p.source().to_owned())));
            fields.push(("q".to_owned(), Json::Str(q.source().to_owned())));
        }
        Query::Hoare { pre, prog, post } => {
            fields.push(("pre".to_owned(), Json::Str(pre.source().to_owned())));
            fields.push(("prog".to_owned(), Json::Str(prog.source().to_owned())));
            fields.push(("post".to_owned(), Json::Str(post.source().to_owned())));
        }
        Query::Analyze { prog, passes } => {
            fields.push(("prog".to_owned(), Json::Str(prog.source().to_owned())));
            fields.push((
                "passes".to_owned(),
                Json::Arr(passes.iter().map(|p| Json::Str(p.clone())).collect()),
            ));
        }
        Query::Optimize {
            prog,
            rules,
            max_steps,
            beam,
        } => {
            fields.push(("prog".to_owned(), Json::Str(prog.source().to_owned())));
            fields.push((
                "rules".to_owned(),
                Json::Arr(rules.iter().map(|r| Json::Str(r.clone())).collect()),
            ));
            fields.push((
                "max_steps".to_owned(),
                Json::Int(i64::try_from(*max_steps).unwrap_or(i64::MAX)),
            ));
            fields.push((
                "beam".to_owned(),
                Json::Int(i64::try_from(*beam).unwrap_or(i64::MAX)),
            ));
        }
    }
    fields
}

/// Encodes a query as one JSONL request line (no trailing newline).
/// [`decode_request`] inverts this exactly: the pretty-printer is
/// precedence-aware, so expressions reparse to equal [`Query`] values.
#[must_use]
pub fn encode_request(query: &Query) -> String {
    Json::Obj(query_fields(query)).to_string()
}

/// One analysis finding as a JSON object: `pass`, `severity`,
/// `span` (byte pair), `message`, and — Tier B only — the replayable
/// `certificate` (`p`/`q`/`expect`/`rule`/`stats`); decoding
/// `{"op":"prog_eq","p":cert.p,"q":cert.q}` replays it.
fn finding_json(f: &nka_qprog::Finding) -> Json {
    let mut fields = vec![
        ("pass".to_owned(), Json::Str(f.pass.to_owned())),
        (
            "severity".to_owned(),
            Json::Str(f.severity.name().to_owned()),
        ),
        (
            "span".to_owned(),
            Json::Arr(vec![
                Json::Int(i64::try_from(f.span.0).unwrap_or(i64::MAX)),
                Json::Int(i64::try_from(f.span.1).unwrap_or(i64::MAX)),
            ]),
        ),
        ("message".to_owned(), Json::Str(f.message.clone())),
    ];
    if let Some(cert) = &f.certificate {
        fields.push(("certificate".to_owned(), certificate_json(cert)));
    }
    Json::Obj(fields)
}

/// One replayable certificate as a JSON object
/// (`p`/`q`/`expect`/`rule`/`stats`) — shared between analysis
/// findings and the optimizer's final verdict; decoding
/// `{"op":"prog_eq","p":cert.p,"q":cert.q}` replays it.
fn certificate_json(cert: &nka_qprog::Certificate) -> Json {
    Json::Obj(vec![
        ("p".to_owned(), Json::Str(cert.p.clone())),
        ("q".to_owned(), Json::Str(cert.q.clone())),
        ("expect".to_owned(), Json::Str(cert.expect.to_owned())),
        (
            "rule".to_owned(),
            match cert.rule {
                Some(rule) => Json::Str(rule.to_owned()),
                None => Json::Null,
            },
        ),
        (
            "stats".to_owned(),
            Json::Obj(vec![
                (
                    "starfree_hits".to_owned(),
                    Json::Int(i64::try_from(cert.stats.starfree_hits).unwrap_or(i64::MAX)),
                ),
                (
                    "prefix_hits".to_owned(),
                    Json::Int(i64::try_from(cert.stats.prefix_hits).unwrap_or(i64::MAX)),
                ),
                (
                    "fastpath_fallbacks".to_owned(),
                    Json::Int(i64::try_from(cert.stats.fastpath_fallbacks).unwrap_or(i64::MAX)),
                ),
            ]),
        ),
    ])
}

fn word_string(word: &Word) -> String {
    word.symbols()
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Encodes one response as a JSONL line (no trailing newline). The
/// line repeats the query fields, so it is itself decodable as the
/// originating request — see the [module docs](self).
#[must_use]
pub fn encode_response(query: &Query, resp: &Response) -> String {
    let mut fields = vec![("v".to_owned(), Json::Int(WIRE_VERSION))];
    fields.extend(query_fields(query));
    fields.push((
        "verdict".to_owned(),
        Json::Str(resp.verdict.name().to_owned()),
    ));
    match &resp.verdict {
        Verdict::Holds | Verdict::Refuted => {}
        Verdict::Proved { proof_size } => {
            fields.push((
                "proof_size".to_owned(),
                Json::Int(i64::try_from(*proof_size).unwrap_or(i64::MAX)),
            ));
        }
        Verdict::Exhausted { holds_by_decision } => {
            fields.push((
                "holds_by_decision".to_owned(),
                match holds_by_decision {
                    Some(b) => Json::Bool(*b),
                    None => Json::Null,
                },
            ));
        }
        Verdict::Series { terms, .. } => {
            fields.push((
                "terms".to_owned(),
                Json::Arr(
                    terms
                        .iter()
                        .map(|(w, c)| {
                            Json::Obj(vec![
                                ("word".to_owned(), Json::Str(word_string(w))),
                                ("coeff".to_owned(), Json::Str(c.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Verdict::ProgEq { enc_p, enc_q, .. } => {
            // `verdict` already says holds/refuted; the payload is the
            // shared-setting encodings the decision was made on.
            fields.push(("enc_p".to_owned(), Json::Str(enc_p.clone())));
            fields.push(("enc_q".to_owned(), Json::Str(enc_q.clone())));
        }
        Verdict::Hoare { encoded, .. } => {
            fields.push(("encoded".to_owned(), Json::Str(encoded.clone())));
        }
        Verdict::Analysis { findings } => {
            fields.push((
                "findings".to_owned(),
                Json::Arr(findings.iter().map(finding_json).collect()),
            ));
        }
        Verdict::Optimized {
            optimized,
            steps,
            certificate,
            fixpoint,
            note,
        } => {
            fields.push(("optimized".to_owned(), Json::Str(optimized.clone())));
            fields.push((
                "steps".to_owned(),
                Json::Arr(
                    steps
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("rule".to_owned(), Json::Str(s.rule.to_owned())),
                                (
                                    "span".to_owned(),
                                    Json::Arr(vec![
                                        Json::Int(i64::try_from(s.span.0).unwrap_or(i64::MAX)),
                                        Json::Int(i64::try_from(s.span.1).unwrap_or(i64::MAX)),
                                    ]),
                                ),
                                ("note".to_owned(), Json::Str(s.note.clone())),
                                ("citation".to_owned(), Json::Str(s.citation().to_owned())),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push(("fixpoint".to_owned(), Json::Bool(*fixpoint)));
            if let Some(note) = note {
                fields.push(("note".to_owned(), Json::Str(note.clone())));
            }
            fields.push(("certificate".to_owned(), certificate_json(certificate)));
        }
        Verdict::BudgetExhausted { detail } => {
            fields.push(("detail".to_owned(), Json::Str(detail.clone())));
        }
    }
    fields.push((
        "expr_nodes".to_owned(),
        Json::Int(i64::try_from(resp.expr_nodes).unwrap_or(i64::MAX)),
    ));
    fields.push((
        "expr_subterms".to_owned(),
        Json::Int(i64::try_from(resp.expr_subterms).unwrap_or(i64::MAX)),
    ));
    fields.push(("stats".to_owned(), decider_stats_json(&resp.stats_delta)));
    fields.push((
        "micros".to_owned(),
        Json::Int(i64::try_from(resp.elapsed.as_micros()).unwrap_or(i64::MAX)),
    ));
    Json::Obj(fields).to_string()
}

/// Encodes a request-level failure as a JSONL line: `verdict` is
/// `"error"` and `error` holds the rendered message (single-line; the
/// caret rendering stays on the human surface).
#[must_use]
pub fn encode_error(err: &ApiError) -> String {
    let mut fields = vec![
        ("v".to_owned(), Json::Int(WIRE_VERSION)),
        ("verdict".to_owned(), Json::Str("error".to_owned())),
        ("error".to_owned(), Json::Str(err.to_string())),
    ];
    let field = match err {
        ApiError::Parse { field, .. } | ApiError::ParseProgram { field, .. } => Some(*field),
        ApiError::Malformed(_) => None,
    };
    if let (Some(field), Some((start, end))) = (field, err.span()) {
        fields.push(("field".to_owned(), Json::Str(field.to_owned())));
        fields.push((
            "span".to_owned(),
            Json::Arr(vec![
                Json::Int(i64::try_from(start).unwrap_or(i64::MAX)),
                Json::Int(i64::try_from(end).unwrap_or(i64::MAX)),
            ]),
        ));
    }
    Json::Obj(fields).to_string()
}

/// The comparison-stable projection of a response line: for JSON lines,
/// the object with the volatile `stats` (engine-counter delta — cache
/// hits depend on what ran before) and `micros` (wall clock) fields
/// removed, re-serialized; text lines (and unparsable input) pass
/// through unchanged, since the text surface carries no volatile
/// fields.
///
/// Two responses to the same query are semantically identical iff their
/// projections are byte-identical — this is what `nka-loadgen` and the
/// e2e socket tests diff, so concurrent socket serving can be held to
/// sequential `batch` output exactly.
#[must_use]
pub fn stable_response_projection(line: &str) -> String {
    let trimmed = line.trim_end();
    if !trimmed.starts_with('{') {
        return trimmed.to_owned();
    }
    let Ok(Json::Obj(fields)) = Json::parse(trimmed) else {
        return trimmed.to_owned();
    };
    let kept: Vec<(String, Json)> = fields
        .into_iter()
        .filter(|(key, _)| key != "stats" && key != "micros")
        .collect();
    Json::Obj(kept).to_string()
}

/// Human-readable one-line rendering of a response, used by `nka batch`
/// and `nka serve` without `--json`.
#[must_use]
pub fn encode_response_text(query: &Query, resp: &Response) -> String {
    match (query, &resp.verdict) {
        (Query::NkaEq { lhs, rhs }, Verdict::Holds) => format!("⊢NKA {lhs} = {rhs}"),
        (Query::NkaEq { lhs, rhs }, Verdict::Refuted) => {
            format!("⊬NKA {lhs} = {rhs}   (the power series differ)")
        }
        (Query::KaEq { lhs, rhs }, Verdict::Holds) => format!("⊢KA {lhs} = {rhs}"),
        (Query::KaEq { lhs, rhs }, Verdict::Refuted) => {
            format!("⊬KA {lhs} = {rhs}   (the languages differ)")
        }
        (Query::Series { expr, .. }, Verdict::Series { max_len, terms }) => {
            let mut line = format!("{{{{{expr}}}}} ≤{max_len}:");
            if terms.is_empty() {
                line.push_str(" 0");
            } else {
                for (i, (w, c)) in terms.iter().enumerate() {
                    line.push_str(if i == 0 { " " } else { " + " });
                    line.push_str(&format!("{c}·{w}"));
                }
            }
            line
        }
        (Query::Prove { lhs, rhs, .. }, Verdict::Proved { proof_size }) => {
            format!("proved: {lhs} = {rhs}   ({proof_size} rule applications)")
        }
        (Query::Prove { lhs, rhs, .. }, Verdict::Refuted) => {
            format!("refuted: ⊬NKA {lhs} = {rhs}   (the power series differ)")
        }
        (Query::Prove { lhs, rhs, .. }, Verdict::Exhausted { holds_by_decision }) => {
            match holds_by_decision {
                Some(true) => format!(
                    "⊢NKA {lhs} = {rhs} holds (by decision), but no rewrite proof was found within the search budget"
                ),
                _ => format!("no proof of {lhs} = {rhs} found within the search budget"),
            }
        }
        (Query::ProgEq { .. }, Verdict::ProgEq { holds, enc_p, enc_q }) => {
            if *holds {
                format!("programs equivalent: ⊢NKA {enc_p} = {enc_q}")
            } else {
                format!("programs differ: ⊬NKA {enc_p} = {enc_q}   (the encodings separate)")
            }
        }
        (Query::Hoare { pre, prog, post }, Verdict::Hoare { holds, encoded }) => {
            if *holds {
                format!("⊨par {{{pre}}} {prog} {{{post}}}   (Thm 7.8: {encoded})")
            } else {
                format!("⊭par {{{pre}}} {prog} {{{post}}}   (pre ⋢ wlp; Thm 7.8 target: {encoded})")
            }
        }
        (Query::Analyze { .. }, Verdict::Analysis { findings }) => {
            let warnings = findings
                .iter()
                .filter(|f| f.severity == nka_qprog::Severity::Warning)
                .count();
            if findings.is_empty() {
                "analysis: clean (no findings)".to_owned()
            } else {
                format!(
                    "analysis: {} finding(s) — {warnings} warning(s), {} info",
                    findings.len(),
                    findings.len() - warnings
                )
            }
        }
        (
            Query::Optimize { .. },
            Verdict::Optimized {
                optimized,
                steps,
                fixpoint,
                ..
            },
        ) => {
            if steps.is_empty() {
                format!("optimize: already optimal (0 steps) — {optimized}")
            } else {
                format!(
                    "optimize: {} step(s){} — {optimized}",
                    steps.len(),
                    if *fixpoint { ", fixpoint" } else { ", budget" }
                )
            }
        }
        (_, Verdict::BudgetExhausted { detail }) => {
            format!("budget exhausted: {detail}")
        }
        // Remaining combinations cannot be produced by `Session::run`
        // (e.g. a Series verdict for an equality query); render them
        // generically rather than panicking on a hand-built Response.
        (_, verdict) => format!("{}: {}", query.kind(), verdict.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Session;

    #[test]
    fn requests_round_trip_through_the_wire() {
        let lines = [
            r#"{"op":"nka_eq","lhs":"(p q)* p","rhs":"p (q p)*"}"#,
            r#"{"op":"ka_eq","lhs":"p + p","rhs":"p"}"#,
            r#"{"op":"series","expr":"(a + a)*","max_len":4}"#,
            r#"{"op":"series","expr":"b"}"#,
            r#"{"op":"prove","lhs":"m1 (m0 p + m1)","rhs":"m1","hyps":["m1 m1 = m1","m1 m0 = 0"]}"#,
            r#"{"op":"prog_eq","p":"qubits 1; h q0; skip","q":"qubits 1; h q0"}"#,
            r#"{"op":"hoare","pre":"ket(1)","prog":"qubits 1; x q0","post":"ket(0)"}"#,
            r#"{"op":"analyze","prog":"qubits 1; h q0; h q0"}"#,
            r#"{"op":"analyze","prog":"qubits 1; init q0","passes":["metrics","unused_qubit"]}"#,
            r#"{"op":"optimize","prog":"qubits 1; abort; h q0"}"#,
            r#"{"op":"optimize","prog":"qubits 1; while q0 { x q0 }","rules":["loop-peeling"],"max_steps":3,"beam":2}"#,
            "(p q)* p = p (q p)*",
        ];
        for line in lines {
            let query = decode_request(line).unwrap().expect("a query");
            let encoded = encode_request(&query);
            let again = decode_request(&encoded).unwrap().expect("a query");
            assert_eq!(query, again, "round-trip failed for {line:?}");
        }
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(decode_request("").unwrap(), None);
        assert_eq!(decode_request("   ").unwrap(), None);
        assert_eq!(decode_request("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(matches!(
            decode_request("{\"op\":\"sing\"}"),
            Err(ApiError::Malformed(_))
        ));
        assert!(matches!(
            decode_request("{\"lhs\":\"a\"}"),
            Err(ApiError::Malformed(_))
        ));
        assert!(matches!(
            decode_request("{not json"),
            Err(ApiError::Malformed(_))
        ));
        assert!(matches!(
            decode_request("no equality here"),
            Err(ApiError::Malformed(_))
        ));
        assert!(matches!(
            decode_request("a + ? = a"),
            Err(ApiError::Parse { .. })
        ));
    }

    #[test]
    fn response_lines_reparse_as_their_request() {
        let mut session = Session::new();
        let queries = [
            decode_request(r#"{"op":"nka_eq","lhs":"1 + p p*","rhs":"p*"}"#)
                .unwrap()
                .unwrap(),
            decode_request(r#"{"op":"series","expr":"1*","max_len":1}"#)
                .unwrap()
                .unwrap(),
            decode_request(r#"{"op":"prog_eq","p":"qubits 1; h q0; h q0","q":"qubits 1; skip"}"#)
                .unwrap()
                .unwrap(),
            decode_request(r#"{"op":"hoare","pre":"0.5 I","prog":"qubits 1; h q0","post":"I"}"#)
                .unwrap()
                .unwrap(),
            decode_request(r#"{"op":"analyze","prog":"qubits 2; abort; h q0"}"#)
                .unwrap()
                .unwrap(),
            decode_request(r#"{"op":"optimize","prog":"qubits 2; abort; h q0"}"#)
                .unwrap()
                .unwrap(),
        ];
        for query in queries {
            let resp = session.run(&query);
            let line = encode_response(&query, &resp);
            let reparsed = decode_request(&line).unwrap().expect("a query");
            assert_eq!(reparsed, query, "response line did not reparse: {line}");
        }
    }

    #[test]
    fn unknown_top_level_keys_answer_unsupported_field() {
        // A typo'd / future key is a typed error naming the field…
        let err = decode_request(r#"{"op":"nka_eq","lhs":"a","rhs":"a","lsh":"b"}"#)
            .expect_err("unsupported field");
        assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("unsupported field"), "{msg}");
        assert!(msg.contains("\"lsh\""), "{msg}");
        // …and the error line is versioned like every response line.
        let line = encode_error(&err);
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("v").and_then(Json::as_i64), Some(WIRE_VERSION));
        assert_eq!(value.get("verdict").and_then(Json::as_str), Some("error"));
        // Response-only keys stay accepted on requests (round-trip).
        let ok = decode_request(r#"{"op":"nka_eq","lhs":"a","rhs":"a","v":1,"micros":7}"#);
        assert!(ok.unwrap().is_some());
        // The check is per-op: `p` belongs to prog_eq, not nka_eq.
        let err = decode_request(r#"{"op":"nka_eq","lhs":"a","rhs":"a","p":"qubits 1; skip"}"#)
            .expect_err("cross-op key");
        assert!(err.to_string().contains("\"p\""), "{err}");
    }

    #[test]
    fn response_lines_lead_with_the_protocol_version() {
        let mut session = Session::new();
        let query = decode_request("a = a").unwrap().unwrap();
        let line = encode_response(&query, &session.run(&query));
        assert!(line.starts_with(r#"{"v":1,"#), "{line}");
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("v").and_then(Json::as_i64), Some(WIRE_VERSION));
        // `v` is deterministic, so the stable projection keeps it.
        assert!(stable_response_projection(&line).contains(r#""v":1"#));
    }

    #[test]
    fn analyze_responses_carry_structured_findings() {
        let mut session = Session::new();
        let query = decode_request(r#"{"op":"analyze","prog":"qubits 2; abort; h q0"}"#)
            .unwrap()
            .unwrap();
        let resp = session.run(&query);
        let line = encode_response(&query, &resp);
        let value = Json::parse(&line).expect("response is JSON");
        assert_eq!(
            value.get("verdict").and_then(Json::as_str),
            Some("analysis")
        );
        let findings = value
            .get("findings")
            .and_then(Json::as_array)
            .expect("findings array");
        assert!(!findings.is_empty());
        let mut saw_certificate = false;
        for f in findings {
            assert!(f.get("pass").and_then(Json::as_str).is_some(), "{line}");
            let severity = f.get("severity").and_then(Json::as_str).unwrap();
            assert!(severity == "warning" || severity == "info", "{line}");
            assert_eq!(f.get("span").and_then(Json::as_array).unwrap().len(), 2);
            assert!(f.get("message").and_then(Json::as_str).is_some());
            if let Some(cert) = f.get("certificate") {
                saw_certificate = true;
                // The certificate replays as a prog_eq request line.
                let p = cert.get("p").and_then(Json::as_str).unwrap();
                let q = cert.get("q").and_then(Json::as_str).unwrap();
                assert_eq!(cert.get("expect").and_then(Json::as_str), Some("holds"));
                let replay = format!(r#"{{"op":"prog_eq","p":{:?},"q":{:?}}}"#, p, q);
                let replayed = decode_request(&replay).unwrap().expect("a query");
                assert!(matches!(
                    session.run(&replayed).verdict,
                    Verdict::ProgEq { holds: true, .. }
                ));
                let stats = cert.get("stats").expect("certificate stats");
                assert!(stats.get("starfree_hits").and_then(Json::as_i64).is_some());
            }
        }
        assert!(saw_certificate, "abort-sink must be certified: {line}");
        // Unknown pass names are rejected with the candidate list.
        let err = decode_request(r#"{"op":"analyze","prog":"qubits 1; skip","passes":["bogus"]}"#)
            .expect_err("unknown pass");
        assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn stable_projection_drops_only_the_volatile_fields() {
        let mut warm = Session::new();
        let mut cold = Session::new();
        let query = decode_request("(p q)* p = p (q p)*").unwrap().unwrap();
        // Warm the first session so its stats delta differs from the
        // cold session's: raw lines differ, projections agree.
        warm.run(&query);
        let warm_line = encode_response(&query, &warm.run(&query));
        let cold_line = encode_response(&query, &cold.run(&query));
        assert_ne!(warm_line, cold_line, "stats/micros should differ");
        assert_eq!(
            stable_response_projection(&warm_line),
            stable_response_projection(&cold_line)
        );
        assert!(!stable_response_projection(&warm_line).contains("\"micros\""));
        // Text lines pass through (minus the trailing newline).
        assert_eq!(stable_response_projection("⊢NKA a = a\n"), "⊢NKA a = a");
    }

    #[test]
    fn optimize_responses_carry_trace_and_replayable_certificate() {
        let mut session = Session::new();
        let query = decode_request(r#"{"op":"optimize","prog":"qubits 2; abort; h q0; x q1"}"#)
            .unwrap()
            .unwrap();
        let resp = session.run(&query);
        let line = encode_response(&query, &resp);
        let value = Json::parse(&line).expect("response is JSON");
        assert_eq!(
            value.get("verdict").and_then(Json::as_str),
            Some("optimized")
        );
        assert_eq!(
            value.get("optimized").and_then(Json::as_str),
            Some("qubits 2; abort")
        );
        assert_eq!(value.get("fixpoint"), Some(&Json::Bool(true)));
        let steps = value
            .get("steps")
            .and_then(Json::as_array)
            .expect("steps array");
        assert_eq!(steps.len(), 1, "{line}");
        assert_eq!(
            steps[0].get("rule").and_then(Json::as_str),
            Some("abort-sink")
        );
        assert!(steps[0]
            .get("citation")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Def. 4.4"));
        // The certificate replays as a prog_eq request line.
        let cert = value.get("certificate").expect("certificate");
        let p = cert.get("p").and_then(Json::as_str).unwrap();
        let q = cert.get("q").and_then(Json::as_str).unwrap();
        assert_eq!(cert.get("expect").and_then(Json::as_str), Some("holds"));
        let replay = format!(r#"{{"op":"prog_eq","p":{:?},"q":{:?}}}"#, p, q);
        let replayed = decode_request(&replay).unwrap().expect("a query");
        assert!(matches!(
            session.run(&replayed).verdict,
            Verdict::ProgEq { holds: true, .. }
        ));
        // Unknown rule names are rejected with the catalog list.
        let err = decode_request(r#"{"op":"optimize","prog":"qubits 1; skip","rules":["bogus"]}"#)
            .expect_err("unknown rule");
        assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn series_terms_carry_infinite_coefficients_as_strings() {
        let mut session = Session::new();
        let query = decode_request(r#"{"op":"series","expr":"1* a","max_len":1}"#)
            .unwrap()
            .unwrap();
        let resp = session.run(&query);
        let line = encode_response(&query, &resp);
        assert!(line.contains("\"∞\""), "{line}");
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("verdict").and_then(Json::as_str), Some("series"));
    }
}
