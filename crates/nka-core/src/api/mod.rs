//! Query API v1: one typed request/response surface for the whole toolkit.
//!
//! Every consumer of the decision machinery — the `nka` CLI, benches,
//! integration tests, other processes driving `nka serve` — speaks this
//! API instead of the per-module free functions. A [`Session`] owns the
//! memoizing [`Decider`] engine, the auto-prover configuration, and the
//! series evaluator behind a single entry point,
//! [`Session::run`], which maps a [`Query`] to a structured [`Response`].
//!
//! The free functions (`nka_core::decide_eq`, `nka_wfa::ka_equiv`,
//! `nka_series::eval`) remain as documented *one-shot conveniences*; any
//! caller issuing more than one query should hold a `Session` so the
//! engine's expression/DFA/verdict caches amortize across the stream.
//!
//! Each [`Query`] variant is one judgment form of Peng–Ying–Wu
//! (PLDI 2022):
//!
//! * [`Query::NkaEq`] — `⊢NKA e = f`, decided via the rational
//!   power-series model (Remark 2.1 / Theorem A.6);
//! * [`Query::KaEq`] — `⊢KA e = f`, language equivalence of supports,
//!   i.e. the `1*K` embedding of Remark 2.1 (equivalently
//!   `⊢NKA 1*e = 1*f`);
//! * [`Query::Series`] — the truncated semantics `{{e}}` of
//!   Definition A.4, the ground-truth oracle model;
//! * [`Query::Prove`] — rewrite-proof search under Horn-clause
//!   hypotheses (Corollary 4.3), producing a machine-checkable
//!   [`Proof`] object on success;
//! * [`Query::ProgEq`] — equivalence of two quantum while-programs via
//!   the encoder `Enc` (Definition 4.4): both programs are encoded
//!   under one shared [`EncoderSetting`] and `Enc(p) = Enc(q)` is
//!   decided on the warm engine (sound by Theorem 4.5 — an algebraic
//!   `holds` implies the denotations coincide; the converse direction
//!   is checked against superoperator semantics by the differential
//!   test suite);
//! * [`Query::Hoare`] — a propositional quantum Hoare triple
//!   `{A} P {B}` (Section 7.3), checked semantically through the wlp
//!   characterization `A ⊑ wlp(P, B)`; the verdict carries the encoded
//!   inequality `Enc(P)·b̄ ≤ ā` of **Theorem 7.8**.
//!
//! Programs and effects arrive as source text in the surface language
//! of [`nka_qprog::surface`]; parse failures carry the same byte-span
//! caret diagnostics as expression queries
//! ([`ApiError::ParseProgram`]). Program encodings are interned through
//! a [`nka_syntax::ScratchScope`] per query and retired when the query
//! answers — only decided-*equal* `ProgEq` encodings are promoted into
//! the persistent arena (they are the ones worth keeping warm), so
//! adversarially distinct program traffic cannot grow a long-lived
//! serving process.
//!
//! Outcomes are a [`Verdict`] — holds / refuted / proved (with proof
//! size) / search-exhausted / budget-exhausted — plus the engine-counter
//! delta ([`Response::stats_delta`]) and wall-clock time attributable to
//! the query. Failures *of the query itself* (malformed input) are the
//! typed [`ApiError`], which carries byte-span parse diagnostics and can
//! render `^^^` carets.
//!
//! The [`wire`] submodule defines the line-oriented JSONL encoding of
//! queries and responses used by `nka batch` and `nka serve`; [`json`]
//! is the dependency-free JSON support underneath it.
//!
//! Since Expr API v2, expressions are hash-consed `Copy` handles and a
//! `Session` is `Send + Sync`, so a batch can be sharded across worker
//! sessions on scoped threads — [`run_batch_parallel`] (surfaced as
//! `nka batch --jobs N`) answers a query stream in input order with
//! verdicts identical to the single-session path.
//!
//! # Examples
//!
//! ```
//! use nka_core::api::{Query, Session, Verdict};
//!
//! let mut session = Session::new();
//! let resp = session.run(&Query::nka_eq("(p q)* p", "p (q p)*")?);
//! assert_eq!(resp.verdict, Verdict::Holds);
//! // Same query again: answered from the verdict cache.
//! let resp = session.run(&Query::nka_eq("(p q)* p", "p (q p)*")?);
//! assert_eq!(resp.stats_delta.answer_hits, 1);
//! assert_eq!(resp.stats_delta.compile_misses, 0);
//! # Ok::<(), nka_core::api::ApiError>(())
//! ```

pub mod json;
pub mod wire;

use crate::judgment::Judgment;
use crate::proof::Proof;
use crate::prover::{ProveOutcome, Prover};
use crate::snapshot::{self, ConfigGuard, LoadedSnapshot, SnapshotBuilder, SnapshotError};
use nka_qprog::optimize::{self, OptimizeStep, RuleSet};
use nka_qprog::{
    analysis, hoare::HoareTriple, Certificate, CertificateStats, EncoderSetting, Finding,
    ParseProgError, SurfaceEffect, SurfaceProgram,
};
use nka_semiring::ExtNat;
use nka_syntax::{Expr, ExprId, ParseExprError, ScratchScope, Symbol, Word};
use nka_wfa::{DecideOptions, Decider, DeciderStats};
use qsim_linalg::CMatrix;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed request against the NKA theory. See the [module docs](self)
/// for the paper construct behind each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Decide `⊢NKA lhs = rhs` (Remark 2.1 / Theorem A.6: equality of
    /// rational power series over `N̄`).
    NkaEq {
        /// Left-hand side.
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Decide `⊢KA lhs = rhs` — language equivalence of the supports
    /// (Kozen's completeness theorem via the `1*K` embedding of
    /// Remark 2.1).
    KaEq {
        /// Left-hand side.
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Evaluate the truncated power series `{{expr}}` (Definition A.4)
    /// on words of length ≤ `max_len` over the expression's own atoms.
    Series {
        /// The expression to evaluate.
        expr: Expr,
        /// Truncation length (words of length ≤ `max_len`).
        max_len: usize,
    },
    /// Search for a rewrite proof of `lhs = rhs` under Horn-clause
    /// hypotheses (Corollary 4.3). Hypothesis-free goals are first
    /// routed through the decision engine, so non-theorems come back
    /// [`Verdict::Refuted`] without burning the search budget.
    Prove {
        /// Goal left-hand side.
        lhs: Expr,
        /// Goal right-hand side.
        rhs: Expr,
        /// Hypotheses `l = r`, usable as rewrite rules in either
        /// direction.
        hyps: Vec<(Expr, Expr)>,
    },
    /// Decide whether two quantum while-programs are algebraically
    /// equivalent: encode both under one shared [`EncoderSetting`]
    /// (Definition 4.4) and decide `⊢NKA Enc(p) = Enc(q)` on the warm
    /// engine. Sound for program equivalence by Theorem 4.5.
    ProgEq {
        /// Left program, in the [`nka_qprog::surface`] language.
        p: SurfaceProgram,
        /// Right program (same declared qubit count as `p`).
        q: SurfaceProgram,
    },
    /// Check the quantum Hoare triple `{pre} prog {post}` (partial
    /// correctness, Section 7.3) via the wlp characterization
    /// `pre ⊑ wlp(prog, post)`; the verdict carries the Theorem 7.8
    /// encoded inequality `Enc(prog)·b̄ ≤ ā`.
    Hoare {
        /// Precondition `A`, in the effect surface language.
        pre: SurfaceEffect,
        /// The program `P`.
        prog: SurfaceProgram,
        /// Postcondition `B`.
        post: SurfaceEffect,
    },
    /// Run the static analyzer ([`nka_qprog::analysis`]) over a
    /// program: Tier A syntactic/dataflow passes plus Tier B semantic
    /// checks decided on the warm engine (dead code ⇔ zeroness,
    /// Definition 4.4). Every Tier B finding carries a replayable
    /// [`Certificate`]. The Tier B encodings live in a scratch scope
    /// and are never promoted, so analysis traffic cannot grow the
    /// persistent arena.
    Analyze {
        /// The program to analyze.
        prog: SurfaceProgram,
        /// Pass filter (validated names from
        /// [`analysis::PASS_NAMES`]); empty means every pass.
        passes: Vec<String>,
    },
    /// Run the certificate-carrying optimizer
    /// ([`nka_qprog::optimize`]): greedily apply catalog rewrites
    /// ("apply what `analyze` reports, then re-analyze until fixpoint"),
    /// validating **every** candidate step with a `prog_eq` decision on
    /// the warm engine before applying it, and certifying the final
    /// program against the input with one more replayable decision.
    /// Hypothesis-bearing catalog rules (gate fusion, …) propose
    /// candidates the free-symbol algebra refutes — they are counted,
    /// never applied, so the output is always covered by the
    /// certificate (Theorem 4.5, one-way).
    Optimize {
        /// The program to optimize.
        prog: SurfaceProgram,
        /// Rule filter (validated names from
        /// [`nka_qprog::analysis::RULE_METADATA`]); empty means the
        /// whole catalog with `loop-peeling` in its shrinking
        /// direction only.
        rules: Vec<String>,
        /// Maximum number of applied rewrite steps before the run
        /// bails with a structured `step budget exhausted` note.
        max_steps: usize,
        /// Beam width: how many engine-validated candidates to collect
        /// per round before picking the smallest rewrite (1 = greedy
        /// first-certified).
        beam: usize,
    },
}

/// The discriminant of a [`Query`], used for display and wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`Query::NkaEq`].
    NkaEq,
    /// [`Query::KaEq`].
    KaEq,
    /// [`Query::Series`].
    Series,
    /// [`Query::Prove`].
    Prove,
    /// [`Query::ProgEq`].
    ProgEq,
    /// [`Query::Hoare`].
    Hoare,
    /// [`Query::Analyze`].
    Analyze,
    /// [`Query::Optimize`].
    Optimize,
}

impl QueryKind {
    /// The wire-format `op` name (`nka_eq`, `ka_eq`, `series`, `prove`,
    /// `prog_eq`, `hoare`, `analyze`, `optimize`).
    #[must_use]
    pub fn op(self) -> &'static str {
        match self {
            QueryKind::NkaEq => "nka_eq",
            QueryKind::KaEq => "ka_eq",
            QueryKind::Series => "series",
            QueryKind::Prove => "prove",
            QueryKind::ProgEq => "prog_eq",
            QueryKind::Hoare => "hoare",
            QueryKind::Analyze => "analyze",
            QueryKind::Optimize => "optimize",
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.op())
    }
}

/// Default truncation length for [`Query::Series`] built from the wire
/// format without an explicit `max_len` (matches the CLI default).
pub const DEFAULT_SERIES_MAX_LEN: usize = 3;

/// Default step budget for [`Query::Optimize`] built without an
/// explicit `max_steps` (matches the CLI default). Generous for greedy
/// shrinking rewrites — real programs reach a fixpoint long before it —
/// while bounding deliberately cycling rule filters.
pub const DEFAULT_OPTIMIZE_MAX_STEPS: usize = 32;

/// Default beam width for [`Query::Optimize`]: greedy (apply the first
/// engine-certified candidate per round).
pub const DEFAULT_OPTIMIZE_BEAM: usize = 1;

impl Query {
    /// The discriminant of this query.
    #[must_use]
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::NkaEq { .. } => QueryKind::NkaEq,
            Query::KaEq { .. } => QueryKind::KaEq,
            Query::Series { .. } => QueryKind::Series,
            Query::Prove { .. } => QueryKind::Prove,
            Query::ProgEq { .. } => QueryKind::ProgEq,
            Query::Hoare { .. } => QueryKind::Hoare,
            Query::Analyze { .. } => QueryKind::Analyze,
            Query::Optimize { .. } => QueryKind::Optimize,
        }
    }

    /// Builds an [`Query::NkaEq`] from source text.
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] (with span) if either side fails to parse.
    pub fn nka_eq(lhs: &str, rhs: &str) -> Result<Query, ApiError> {
        Ok(Query::NkaEq {
            lhs: parse_field("lhs", lhs)?,
            rhs: parse_field("rhs", rhs)?,
        })
    }

    /// Builds a [`Query::KaEq`] from source text.
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] (with span) if either side fails to parse.
    pub fn ka_eq(lhs: &str, rhs: &str) -> Result<Query, ApiError> {
        Ok(Query::KaEq {
            lhs: parse_field("lhs", lhs)?,
            rhs: parse_field("rhs", rhs)?,
        })
    }

    /// Builds a [`Query::Series`] from source text.
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] (with span) if the expression fails to parse.
    pub fn series(expr: &str, max_len: usize) -> Result<Query, ApiError> {
        Ok(Query::Series {
            expr: parse_field("expr", expr)?,
            max_len,
        })
    }

    /// Builds a [`Query::Prove`] from source text; each hypothesis is a
    /// `"l = r"` string.
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] on a malformed expression,
    /// [`ApiError::Malformed`] on a hypothesis without `=`.
    pub fn prove<S: AsRef<str>>(lhs: &str, rhs: &str, hyps: &[S]) -> Result<Query, ApiError> {
        let mut parsed = Vec::with_capacity(hyps.len());
        for h in hyps {
            parsed.push(parse_hypothesis(h.as_ref())?);
        }
        Ok(Query::Prove {
            lhs: parse_field("lhs", lhs)?,
            rhs: parse_field("rhs", rhs)?,
            hyps: parsed,
        })
    }

    /// Builds a [`Query::ProgEq`] from two program sources.
    ///
    /// # Errors
    ///
    /// [`ApiError::ParseProgram`] (with span) if either program fails
    /// to parse, [`ApiError::Malformed`] if the qubit counts differ.
    /// (Encoder-name collisions cannot arise from surface programs —
    /// names derive injectively from gate × qubit — so encodability is
    /// not pre-checked here; [`Session::run`] still answers defensively
    /// if a future front end breaks that invariant.)
    pub fn prog_eq(p: &str, q: &str) -> Result<Query, ApiError> {
        let p = parse_prog_field("p", p)?;
        let q = parse_prog_field("q", q)?;
        if p.qubits() != q.qubits() {
            return Err(ApiError::Malformed(format!(
                "prog_eq compares programs over equal qubit counts, got {} vs {}",
                p.qubits(),
                q.qubits()
            )));
        }
        Ok(Query::ProgEq { p, q })
    }

    /// Builds a [`Query::Hoare`] from a precondition, program, and
    /// postcondition. The effects parse against the program's declared
    /// qubit count.
    ///
    /// # Errors
    ///
    /// [`ApiError::ParseProgram`] (with span) on any parse or
    /// effect-validity failure.
    pub fn hoare(pre: &str, prog: &str, post: &str) -> Result<Query, ApiError> {
        let prog = parse_prog_field("prog", prog)?;
        let pre = parse_effect_field("pre", pre, prog.qubits())?;
        let post = parse_effect_field("post", post, prog.qubits())?;
        Ok(Query::Hoare { pre, prog, post })
    }

    /// Builds a [`Query::Analyze`] from a program source and a pass
    /// filter (empty = every pass).
    ///
    /// # Errors
    ///
    /// [`ApiError::ParseProgram`] (with span) if the program fails to
    /// parse, [`ApiError::Malformed`] on an unknown pass name.
    pub fn analyze<S: AsRef<str>>(prog: &str, passes: &[S]) -> Result<Query, ApiError> {
        let prog = parse_prog_field("prog", prog)?;
        let passes: Vec<String> = passes.iter().map(|p| p.as_ref().to_owned()).collect();
        if let Err(unknown) = analysis::validate_passes(&passes) {
            return Err(ApiError::Malformed(format!(
                "unknown analysis pass {unknown:?} (expected one of: {})",
                analysis::PASS_NAMES.join(", ")
            )));
        }
        Ok(Query::Analyze { prog, passes })
    }

    /// Builds a [`Query::Optimize`] from a program source, a rule
    /// filter (empty = the whole catalog, shrinking peel direction
    /// only), a step budget, and a beam width.
    ///
    /// # Errors
    ///
    /// [`ApiError::ParseProgram`] (with span) if the program fails to
    /// parse, [`ApiError::Malformed`] on an unknown rule name or a
    /// zero `max_steps`/`beam`.
    pub fn optimize<S: AsRef<str>>(
        prog: &str,
        rules: &[S],
        max_steps: usize,
        beam: usize,
    ) -> Result<Query, ApiError> {
        let prog = parse_prog_field("prog", prog)?;
        let rules: Vec<String> = rules.iter().map(|r| r.as_ref().to_owned()).collect();
        RuleSet::from_names(&rules).map_err(ApiError::Malformed)?;
        if max_steps == 0 {
            return Err(ApiError::Malformed(
                "max_steps must be at least 1".to_owned(),
            ));
        }
        if beam == 0 {
            return Err(ApiError::Malformed("beam must be at least 1".to_owned()));
        }
        Ok(Query::Optimize {
            prog,
            rules,
            max_steps,
            beam,
        })
    }

    /// The expressions this query mentions, in field order (both sides
    /// of an equality, the series operand, goal plus hypotheses).
    /// Program queries mention none: their encodings are
    /// scratch-transient, built and retired inside [`Session::run`].
    pub fn exprs(&self) -> Vec<Expr> {
        match self {
            Query::NkaEq { lhs, rhs } | Query::KaEq { lhs, rhs } => vec![*lhs, *rhs],
            Query::Series { expr, .. } => vec![*expr],
            Query::Prove { lhs, rhs, hyps } => {
                let mut out = vec![*lhs, *rhs];
                for (l, r) in hyps {
                    out.push(*l);
                    out.push(*r);
                }
                out
            }
            Query::ProgEq { .. }
            | Query::Hoare { .. }
            | Query::Analyze { .. }
            | Query::Optimize { .. } => Vec::new(),
        }
    }

    /// Term-size accounting for this query: `(expr_nodes,
    /// expr_subterms)` — total *tree* node count of all mentioned
    /// expressions versus the number of *distinct* interned subterms
    /// across them. The gap is the sharing the hash-consing arena
    /// recovered; both are surfaced in the JSON verdict payload and
    /// `nka --stats` so cache effectiveness is observable.
    ///
    /// For program queries, `expr_nodes` counts the program AST nodes
    /// and `expr_subterms` is 0: their encodings live in a scratch
    /// scope and leave no persistent arena footprint.
    #[must_use]
    pub fn term_stats(&self) -> (u64, u64) {
        match self {
            Query::ProgEq { p, q } => ((p.program().size() + q.program().size()) as u64, 0),
            Query::Hoare { prog, .. }
            | Query::Analyze { prog, .. }
            | Query::Optimize { prog, .. } => (prog.program().size() as u64, 0),
            _ => term_stats_of(&self.exprs()),
        }
    }
}

fn parse_prog_field(field: &'static str, src: &str) -> Result<SurfaceProgram, ApiError> {
    SurfaceProgram::parse(src).map_err(|err| ApiError::ParseProgram {
        field,
        src: src.to_owned(),
        err,
    })
}

fn parse_effect_field(
    field: &'static str,
    src: &str,
    qubits: usize,
) -> Result<SurfaceEffect, ApiError> {
    SurfaceEffect::parse(src, qubits).map_err(|err| ApiError::ParseProgram {
        field,
        src: src.to_owned(),
        err,
    })
}

/// `(total tree nodes, distinct interned subterms)` across `exprs` —
/// the computation behind [`Query::term_stats`], shared with the
/// session's memo so a cache miss walks the terms exactly once.
fn term_stats_of(exprs: &[Expr]) -> (u64, u64) {
    let nodes = exprs.iter().map(|e| e.size() as u64).sum();
    let mut distinct: HashSet<ExprId> = HashSet::new();
    for e in exprs {
        e.collect_subterm_ids(&mut distinct);
    }
    (nodes, distinct.len() as u64)
}

/// Parses one `"l = r"` hypothesis.
fn parse_hypothesis(src: &str) -> Result<(Expr, Expr), ApiError> {
    let Some((l, r)) = src.split_once('=') else {
        return Err(ApiError::Malformed(format!(
            "hypothesis {src:?} is not of the form 'l = r'"
        )));
    };
    Ok((parse_field("hyp", l.trim())?, parse_field("hyp", r.trim())?))
}

fn parse_field(field: &'static str, src: &str) -> Result<Expr, ApiError> {
    src.parse().map_err(|err| ApiError::Parse {
        field,
        src: src.to_owned(),
        err,
    })
}

/// The structured outcome of a query: what the theory says.
///
/// Resource exhaustion is a verdict, not an error — the query was
/// well-formed, the engine just hit its configured ceiling; only
/// malformed input is an [`ApiError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The judgment holds (`⊢NKA` / `⊢KA` per the query).
    Holds,
    /// The judgment does not hold: the engine separated the two series
    /// (or languages), or refuted a hypothesis-free proof goal.
    Refuted,
    /// A machine-checked proof was found ([`Response::proof`] carries
    /// the proof object).
    Proved {
        /// Number of rule applications in the checked proof.
        proof_size: usize,
    },
    /// The proof search ran out of its expansion budget.
    Exhausted {
        /// For hypothesis-free goals the engine has already decided the
        /// goal (`Some(true)`: it holds, only the *rewrite* search
        /// failed); under hypotheses the status is genuinely open
        /// (`None`).
        holds_by_decision: Option<bool>,
    },
    /// The truncated power series of a [`Query::Series`] request: the
    /// non-zero coefficients in word order.
    Series {
        /// Truncation length the series was computed to.
        max_len: usize,
        /// `(word, coefficient)` pairs, shortest word first.
        terms: Vec<(Word, ExtNat)>,
    },
    /// The outcome of a [`Query::ProgEq`]: the algebraic decision plus
    /// the shared-setting encodings it was made on (rendered, because
    /// the underlying terms are scratch-scoped; only decided-equal
    /// encodings are promoted to the persistent arena).
    ProgEq {
        /// Whether `⊢NKA Enc(p) = Enc(q)` — by Theorem 4.5 this implies
        /// `⟦p⟧ = ⟦q⟧`.
        holds: bool,
        /// `Enc(p)`, rendered.
        enc_p: String,
        /// `Enc(q)`, rendered.
        enc_q: String,
    },
    /// The outcome of a [`Query::Hoare`]: partial correctness by the
    /// wlp check, plus the encoded inequality `Enc(P)·b̄ ≤ ā` of
    /// Theorem 7.8 (same rendering as `nkat::qhl::encode_qhl`'s
    /// conclusion on an atomic derivation).
    Hoare {
        /// Whether `⊨par {A} P {B}` (i.e. `A ⊑ wlp(P, B)`).
        holds: bool,
        /// The encoded inequality, e.g. `(m1_q0 h_q0)* m0_q0 q1_neg ≤ q0_neg`.
        encoded: String,
    },
    /// The outcome of a [`Query::Analyze`]: the analyzer's findings in
    /// source order. Tier B findings carry a replayable
    /// [`Certificate`]; a `holds` replay of `prog_eq(cert.p, cert.q)`
    /// on any session re-establishes the finding independently.
    Analysis {
        /// Findings, sorted by span start (Tier A and Tier B merged).
        findings: Vec<Finding>,
    },
    /// The outcome of a [`Query::Optimize`]: the rewritten program plus
    /// its certificate. Every applied step was individually certified
    /// by a `prog_eq` decision, and `certificate` is the final
    /// replayable `prog_eq(input, optimized)` verdict — a `holds`
    /// replay on any session re-establishes the whole rewrite chain.
    Optimized {
        /// The optimized program, rendered as re-parseable source.
        /// Equal to the input source when no rule fired.
        optimized: String,
        /// The applied rewrite steps in order; each span refers to the
        /// program as it stood before that step.
        steps: Vec<OptimizeStep>,
        /// The final replayable `prog_eq(input, optimized)` certificate
        /// (`expect: "holds"`), decided on the warm engine.
        certificate: Certificate,
        /// Whether the run reached a genuine fixpoint (no candidate
        /// left); `false` means the step budget bailed first — see
        /// `note`.
        fixpoint: bool,
        /// Structured note on early termination (`step budget
        /// exhausted …`) or certification degradation; `None` for a
        /// clean fixpoint.
        note: Option<String>,
    },
    /// The decision engine exceeded its state budget
    /// ([`DecideOptions::max_dfa_states`]); retry with a larger budget.
    BudgetExhausted {
        /// Human-readable description of the exceeded bound.
        detail: String,
    },
}

impl Verdict {
    /// Whether this verdict establishes the queried judgment
    /// (holds / proved / a computed series).
    #[must_use]
    pub fn is_positive(&self) -> bool {
        match self {
            Verdict::Holds | Verdict::Proved { .. } | Verdict::Series { .. } => true,
            Verdict::ProgEq { holds, .. } | Verdict::Hoare { holds, .. } => *holds,
            // An analysis is "positive" when it found nothing worth
            // warning about — info-only findings keep CLI exit 0.
            Verdict::Analysis { findings } => findings
                .iter()
                .all(|f| f.severity != nka_qprog::Severity::Warning),
            // An optimize run always returns a program certified equal
            // to the input (a run whose final certification fails
            // degrades to the input unchanged, with a note), so it
            // keeps CLI exit 0 like an all-clear analysis.
            Verdict::Optimized { .. } => true,
            Verdict::Refuted | Verdict::Exhausted { .. } | Verdict::BudgetExhausted { .. } => false,
        }
    }

    /// The wire-format verdict name. Program verdicts reuse
    /// `holds`/`refuted` (their payload fields distinguish them), so
    /// stream consumers and exit-code rules need no new cases.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Holds => "holds",
            Verdict::Refuted => "refuted",
            Verdict::Proved { .. } => "proved",
            Verdict::Exhausted { .. } => "exhausted",
            Verdict::Series { .. } => "series",
            Verdict::ProgEq { holds, .. } | Verdict::Hoare { holds, .. } => {
                if *holds {
                    "holds"
                } else {
                    "refuted"
                }
            }
            Verdict::Analysis { .. } => "analysis",
            Verdict::Optimized { .. } => "optimized",
            Verdict::BudgetExhausted { .. } => "budget_exhausted",
        }
    }
}

/// The structured result of [`Session::run`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Which kind of query this answers.
    pub kind: QueryKind,
    /// The outcome.
    pub verdict: Verdict,
    /// The checked proof object for [`Verdict::Proved`] (so callers can
    /// re-check or render it); `None` otherwise.
    pub proof: Option<Proof>,
    /// Engine-counter activity attributable to this query
    /// ([`DeciderStats::delta_since`] across the call).
    pub stats_delta: DeciderStats,
    /// Cumulative engine counters over the session's life.
    pub stats_total: DeciderStats,
    /// Total tree-node count of the query's expressions
    /// ([`Query::term_stats`]).
    pub expr_nodes: u64,
    /// Distinct interned subterms across the query's expressions — its
    /// arena footprint; `expr_nodes / expr_subterms` is the sharing
    /// factor hash-consing recovered.
    pub expr_subterms: u64,
    /// Wall-clock time spent answering.
    pub elapsed: Duration,
}

/// A malformed query: the unified error type of the API layer.
///
/// Resource exhaustion is *not* an `ApiError` — see
/// [`Verdict::BudgetExhausted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// An expression failed to parse. Carries the field name (`lhs`,
    /// `rhs`, `expr`, `hyp`), the offending source, and the span-bearing
    /// parser error.
    Parse {
        /// Which query field the source came from.
        field: &'static str,
        /// The source text that failed to parse.
        src: String,
        /// The underlying parser error (byte span included).
        err: ParseExprError,
    },
    /// A program or effect failed to parse in the quantum surface
    /// language. Same shape as [`ApiError::Parse`] — field name
    /// (`p`, `q`, `pre`, `prog`, `post`), source, span-bearing error.
    ParseProgram {
        /// Which query field the source came from.
        field: &'static str,
        /// The source text that failed to parse.
        src: String,
        /// The underlying surface-language error (byte span included).
        err: ParseProgError,
    },
    /// A malformed wire-level request: bad JSON, unknown `op`, missing
    /// or ill-typed key, hypothesis without `=`, …
    Malformed(String),
}

impl ApiError {
    /// Multi-line rendering with a `^^^` caret under the offending span
    /// for parse errors — what the CLI prints to stderr.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ApiError::Parse { field, src, err } => {
                format!(
                    "parse error in {field}:\n  {}",
                    err.caret(src).replace('\n', "\n  ")
                )
            }
            ApiError::ParseProgram { field, src, err } => {
                format!(
                    "parse error in {field}:\n  {}",
                    err.caret(src).replace('\n', "\n  ")
                )
            }
            ApiError::Malformed(msg) => format!("malformed request: {msg}"),
        }
    }

    /// The byte span of the offending input for parse errors (either
    /// surface), `None` for wire-level malformations.
    #[must_use]
    pub fn span(&self) -> Option<(usize, usize)> {
        match self {
            ApiError::Parse { err, .. } => Some(err.span()),
            ApiError::ParseProgram { err, .. } => Some(err.span()),
            ApiError::Malformed(_) => None,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Parse { field, src, err } => {
                write!(f, "parse error in {field} {src:?}: {err}")
            }
            ApiError::ParseProgram { field, src, err } => {
                write!(f, "parse error in {field} {src:?}: {err}")
            }
            ApiError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Parse { err, .. } => Some(err),
            ApiError::ParseProgram { err, .. } => Some(err),
            ApiError::Malformed(_) => None,
        }
    }
}

/// Configuration for a [`Session`].
///
/// Since API v1.1 this struct is `#[non_exhaustive]`: external code
/// constructs it through [`SessionOptions::builder`] (validated, with
/// defaults for every field) or starts from
/// [`SessionOptions::default`] — bare struct literals no longer
/// compile outside this crate, so new fields can ship without breaking
/// embedders. See the README migration note.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SessionOptions {
    /// Resource policy of the underlying decision engine.
    pub decide: DecideOptions,
    /// Expansion budget of the auto-prover ([`Prover`]) per
    /// [`Query::Prove`].
    pub prove_max_expansions: usize,
    /// Term-size bound of the auto-prover per [`Query::Prove`].
    pub prove_max_term_size: usize,
    /// Cap on the number of *potential* words `Σ^{≤max_len}` a
    /// [`Query::Series`] may span (the truncated evaluation materializes
    /// at most one coefficient per word, so this bounds its memory). A
    /// request over the cap answers [`Verdict::BudgetExhausted`] —
    /// a wire client cannot OOM the process with a huge `max_len`.
    pub series_max_words: u64,
    /// Engine-recycling backstop: after this many queries the session
    /// drops its `Decider` (and term-stats memo) and starts a fresh one,
    /// bounding cache growth under unbounded *distinct* traffic. The
    /// expression arena itself is governed separately (prover scratch is
    /// scope-reclaimed; the persistent region grows only with distinct
    /// persistent terms). Cumulative [`Session::stats`] survive
    /// recycling; verdicts are unaffected (caches are pure memoization).
    /// `None` (the default) never recycles. Surfaced as
    /// `nka serve|batch --max-queries-per-worker N`.
    pub recycle_after_queries: Option<u64>,
    /// Warm-state snapshot file ([`crate::snapshot`]): when set, the
    /// session re-dumps its exportable caches here every time the
    /// recycling backstop retires an engine, so the warm state survives
    /// the recycle-and-restart lifecycle. Loading is explicit
    /// ([`Session::load_snapshot_file`]) — a session never trusts a
    /// file it was not asked to read. `None` (the default) never dumps.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            decide: DecideOptions::default(),
            prove_max_expansions: 2000,
            prove_max_term_size: 120,
            series_max_words: 1_000_000,
            recycle_after_queries: None,
            snapshot_path: None,
        }
    }
}

impl SessionOptions {
    /// A validated builder starting from the defaults — the supported
    /// construction path for external code now that the struct is
    /// `#[non_exhaustive]`.
    ///
    /// ```
    /// use nka_core::api::SessionOptions;
    /// let opts = SessionOptions::builder()
    ///     .max_dfa_states(50_000)
    ///     .recycle_after_queries(Some(10_000))
    ///     .build()?;
    /// assert_eq!(opts.decide.max_dfa_states, 50_000);
    /// # Ok::<(), nka_core::api::ApiError>(())
    /// ```
    #[must_use]
    pub fn builder() -> SessionOptionsBuilder {
        SessionOptionsBuilder {
            opts: SessionOptions::default(),
        }
    }
}

/// Builder for [`SessionOptions`]: every setter overrides one default,
/// and [`SessionOptionsBuilder::build`] range-checks the combination
/// so a misconfigured session fails loudly at construction instead of
/// silently never answering.
#[derive(Debug, Clone)]
pub struct SessionOptionsBuilder {
    opts: SessionOptions,
}

impl SessionOptionsBuilder {
    /// Replaces the whole engine resource policy.
    #[must_use]
    pub fn decide(mut self, decide: DecideOptions) -> Self {
        self.opts.decide = decide;
        self
    }

    /// Subset-construction state budget
    /// ([`DecideOptions::max_dfa_states`]).
    #[must_use]
    pub fn max_dfa_states(mut self, max_dfa_states: usize) -> Self {
        self.opts.decide.max_dfa_states = max_dfa_states;
        self
    }

    /// Auto-prover expansion budget per [`Query::Prove`]. Zero is a
    /// supported degenerate configuration: the search proves nothing,
    /// but prove queries still classify via the decision procedure.
    #[must_use]
    pub fn prove_max_expansions(mut self, prove_max_expansions: usize) -> Self {
        self.opts.prove_max_expansions = prove_max_expansions;
        self
    }

    /// Auto-prover term-size bound per [`Query::Prove`]; must be ≥ 1.
    #[must_use]
    pub fn prove_max_term_size(mut self, prove_max_term_size: usize) -> Self {
        self.opts.prove_max_term_size = prove_max_term_size;
        self
    }

    /// [`Query::Series`] word-count cap; must be ≥ 1.
    #[must_use]
    pub fn series_max_words(mut self, series_max_words: u64) -> Self {
        self.opts.series_max_words = series_max_words;
        self
    }

    /// Engine-recycling backstop; `Some(0)` is rejected by
    /// [`SessionOptionsBuilder::build`] (it would recycle before every
    /// query), `None` never recycles.
    #[must_use]
    pub fn recycle_after_queries(mut self, recycle_after_queries: Option<u64>) -> Self {
        self.opts.recycle_after_queries = recycle_after_queries;
        self
    }

    /// Warm-state snapshot file to re-dump on engine recycle
    /// ([`SessionOptions::snapshot_path`]).
    #[must_use]
    pub fn snapshot_path(mut self, snapshot_path: Option<PathBuf>) -> Self {
        self.opts.snapshot_path = snapshot_path;
        self
    }

    /// Validates the combination and returns the options.
    ///
    /// # Errors
    ///
    /// [`ApiError::Malformed`] naming the offending field when a value
    /// is out of range: a zero prover term-size bound, a zero series
    /// word cap, or `recycle_after_queries == Some(0)`. (A zero
    /// expansion budget is allowed — it disables the proof search
    /// while the decision procedure still classifies.)
    pub fn build(self) -> Result<SessionOptions, ApiError> {
        let opts = self.opts;
        if opts.prove_max_term_size == 0 {
            return Err(ApiError::Malformed(
                "prove_max_term_size must be at least 1".to_owned(),
            ));
        }
        if opts.series_max_words == 0 {
            return Err(ApiError::Malformed(
                "series_max_words must be at least 1".to_owned(),
            ));
        }
        if opts.recycle_after_queries == Some(0) {
            return Err(ApiError::Malformed(
                "recycle_after_queries must be at least 1 (or None to disable)".to_owned(),
            ));
        }
        Ok(opts)
    }
}

/// A point-in-time snapshot of the memory the session (and the process
/// arena under it) is holding — the observability half of the arena
/// lifecycle. See [`Session::memory_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Distinct expressions in the persistent arena region
    /// (process-wide; grows only with distinct persistent terms).
    pub arena_persistent_nodes: usize,
    /// Scratch nodes currently live in unretired scopes (process-wide;
    /// bounded by the in-flight queries' search frontiers).
    pub scratch_live_nodes: usize,
    /// `arena_persistent_nodes + scratch_live_nodes` — the figure a
    /// bounded-memory serving process watches (`nka serve
    /// --max-arena-nodes`).
    pub arena_resident_nodes: usize,
    /// Scratch nodes retired (storage reclaimed) since process start;
    /// the prover's transient search terms all end up here.
    pub scratch_retired_total: u64,
    /// Scratch scopes retired since process start (the cache-eviction
    /// epoch of `nka_syntax::scratch_epoch`).
    pub scratch_scopes_retired: u64,
    /// Times this session recycled its engine
    /// ([`SessionOptions::recycle_after_queries`]).
    pub engine_recycles: u64,
    /// Queries answered by this session ([`Session::queries_run`]).
    pub queries_run: u64,
}

/// Cumulative counters of the static analyzer ([`Query::Analyze`])
/// over a session's life — the `analyze` slice of `nka --stats` and
/// the serve v2 stats block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Findings emitted, bucketed by [`analysis::PASS_NAMES`] index.
    pub findings_by_pass: [u64; analysis::PASS_NAMES.len()],
    /// Tier B `prog_eq`/zeroness decisions actually run on the engine
    /// (certificate-cache misses).
    pub tier_b_decides: u64,
    /// Tier B checks answered from the session's certificate cache
    /// without touching the engine.
    pub cert_cache_hits: u64,
}

impl AnalysisStats {
    /// Counter-wise sum, for merging worker sessions.
    #[must_use]
    pub fn merged(&self, other: &AnalysisStats) -> AnalysisStats {
        let mut findings_by_pass = self.findings_by_pass;
        for (acc, x) in findings_by_pass.iter_mut().zip(other.findings_by_pass) {
            *acc += x;
        }
        AnalysisStats {
            findings_by_pass,
            tier_b_decides: self.tier_b_decides + other.tier_b_decides,
            cert_cache_hits: self.cert_cache_hits + other.cert_cache_hits,
        }
    }

    /// Total findings across all passes.
    #[must_use]
    pub fn findings_total(&self) -> u64 {
        self.findings_by_pass.iter().sum()
    }

    /// Whether every counter is zero (no analyze traffic yet).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == AnalysisStats::default()
    }
}

/// Cumulative counters of the optimizer ([`Query::Optimize`]) over a
/// session's life — the `optimize` slice of `nka --stats` and the
/// serve v2 stats block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Optimize queries answered.
    pub queries: u64,
    /// Rewrite steps applied (each one engine-certified).
    pub steps_applied: u64,
    /// Applied steps bucketed by
    /// [`nka_qprog::analysis::RULE_METADATA`] index.
    pub steps_by_rule: [u64; optimize::RULE_COUNT],
    /// Candidates the engine refuted — mostly hypothesis-bearing
    /// (advisory) catalog rules the free-symbol algebra cannot
    /// discharge (Theorem 4.5 is one-way).
    pub candidates_refuted: u64,
    /// Runs that terminated at a genuine fixpoint (no candidate left).
    pub fixpoints: u64,
    /// Runs that bailed on the step budget instead (cycling rule
    /// filters, or `--max-steps` set below the fixpoint distance).
    pub budget_bails: u64,
    /// Candidates skipped because their encoding was already visited
    /// this run — the seen-set that keeps cycling rule pairs finite.
    pub cycle_breaks: u64,
    /// Candidate/final certifications actually run on the engine
    /// (certificate-cache misses).
    pub engine_decides: u64,
    /// Certifications answered from the session's certificate cache
    /// without touching the engine.
    pub cert_cache_hits: u64,
}

impl OptimizeStats {
    /// Counter-wise sum, for merging worker sessions.
    #[must_use]
    pub fn merged(&self, other: &OptimizeStats) -> OptimizeStats {
        let mut steps_by_rule = self.steps_by_rule;
        for (acc, x) in steps_by_rule.iter_mut().zip(other.steps_by_rule) {
            *acc += x;
        }
        OptimizeStats {
            queries: self.queries + other.queries,
            steps_applied: self.steps_applied + other.steps_applied,
            steps_by_rule,
            candidates_refuted: self.candidates_refuted + other.candidates_refuted,
            fixpoints: self.fixpoints + other.fixpoints,
            budget_bails: self.budget_bails + other.budget_bails,
            cycle_breaks: self.cycle_breaks + other.cycle_breaks,
            engine_decides: self.engine_decides + other.engine_decides,
            cert_cache_hits: self.cert_cache_hits + other.cert_cache_hits,
        }
    }

    /// Whether every counter is zero (no optimize traffic yet).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == OptimizeStats::default()
    }
}

/// Cumulative warm-start counters of a session — the `snapshot` slice
/// of `nka --stats` and the serve v2 stats block. Together with the
/// engine's ordinary `answer_hits` these expose the tiered lookup:
/// an in-process hit is an `answer_hit` that is *not* a
/// `snapshot_hit`; a snapshot hit is both; everything else recomputes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Cache entries restored into this session from loaded snapshots
    /// (verdicts + multisets + certificates).
    pub restored_entries: u64,
    /// Engine verdict-cache hits served by a restored entry.
    pub snapshot_hits: u64,
    /// Analyzer certificate-cache hits served by a restored entry.
    pub cert_snapshot_hits: u64,
    /// Snapshot loads that degraded to cold start (corrupt, stale,
    /// version-mismatched, or config-mismatched files).
    pub load_warnings: u64,
    /// Successful snapshot dumps performed by this session.
    pub dumps: u64,
    /// Snapshot dumps that failed (I/O); the session keeps serving.
    pub dump_failures: u64,
    /// Creation time (unix seconds) of the most recently loaded
    /// snapshot, for age reporting; `None` if nothing was restored.
    pub loaded_created_unix_secs: Option<u64>,
}

impl SnapshotStats {
    /// Counter-wise sum, for merging worker sessions; the loaded
    /// timestamp keeps the first present value (a pool shares one
    /// snapshot, so they agree).
    #[must_use]
    pub fn merged(&self, other: &SnapshotStats) -> SnapshotStats {
        SnapshotStats {
            restored_entries: self.restored_entries + other.restored_entries,
            snapshot_hits: self.snapshot_hits + other.snapshot_hits,
            cert_snapshot_hits: self.cert_snapshot_hits + other.cert_snapshot_hits,
            load_warnings: self.load_warnings + other.load_warnings,
            dumps: self.dumps + other.dumps,
            dump_failures: self.dump_failures + other.dump_failures,
            loaded_created_unix_secs: self
                .loaded_created_unix_secs
                .or(other.loaded_created_unix_secs),
        }
    }

    /// Whether every counter is zero (no snapshot activity yet) — the
    /// stats surfaces omit the section entirely in that case.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == SnapshotStats::default()
    }
}

/// Certificate-cache size ceiling: the map is cleared (not evicted
/// entry-wise) past this many distinct Tier B checks, bounding memory
/// under unbounded distinct analyze traffic.
const CERT_CACHE_CAP: usize = 4096;

/// `min(|Σ^{≤max_len}|, cap + 1)` where `|Σ^{≤max_len}| = Σ_{i=0..=max_len} k^i`
/// — the word count, computed only far enough to compare against `cap`
/// (so a pathological `max_len` costs at most `cap` loop steps, and in
/// practice ~log(cap) for any alphabet with two or more symbols).
fn potential_words(alphabet_len: usize, max_len: usize, cap: u64) -> u64 {
    let k = alphabet_len as u64;
    let mut total: u64 = 0;
    let mut layer: u64 = 1; // k^0
    for _ in 0..=max_len {
        total = total.saturating_add(layer);
        if total > cap {
            return cap.saturating_add(1);
        }
        layer = layer.saturating_mul(k);
        if layer == 0 {
            break; // empty alphabet: only ε, ever
        }
    }
    total
}

/// The stateful query facade: one warm engine for a whole stream of
/// queries. See the [module docs](self).
///
/// Since Expr API v2 a `Session` is `Send + Sync` (statically asserted
/// below): expressions are arena handles and the engine's caches hold
/// `Arc`s, so sessions can be moved into worker threads — that is what
/// [`run_batch_parallel`] does.
#[derive(Debug, Default)]
pub struct Session {
    engine: Decider,
    opts: SessionOptions,
    queries_run: u64,
    expr_nodes_seen: u64,
    expr_subterms_seen: u64,
    /// Memoized [`Query::term_stats`] keyed by the query's root
    /// expression ids. Term stats are pure functions of the (interned,
    /// immutable) terms, and the warm serving path repeats queries — a
    /// DAG walk per repeat would dominate sub-microsecond cache hits.
    term_stats_cache: HashMap<TermKey, (u64, u64)>,
    /// Entries of `term_stats_cache` keyed (partly) on scratch ids;
    /// they must be evicted when the scratch epoch advances (retired
    /// ids are reused by later scopes). Zero on the wire paths, which
    /// only ever query persistent terms.
    term_stats_scratch_keys: usize,
    /// The scratch epoch `term_stats_cache` is consistent with.
    seen_scratch_epoch: u64,
    /// Engine counters accumulated by engines retired through
    /// [`SessionOptions::recycle_after_queries`]; [`Session::stats`]
    /// reports `retired_stats + engine.stats()` so recycling never
    /// loses observability.
    retired_stats: DeciderStats,
    engine_recycles: u64,
    queries_since_recycle: u64,
    /// Analyzer counters ([`Session::analysis_stats`]); cumulative,
    /// surviving engine recycling like `retired_stats`.
    analysis_stats: AnalysisStats,
    /// Optimizer counters ([`Session::optimize_stats`]); cumulative,
    /// surviving engine recycling like `retired_stats`.
    optimize_stats: OptimizeStats,
    /// Tier B certificate cache: `(p, q) → (holds, stats)` keyed on the
    /// check's program sources. Verdict memoization only — cleared on
    /// recycle and past [`CERT_CACHE_CAP`] without affecting answers.
    cert_cache: HashMap<(String, String), (bool, CertificateStats)>,
    /// Certificate-cache keys restored from a snapshot; a hit on one is
    /// a `cert_snapshot_hit`. Cleared alongside `cert_cache`.
    restored_cert_keys: HashSet<(String, String)>,
    /// Warm-start counters ([`Session::snapshot_stats`]); cumulative,
    /// surviving engine recycling. `retired_snapshot_hits` folds in the
    /// hit counts of recycled engines (mirroring `retired_stats`).
    snapshot_restored_entries: u64,
    retired_snapshot_hits: u64,
    cert_snapshot_hits: u64,
    snapshot_load_warnings: u64,
    snapshot_dumps: u64,
    snapshot_dump_failures: u64,
    /// Creation time of the most recently loaded snapshot.
    snapshot_loaded_created: Option<u64>,
}

/// The root-id key of [`Session::run`]'s term-stats memo. Equality /
/// series queries get inline `Copy` keys so warm probes allocate
/// nothing; only `Prove` (root pair + hypotheses) boxes its ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TermKey {
    One(ExprId),
    Two(ExprId, ExprId),
    Many(Box<[ExprId]>),
}

impl TermKey {
    /// Whether any root id is scratch — such keys are evicted when the
    /// scratch epoch advances.
    fn has_scratch(&self) -> bool {
        match self {
            TermKey::One(a) => a.is_scratch(),
            TermKey::Two(a, b) => a.is_scratch() || b.is_scratch(),
            TermKey::Many(ids) => ids.iter().any(|id| id.is_scratch()),
        }
    }

    /// The memo key of an expression query; `None` for program
    /// queries, whose (cheap, AST-sized) term stats bypass the memo.
    fn of(query: &Query) -> Option<TermKey> {
        match query {
            Query::NkaEq { lhs, rhs } | Query::KaEq { lhs, rhs } => {
                Some(TermKey::Two(lhs.id(), rhs.id()))
            }
            Query::Series { expr, .. } => Some(TermKey::One(expr.id())),
            Query::Prove { lhs, rhs, hyps } => {
                let mut ids = Vec::with_capacity(2 + 2 * hyps.len());
                ids.push(lhs.id());
                ids.push(rhs.id());
                for (l, r) in hyps {
                    ids.push(l.id());
                    ids.push(r.id());
                }
                Some(TermKey::Many(ids.into_boxed_slice()))
            }
            Query::ProgEq { .. }
            | Query::Hoare { .. }
            | Query::Analyze { .. }
            | Query::Optimize { .. } => None,
        }
    }
}

/// Compile-time proof of the Expr API v2 thread-safety contract at the
/// API layer; the parallel batch path depends on it.
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Session>();
    check::<Query>();
    check::<Response>();
    check::<ApiError>();
}

impl Session {
    /// A session with default options (100 000-state budget, exact
    /// arithmetic, 2000-expansion proof search).
    #[must_use]
    pub fn new() -> Session {
        Session::default()
    }

    /// A session with explicit options.
    #[must_use]
    pub fn with_options(opts: SessionOptions) -> Session {
        Session {
            engine: Decider::with_options(opts.decide.clone()),
            opts,
            ..Session::default()
        }
    }

    /// A session whose engine enforces the given subset-construction
    /// state budget.
    #[must_use]
    pub fn with_budget(max_dfa_states: usize) -> Session {
        let opts = SessionOptions::builder()
            .max_dfa_states(max_dfa_states)
            .build()
            .expect("default options with a custom budget are valid");
        Session::with_options(opts)
    }

    /// The session's configuration.
    #[must_use]
    pub fn options(&self) -> &SessionOptions {
        &self.opts
    }

    /// Cumulative engine counters over the session's life — including
    /// activity on engines since retired by
    /// [`SessionOptions::recycle_after_queries`].
    #[must_use]
    pub fn stats(&self) -> DeciderStats {
        self.retired_stats.merged(&self.engine.stats())
    }

    /// Times this session recycled its engine.
    #[must_use]
    pub fn engine_recycles(&self) -> u64 {
        self.engine_recycles
    }

    /// Cumulative static-analyzer counters over the session's life
    /// (findings per pass, Tier B decide calls, certificate cache
    /// hits). Zero until the first [`Query::Analyze`].
    #[must_use]
    pub fn analysis_stats(&self) -> AnalysisStats {
        self.analysis_stats
    }

    /// Cumulative optimizer counters over the session's life (steps
    /// applied per rule, refuted candidates, fixpoints vs budget
    /// bails, certification cache traffic). Zero until the first
    /// [`Query::Optimize`].
    #[must_use]
    pub fn optimize_stats(&self) -> OptimizeStats {
        self.optimize_stats
    }

    /// A snapshot of the session's (and the process arena's) memory
    /// accounting: persistent vs scratch nodes, reclamation totals, and
    /// recycling counts. This is the observability surface behind
    /// `nka --stats` and the CI memory-soak gate.
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        // Capture each counter once and derive the sum from the
        // captured values, so the snapshot is internally consistent
        // even while other threads intern or retire concurrently.
        let arena_persistent_nodes = nka_syntax::interned_expr_count();
        let scratch_live_nodes = nka_syntax::scratch_live_nodes();
        MemoryStats {
            arena_persistent_nodes,
            scratch_live_nodes,
            arena_resident_nodes: arena_persistent_nodes + scratch_live_nodes,
            scratch_retired_total: nka_syntax::scratch_retired_total(),
            scratch_scopes_retired: nka_syntax::scratch_epoch(),
            engine_recycles: self.engine_recycles,
            queries_run: self.queries_run,
        }
    }

    /// Number of queries answered by this session.
    #[must_use]
    pub fn queries_run(&self) -> u64 {
        self.queries_run
    }

    /// Cumulative tree-node count of all expressions queried through
    /// this session ([`Query::term_stats`] summed over its life).
    #[must_use]
    pub fn expr_nodes_seen(&self) -> u64 {
        self.expr_nodes_seen
    }

    /// Cumulative per-query distinct-subterm counts over the session's
    /// life. Compare with [`Session::expr_nodes_seen`] for the sharing
    /// factor, and with `nka_syntax::interned_expr_count()` for the
    /// process-wide arena footprint.
    #[must_use]
    pub fn expr_subterms_seen(&self) -> u64 {
        self.expr_subterms_seen
    }

    /// Direct access to the underlying engine, for callers that need
    /// surfaces the query API does not model (e.g. word membership).
    pub fn engine_mut(&mut self) -> &mut Decider {
        &mut self.engine
    }

    /// Cumulative warm-start counters over the session's life: restored
    /// entries, snapshot-tier hits, degraded loads, dumps. All zero for
    /// a session that never touched a snapshot.
    #[must_use]
    pub fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats {
            restored_entries: self.snapshot_restored_entries,
            snapshot_hits: self.retired_snapshot_hits + self.engine.snapshot_hits(),
            cert_snapshot_hits: self.cert_snapshot_hits,
            load_warnings: self.snapshot_load_warnings,
            dumps: self.snapshot_dumps,
            dump_failures: self.snapshot_dump_failures,
            loaded_created_unix_secs: self.snapshot_loaded_created,
        }
    }

    /// Restores an instantiated snapshot into this session's caches:
    /// verdicts and multisets into the engine, certificates into the
    /// Tier B cache. Entries whose cache-relevant options differ from
    /// this session's are refused wholesale (counted as a load
    /// warning) — a mismatched snapshot degrades to cold, never to a
    /// wrong answer. Returns the number of entries restored.
    pub fn load_snapshot(&mut self, snap: &LoadedSnapshot) -> usize {
        if snap.config != ConfigGuard::from_options(&self.opts.decide) {
            self.snapshot_load_warnings += 1;
            return 0;
        }
        let mut restored = 0usize;
        for (l, r, v) in &snap.nka {
            self.engine.restore_nka_verdict(l, r, *v);
            restored += 1;
        }
        for (l, r, v) in &snap.ka {
            self.engine.restore_ka_verdict(l, r, *v);
            restored += 1;
        }
        for (e, ms) in &snap.multisets {
            self.engine.restore_multiset(e, Arc::clone(ms));
            restored += 1;
        }
        for cert in &snap.certs {
            let key = (cert.p.clone(), cert.q.clone());
            self.restored_cert_keys.insert(key.clone());
            self.cert_cache.insert(key, (cert.holds, cert.stats));
            restored += 1;
        }
        self.snapshot_restored_entries += restored as u64;
        self.snapshot_loaded_created = Some(snap.created_unix_secs);
        restored
    }

    /// Reads, validates, and restores the snapshot at `path` — the
    /// boot-time warm-start entry point for single-session consumers
    /// (`nka batch --snapshot`, stdin serve). On any failure the
    /// session stays cold, the load-warning counter moves, and the
    /// typed error is returned for logging. Returns the number of
    /// entries restored.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; the session is unchanged (cold) when one
    /// is returned.
    pub fn load_snapshot_file(&mut self, path: &Path) -> Result<usize, SnapshotError> {
        match snapshot::load(path, &ConfigGuard::from_options(&self.opts.decide)) {
            Ok(snap) => Ok(self.load_snapshot(&snap)),
            Err(err) => {
                self.snapshot_load_warnings += 1;
                Err(err)
            }
        }
    }

    /// Stages this session's exportable warm state into `builder`:
    /// persistent-keyed engine verdicts and multisets plus the Tier B
    /// certificate cache (in sorted key order, so dumps are
    /// deterministic). Used directly by the serve worker pool to merge
    /// every worker's caches into one snapshot at drain.
    pub fn export_snapshot_into(&self, builder: &mut SnapshotBuilder) {
        for (a, b, v) in self.engine.export_nka_verdicts() {
            if let (Some(l), Some(r)) = (Expr::from_id(a), Expr::from_id(b)) {
                builder.add_nka_verdict(&l, &r, v);
            }
        }
        for (a, b, v) in self.engine.export_ka_verdicts() {
            if let (Some(l), Some(r)) = (Expr::from_id(a), Expr::from_id(b)) {
                builder.add_ka_verdict(&l, &r, v);
            }
        }
        for (id, ms) in self.engine.export_multisets() {
            if let Some(e) = Expr::from_id(id) {
                builder.add_multiset(&e, &ms);
            }
        }
        let mut certs: Vec<_> = self.cert_cache.iter().collect();
        certs.sort_by(|a, b| a.0.cmp(b.0));
        for ((p, q), (holds, stats)) in certs {
            builder.add_cert(p, q, *holds, *stats);
        }
    }

    /// Dumps this session's exportable warm state to `path` (atomic
    /// temp-file + rename). Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be written; the
    /// dump-failure counter moves and the session keeps serving.
    pub fn save_snapshot(&mut self, path: &Path) -> Result<usize, SnapshotError> {
        let mut builder = SnapshotBuilder::new(ConfigGuard::from_options(&self.opts.decide));
        self.export_snapshot_into(&mut builder);
        let entries = builder.entry_count();
        match builder.write_to(path) {
            Ok(()) => {
                self.snapshot_dumps += 1;
                Ok(entries)
            }
            Err(err) => {
                self.snapshot_dump_failures += 1;
                Err(err)
            }
        }
    }

    /// [`Query::term_stats`] through the session's memo: a warm repeat
    /// costs one allocation-free map probe on the root ids instead of
    /// a DAG walk.
    fn term_stats_memo(&mut self, query: &Query) -> (u64, u64) {
        let Some(key) = TermKey::of(query) else {
            // Program queries: AST-proportional, no ids to key on.
            return query.term_stats();
        };
        if let Some(&hit) = self.term_stats_cache.get(&key) {
            return hit;
        }
        let computed = term_stats_of(&query.exprs());
        if key.has_scratch() {
            if self.term_stats_scratch_keys == 0 {
                self.seen_scratch_epoch = nka_syntax::scratch_epoch();
            }
            self.term_stats_scratch_keys += 1;
        }
        self.term_stats_cache.insert(key, computed);
        computed
    }

    /// Evicts scratch-keyed memo entries if any scope retired since the
    /// last query (mirrors the `Decider`'s own epoch hygiene); O(1)
    /// unless this session actually cached scratch-rooted queries.
    fn sync_scratch_epoch(&mut self) {
        // Warm-path fast exit: no scratch keys cached ⇒ nothing a stale
        // epoch could mis-serve, so skip even the atomic epoch load.
        if self.term_stats_scratch_keys == 0 {
            return;
        }
        let epoch = nka_syntax::scratch_epoch();
        if epoch == self.seen_scratch_epoch {
            return;
        }
        self.seen_scratch_epoch = epoch;
        self.term_stats_cache.retain(|key, _| !key.has_scratch());
        self.term_stats_scratch_keys = 0;
    }

    /// Applies [`SessionOptions::recycle_after_queries`]: once the
    /// current engine has answered that many queries, retire it (caches
    /// and all) and start fresh, folding its counters into the
    /// session-cumulative stats. Runs between queries only, so verdicts
    /// and per-query deltas are unaffected.
    fn maybe_recycle(&mut self) {
        let Some(limit) = self.opts.recycle_after_queries else {
            return;
        };
        if limit == 0 || self.queries_since_recycle < limit {
            return;
        }
        // Dump the warm state about to be discarded, so a restart (or
        // the next `--snapshot` boot) can restore it. Failures only
        // move a counter: recycling proceeds regardless.
        if let Some(path) = self.opts.snapshot_path.clone() {
            let _ = self.save_snapshot(&path);
        }
        self.retired_stats = self.retired_stats.merged(&self.engine.stats());
        self.retired_snapshot_hits += self.engine.snapshot_hits();
        self.engine = Decider::with_options(self.opts.decide.clone());
        self.term_stats_cache.clear();
        self.term_stats_scratch_keys = 0;
        self.cert_cache.clear();
        self.restored_cert_keys.clear();
        self.engine_recycles += 1;
        self.queries_since_recycle = 0;
    }

    /// The cold half of per-query governance, behind one fused branch
    /// in [`Session::run`] so the warm path pays a single predictable
    /// compare for both policies.
    #[cold]
    fn pre_query_governance(&mut self) {
        self.maybe_recycle();
        self.sync_scratch_epoch();
    }

    /// Answers one query. Never panics and never returns a Rust error:
    /// every outcome — including budget exhaustion — is a [`Verdict`].
    pub fn run(&mut self, query: &Query) -> Response {
        if self.opts.recycle_after_queries.is_some() || self.term_stats_scratch_keys > 0 {
            self.pre_query_governance();
        }
        let before = self.engine.stats();
        let (expr_nodes, expr_subterms) = self.term_stats_memo(query);
        let start = Instant::now();
        let (verdict, proof) = self.dispatch(query);
        let elapsed = start.elapsed();
        let total = self.engine.stats();
        self.queries_run += 1;
        self.queries_since_recycle += 1;
        self.expr_nodes_seen += expr_nodes;
        self.expr_subterms_seen += expr_subterms;
        // Merging the retired-engine counters is off the warm path: a
        // never-recycled session (`retired_stats` all zero) skips it.
        let stats_total = if self.engine_recycles == 0 {
            total
        } else {
            self.retired_stats.merged(&total)
        };
        Response {
            kind: query.kind(),
            verdict,
            proof,
            stats_delta: total.delta_since(&before),
            stats_total,
            expr_nodes,
            expr_subterms,
            elapsed,
        }
    }

    /// Answers a batch in input order on the one warm engine.
    pub fn run_all(&mut self, queries: &[Query]) -> Vec<Response> {
        queries.iter().map(|q| self.run(q)).collect()
    }

    fn dispatch(&mut self, query: &Query) -> (Verdict, Option<Proof>) {
        match query {
            Query::NkaEq { lhs, rhs } => (decision(self.engine.decide(lhs, rhs)), None),
            Query::KaEq { lhs, rhs } => (decision(self.engine.ka_equiv(lhs, rhs)), None),
            Query::Series { expr, max_len } => {
                let alphabet: Vec<Symbol> = expr.atoms().into_iter().collect();
                let cap = self.opts.series_max_words;
                if potential_words(alphabet.len(), *max_len, cap) > cap {
                    return (
                        Verdict::BudgetExhausted {
                            detail: format!(
                                "series truncation ≤{max_len} over {} symbols spans more \
                                 than the session cap of {cap} words",
                                alphabet.len()
                            ),
                        },
                        None,
                    );
                }
                let series = nka_series::eval(expr, &alphabet, *max_len);
                let terms = series.iter().map(|(w, c)| (w.clone(), c)).collect();
                (
                    Verdict::Series {
                        max_len: *max_len,
                        terms,
                    },
                    None,
                )
            }
            Query::Prove { lhs, rhs, hyps } => {
                let judgments: Vec<Judgment> =
                    hyps.iter().map(|(l, r)| Judgment::Eq(*l, *r)).collect();
                let mut prover = Prover::new(&judgments)
                    .with_max_expansions(self.opts.prove_max_expansions)
                    .with_max_term_size(self.opts.prove_max_term_size);
                prover.add_hypothesis_rules();
                match prover.prove_or_refute(&mut self.engine, lhs, rhs) {
                    Ok(ProveOutcome::Proved(proof)) => (
                        Verdict::Proved {
                            proof_size: proof.size(),
                        },
                        Some(proof),
                    ),
                    Ok(ProveOutcome::Refuted) => (Verdict::Refuted, None),
                    Ok(ProveOutcome::Exhausted) => {
                        // Hypothesis-free goals reached Exhausted only
                        // after the engine decided them true (false would
                        // have been Refuted, overflow would be Err).
                        let holds_by_decision = judgments.is_empty().then_some(true);
                        (Verdict::Exhausted { holds_by_decision }, None)
                    }
                    Err(err) => (
                        Verdict::BudgetExhausted {
                            detail: err.to_string(),
                        },
                        None,
                    ),
                }
            }
            Query::ProgEq { p, q } => (self.dispatch_prog_eq(p, q), None),
            Query::Hoare { pre, prog, post } => (hoare_verdict(pre, prog, post), None),
            Query::Analyze { prog, passes } => (self.dispatch_analyze(prog, passes), None),
            Query::Optimize {
                prog,
                rules,
                max_steps,
                beam,
            } => (self.dispatch_optimize(prog, rules, *max_steps, *beam), None),
        }
    }

    /// `⊢NKA Enc(p) = Enc(q)` on the warm engine. The shared-setting
    /// encodings are interned through a [`ScratchScope`] and retired
    /// with the query; **only decided-equal encodings are promoted**
    /// into the persistent arena (a repeat of the same equal pair then
    /// resolves to persistent ids and hits the verdict cache), so
    /// distinct refuted traffic leaves no footprint — the program half
    /// of the PR 4 memory model, gated by the arena soak.
    fn dispatch_prog_eq(&mut self, p: &SurfaceProgram, q: &SurfaceProgram) -> Verdict {
        let scope = ScratchScope::enter();
        let mut setting = EncoderSetting::new(p.dim());
        let encoded = setting
            .encode(p.program())
            .and_then(|ep| setting.encode(q.program()).map(|eq| (ep, eq)));
        let (ep, eq) = match encoded {
            Ok(pair) => pair,
            // Unreachable for surface programs (encoder names derive
            // injectively from gate × qubit); answer rather than panic
            // if a future front end reaches here with colliding names.
            Err(err) => {
                return Verdict::BudgetExhausted {
                    detail: format!("encoding failed: {err}"),
                }
            }
        };
        let enc_p = ep.to_string();
        let enc_q = eq.to_string();
        let verdict = match self.engine.decide(&ep, &eq) {
            Ok(holds) => {
                if holds {
                    let mut memo = HashMap::new();
                    let pp = nka_syntax::promote_memoized(&ep, &mut memo);
                    let pq = nka_syntax::promote_memoized(&eq, &mut memo);
                    // Seed the verdict under the persistent ids so a
                    // repeat of the pair is an in-process hit and the
                    // verdict is exportable into a snapshot (scratch
                    // keys never are).
                    self.engine.seed_nka_verdict(&pp, &pq, true);
                }
                Verdict::ProgEq {
                    holds,
                    enc_p,
                    enc_q,
                }
            }
            Err(err) => Verdict::BudgetExhausted {
                detail: err.to_string(),
            },
        };
        drop(scope);
        verdict
    }

    /// Runs the static analyzer: Tier A passes are pure AST walks
    /// ([`analysis::syntactic_findings`]); each Tier B check
    /// ([`analysis::semantic_checks`]) is a `prog_eq` decided on the
    /// warm engine through the certificate cache. A check that holds
    /// becomes a [`Finding`] with a replayable [`Certificate`]; a
    /// refuted check emits nothing. Unlike `prog_eq`, *nothing* is ever
    /// promoted — analysis encodings are scratch-transient even when a
    /// check holds, so unbounded analyze traffic adds zero persistent
    /// arena nodes (gated by the arena soak).
    fn dispatch_analyze(&mut self, prog: &SurfaceProgram, passes: &[String]) -> Verdict {
        let mut findings = analysis::syntactic_findings(prog, passes);
        for check in analysis::semantic_checks(prog, passes) {
            let (holds, stats, was_hit) = self.cached_cert_decide(&check.p, &check.q);
            if was_hit {
                self.analysis_stats.cert_cache_hits += 1;
            } else {
                self.analysis_stats.tier_b_decides += 1;
            }
            if holds {
                findings.push(Finding {
                    pass: check.pass,
                    severity: check.severity,
                    span: check.span,
                    message: check.message,
                    certificate: Some(Certificate {
                        p: check.p,
                        q: check.q,
                        expect: "holds",
                        rule: check.rule,
                        stats,
                    }),
                });
            }
        }
        // Stable by span start: Tier A and Tier B interleave in source
        // order, ties keep pass-generation order — deterministic, so
        // `--jobs N` output byte-matches the sequential run.
        findings.sort_by_key(|f| f.span.0);
        for f in &findings {
            if let Some(i) = analysis::pass_index(f.pass) {
                self.analysis_stats.findings_by_pass[i] += 1;
            }
        }
        Verdict::Analysis { findings }
    }

    /// One certified `prog_eq(p, q)` through the session's certificate
    /// cache — the shared engine-access path of the analyzer's Tier B
    /// checks and every optimizer certification. Returns `(holds,
    /// engine-delta stats, answered-from-cache)`; callers attribute the
    /// hit/miss to their own counter block. A hit on a
    /// snapshot-restored key also moves the `cert_snapshot_hits`
    /// warm-start counter, and a miss is inserted (behind the
    /// [`CERT_CACHE_CAP`] clear), so optimizer certifications ride the
    /// same snapshot export path as analyzer certificates.
    fn cached_cert_decide(&mut self, p: &str, q: &str) -> (bool, CertificateStats, bool) {
        if let Some(&hit) = self.cert_cache.get(&(p.to_owned(), q.to_owned())) {
            if self
                .restored_cert_keys
                .contains(&(p.to_owned(), q.to_owned()))
            {
                self.cert_snapshot_hits += 1;
            }
            return (hit.0, hit.1, true);
        }
        let decided = self.decide_cert_pair(p, q);
        if self.cert_cache.len() >= CERT_CACHE_CAP {
            self.cert_cache.clear();
        }
        self.cert_cache
            .insert((p.to_owned(), q.to_owned()), decided);
        (decided.0, decided.1, false)
    }

    /// Decides one certification pair inside a [`ScratchScope`]: parse
    /// both program sources, encode under one shared setting, decide,
    /// and retire every scratch node — *nothing* is promoted, so
    /// unbounded analyze/optimize traffic adds zero persistent arena
    /// nodes. Budget overflow or (unreachable for generated sources)
    /// parse/encode failure conservatively answers *not certified* —
    /// the analyzer stays silent and the optimizer declines the step
    /// rather than acting on an unproven equality.
    fn decide_cert_pair(&mut self, p: &str, q: &str) -> (bool, CertificateStats) {
        let scope = ScratchScope::enter();
        let before = self.engine.stats();
        let mut holds = false;
        if let (Ok(p), Ok(q)) = (SurfaceProgram::parse(p), SurfaceProgram::parse(q)) {
            let mut setting = EncoderSetting::new(p.dim());
            if let (Ok(ep), Ok(eq)) = (setting.encode(p.program()), setting.encode(q.program())) {
                holds = self.engine.decide(&ep, &eq).unwrap_or(false);
            }
        }
        drop(scope);
        let delta = self.engine.stats().delta_since(&before);
        (
            holds,
            CertificateStats {
                starfree_hits: delta.starfree_hits,
                prefix_hits: delta.prefix_hits,
                fastpath_fallbacks: delta.fastpath_fallbacks,
            },
        )
    }

    /// Runs the optimizer: candidate generation is the engine-free
    /// [`nka_qprog::optimize`]; this loop owns the fixpoint, the
    /// seen-encoding cycle breaker, and every engine certification.
    ///
    /// Each round proposes candidates, skips any whose encoding (under
    /// one shared [`EncoderSetting`], interned in one outer
    /// [`ScratchScope`]) was already visited this run — equal encodings
    /// are provably equal programs, so revisiting one can only cycle —
    /// and certifies the rest with [`Session::cached_cert_decide`]
    /// until `beam` candidates pass; the smallest certified rewrite is
    /// applied. The run ends at a fixpoint (no certified candidate), or
    /// bails with a structured note when `max_steps` is exhausted.
    /// Finally the output is certified against the input on the same
    /// cache — for a greedy single-step run that is the very pair the
    /// step validation just decided, a cache hit. Nothing is promoted:
    /// the certificate cache (exportable into snapshots) is the only
    /// state that outlives the query.
    fn dispatch_optimize(
        &mut self,
        prog: &SurfaceProgram,
        rules: &[String],
        max_steps: usize,
        beam: usize,
    ) -> Verdict {
        // `Query::optimize` validated the filter; answer (not panic) if
        // a future front end constructs the variant directly.
        let ruleset = match RuleSet::from_names(rules) {
            Ok(rs) => rs,
            Err(msg) => return Verdict::BudgetExhausted { detail: msg },
        };
        self.optimize_stats.queries += 1;
        let scope = ScratchScope::enter();
        let mut setting = EncoderSetting::new(prog.dim());
        let mut seen: HashSet<ExprId> = HashSet::new();
        match setting.encode(prog.program()) {
            Ok(enc) => seen.insert(enc.id()),
            // Unreachable for surface programs (encoder names derive
            // injectively from gate × qubit); see `dispatch_prog_eq`.
            Err(err) => {
                drop(scope);
                return Verdict::BudgetExhausted {
                    detail: format!("encoding failed: {err}"),
                };
            }
        };
        let mut current = prog.clone();
        let mut steps: Vec<OptimizeStep> = Vec::new();
        let mut note: Option<String> = None;
        let mut fixpoint = false;
        loop {
            if steps.len() >= max_steps {
                note = Some(format!(
                    "step budget exhausted after {max_steps} step(s); \
                     certified rewrites may remain"
                ));
                self.optimize_stats.budget_bails += 1;
                break;
            }
            // Collect up to `beam` engine-certified candidates, then
            // apply the smallest; beam 1 is greedy first-certified
            // (candidates arrive certifiable-first, growing-peel last).
            let mut certified: Vec<(optimize::Candidate, SurfaceProgram, ExprId)> = Vec::new();
            for cand in optimize::candidates(&current, &ruleset) {
                if certified.len() >= beam {
                    break;
                }
                let Ok(parsed) = SurfaceProgram::parse(&cand.rewritten) else {
                    continue;
                };
                let Ok(enc) = setting.encode(parsed.program()) else {
                    continue;
                };
                if seen.contains(&enc.id()) {
                    self.optimize_stats.cycle_breaks += 1;
                    continue;
                }
                let (holds, _, was_hit) =
                    self.cached_cert_decide(current.source(), &cand.rewritten);
                if was_hit {
                    self.optimize_stats.cert_cache_hits += 1;
                } else {
                    self.optimize_stats.engine_decides += 1;
                }
                if holds {
                    certified.push((cand, parsed, enc.id()));
                } else {
                    self.optimize_stats.candidates_refuted += 1;
                }
            }
            let Some((cand, parsed, enc_id)) = certified
                .into_iter()
                .min_by_key(|(c, _, _)| c.rewritten.len())
            else {
                fixpoint = true;
                self.optimize_stats.fixpoints += 1;
                break;
            };
            steps.push(OptimizeStep {
                rule: cand.rule,
                span: cand.span,
                note: cand.note,
            });
            seen.insert(enc_id);
            current = parsed;
            self.optimize_stats.steps_applied += 1;
            if let Some(ix) = optimize::rule_index(cand.rule) {
                self.optimize_stats.steps_by_rule[ix] += 1;
            }
        }
        drop(scope);
        // Final certificate: prog_eq(input, output) on the shared
        // certificate cache. It holds by transitivity of the per-step
        // certifications; if the single decision still exceeds the
        // budget, degrade to the identity rewrite (trivially certified)
        // rather than returning a program the engine did not confirm.
        let mut optimized = current.source().to_owned();
        let (mut holds, mut stats, was_hit) = self.cached_cert_decide(prog.source(), &optimized);
        if was_hit {
            self.optimize_stats.cert_cache_hits += 1;
        } else {
            self.optimize_stats.engine_decides += 1;
        }
        if !holds {
            note = Some(format!(
                "final certification of the {}-step rewrite exceeded the \
                 engine budget; returning the input unchanged",
                steps.len()
            ));
            steps.clear();
            fixpoint = false;
            optimized = prog.source().to_owned();
            let (h, s, hit) = self.cached_cert_decide(prog.source(), &optimized);
            if hit {
                self.optimize_stats.cert_cache_hits += 1;
            } else {
                self.optimize_stats.engine_decides += 1;
            }
            (holds, stats) = (h, s);
        }
        debug_assert!(holds, "reflexive certification cannot fail");
        Verdict::Optimized {
            optimized: optimized.clone(),
            steps,
            certificate: Certificate {
                p: prog.source().to_owned(),
                q: optimized,
                expect: "holds",
                rule: None,
                stats,
            },
            fixpoint,
            note,
        }
    }
}

/// Checks `{pre} prog {post}` through the wlp characterization and
/// renders the Theorem 7.8 encoded inequality `Enc(P)·b̄ ≤ ā`.
///
/// The effect-term naming mirrors `nkat::qhl::encode_qhl` on an atomic
/// derivation — `I ↦ (e, 0)`, `O ↦ (0, e)`, then fresh `q0`, `q1`, …
/// in pre-before-post order with `_neg` negations, equal matrices
/// sharing a term — so the rendered inequality matches the conclusion
/// the derivation compiler emits (asserted by an integration test).
fn hoare_verdict(pre: &SurfaceEffect, prog: &SurfaceProgram, post: &SurfaceEffect) -> Verdict {
    let triple = HoareTriple::new(pre.matrix(), prog.program(), post.matrix());
    let holds = triple.holds_partial(1e-8);

    const TOL: f64 = 1e-8;
    let dim = prog.dim();
    let identity = CMatrix::identity(dim);
    let zero = CMatrix::zeros(dim, dim);
    let scope = ScratchScope::enter();
    let top = Expr::atom(Symbol::intern("e"));
    // (matrix, negation term) in registration order.
    let mut registry: Vec<(CMatrix, Expr)> = vec![(identity, Expr::zero()), (zero, top)];
    let mut fresh = 0usize;
    fn neg_term_for(registry: &mut Vec<(CMatrix, Expr)>, fresh: &mut usize, m: &CMatrix) -> Expr {
        if let Some((_, neg)) = registry.iter().find(|(mat, _)| mat.approx_eq(m, TOL)) {
            return *neg;
        }
        let neg = Expr::atom(Symbol::intern(&format!("q{fresh}_neg")));
        *fresh += 1;
        registry.push((m.clone(), neg));
        neg
    }
    let pre_neg = neg_term_for(&mut registry, &mut fresh, pre.matrix());
    let post_neg = neg_term_for(&mut registry, &mut fresh, post.matrix());
    let encoded = match EncoderSetting::new(dim).encode(prog.program()) {
        Ok(enc) => format!("{} ≤ {pre_neg}", enc.mul(&post_neg)),
        Err(err) => format!("(encoding failed: {err})"),
    };
    drop(scope);
    Verdict::Hoare { holds, encoded }
}

fn decision(result: Result<bool, nka_wfa::DecideError>) -> Verdict {
    match result {
        Ok(true) => Verdict::Holds,
        Ok(false) => Verdict::Refuted,
        Err(err) => Verdict::BudgetExhausted {
            detail: err.to_string(),
        },
    }
}

/// Answers a batch of queries on `jobs` worker [`Session`]s running on
/// scoped threads, returning one [`Response`] per query **in input
/// order**. This is the engine behind `nka batch --jobs N`.
///
/// Queries are sharded round-robin (query `i` goes to worker
/// `i % jobs`), so a stream with repeated neighborhoods still spreads
/// across workers. Each worker owns a private engine built from `opts`
/// — verdicts are exact and deterministic regardless of cache state, so
/// the verdict set is identical to a single-session run; only the
/// per-response `stats_delta` differs (an expression shared *across*
/// shards compiles once per worker rather than once overall — that is
/// the throughput trade).
///
/// `jobs` is clamped to `1..=queries.len()`; `jobs <= 1` degenerates to
/// [`Session::run_all`] on the calling thread with no thread overhead.
/// Workers inherit expressions by handle (`Expr: Send + Sync`) — no
/// term is re-parsed or deep-copied to cross the thread boundary.
#[must_use]
pub fn run_batch_parallel(queries: &[Query], opts: &SessionOptions, jobs: usize) -> Vec<Response> {
    run_batch_parallel_traced(queries, opts, jobs, None).0
}

/// Worker-level accounting of a parallel batch
/// ([`run_batch_parallel_traced`]): engine recycles plus every
/// merged per-subsystem counter block — what `nka batch --jobs N
/// --stats` reports.
#[derive(Debug, Clone, Default)]
pub struct BatchTrace {
    /// Total engine recycles across all worker sessions
    /// ([`SessionOptions::recycle_after_queries`]).
    pub engine_recycles: u64,
    /// Merged analyzer counters ([`Session::analysis_stats`]).
    pub analysis: AnalysisStats,
    /// Merged optimizer counters ([`Session::optimize_stats`]).
    pub optimize: OptimizeStats,
    /// Merged warm-start counters ([`Session::snapshot_stats`]).
    pub snapshot: SnapshotStats,
}

/// Shared snapshot state for a (possibly chunked, possibly parallel)
/// batch run — the `batch --jobs N --snapshot FILE` fix. The loaded
/// snapshot is restored into every worker session at construction, and
/// each worker exports its warm caches into the one shared builder when
/// its shard drains (the serve-v2 drain-time merge, reused); the caller
/// writes the builder once at end of stream, so transient workers no
/// longer forfeit — or race over — the dump.
#[derive(Debug)]
pub struct BatchSnapshot {
    loaded: Option<LoadedSnapshot>,
    merge: Mutex<SnapshotBuilder>,
}

impl BatchSnapshot {
    /// An empty merge target configured for `opts` (no warm start).
    #[must_use]
    pub fn new(opts: &SessionOptions) -> BatchSnapshot {
        BatchSnapshot {
            loaded: None,
            merge: Mutex::new(SnapshotBuilder::new(ConfigGuard::from_options(
                &opts.decide,
            ))),
        }
    }

    /// Reads and validates the snapshot at `path` for warm-starting
    /// every worker session. Returns the number of entries available.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; the batch then starts cold.
    pub fn load_file(
        &mut self,
        path: &Path,
        opts: &SessionOptions,
    ) -> Result<usize, SnapshotError> {
        let snap = snapshot::load(path, &ConfigGuard::from_options(&opts.decide))?;
        let entries = snap.entry_count();
        self.loaded = Some(snap);
        Ok(entries)
    }

    /// Writes the merged warm state of every drained worker to `path`
    /// (atomic temp-file + rename). Returns the number of entries
    /// written (deduplicated across workers and chunks).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be written.
    pub fn write_to(&self, path: &Path) -> Result<usize, SnapshotError> {
        let builder = self.merge.lock().expect("snapshot merge lock poisoned");
        builder.write_to(path)?;
        Ok(builder.entry_count())
    }
}

/// [`run_batch_parallel`] plus worker-level accounting (the merged
/// [`BatchTrace`]) and optional snapshot plumbing: with a
/// [`BatchSnapshot`], every worker session warm-starts from the loaded
/// entries and exports its caches into the shared builder when its
/// shard drains. Callers stream the same `BatchSnapshot` through every
/// chunk and write it once at EOF.
#[must_use]
pub fn run_batch_parallel_traced(
    queries: &[Query],
    opts: &SessionOptions,
    jobs: usize,
    snapshot: Option<&BatchSnapshot>,
) -> (Vec<Response>, BatchTrace) {
    let make_session = || {
        let mut session = Session::with_options(opts.clone());
        if let Some(snap) = snapshot.and_then(|s| s.loaded.as_ref()) {
            session.load_snapshot(snap);
        }
        session
    };
    let drain_session = |session: &mut Session| {
        if let Some(s) = snapshot {
            let mut builder = s.merge.lock().expect("snapshot merge lock poisoned");
            session.export_snapshot_into(&mut builder);
        }
        BatchTrace {
            engine_recycles: session.engine_recycles(),
            analysis: session.analysis_stats(),
            optimize: session.optimize_stats(),
            snapshot: session.snapshot_stats(),
        }
    };
    let jobs = jobs.clamp(1, queries.len().max(1));
    if jobs <= 1 {
        let mut session = make_session();
        let responses = session.run_all(queries);
        let trace = drain_session(&mut session);
        return (responses, trace);
    }
    let mut slots: Vec<Option<Response>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    let mut trace = BatchTrace::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                scope.spawn(move || {
                    let mut session = make_session();
                    let answered = queries
                        .iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(jobs)
                        .map(|(i, q)| (i, session.run(q)))
                        .collect::<Vec<(usize, Response)>>();
                    (answered, drain_session(&mut session))
                })
            })
            .collect();
        for handle in handles {
            let (answered, worker_trace) = handle.join().expect("batch worker panicked");
            trace.engine_recycles += worker_trace.engine_recycles;
            trace.analysis = trace.analysis.merged(&worker_trace.analysis);
            trace.optimize = trace.optimize.merged(&worker_trace.optimize);
            trace.snapshot = trace.snapshot.merged(&worker_trace.snapshot);
            for (i, resp) in answered {
                slots[i] = Some(resp);
            }
        }
    });
    let responses = slots
        .into_iter()
        .map(|slot| slot.expect("every query answered exactly once"))
        .collect();
    (responses, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nka_and_ka_verdicts_disagree_on_idempotence() {
        let mut session = Session::new();
        let nka = session.run(&Query::nka_eq("p + p", "p").unwrap());
        assert_eq!(nka.verdict, Verdict::Refuted);
        let ka = session.run(&Query::ka_eq("p + p", "p").unwrap());
        assert_eq!(ka.verdict, Verdict::Holds);
        assert_eq!(session.queries_run(), 2);
        // Both queries ran on the one engine: each side compiled once.
        assert_eq!(session.stats().compile_misses, 2);
    }

    #[test]
    fn series_query_reports_terms() {
        let mut session = Session::new();
        let resp = session.run(&Query::series("a + a", 2).unwrap());
        let Verdict::Series { max_len, terms } = &resp.verdict else {
            panic!("expected a series verdict, got {:?}", resp.verdict);
        };
        assert_eq!(*max_len, 2);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, ExtNat::from(2u64));
        // Series evaluation never touches the engine.
        assert_eq!(resp.stats_delta, DeciderStats::default());
    }

    #[test]
    fn prove_query_returns_a_checkable_proof() {
        let mut session = Session::new();
        let query = Query::prove("m1 (m0 p + m1)", "m1", &["m1 m1 = m1", "m1 m0 = 0"]).unwrap();
        let resp = session.run(&query);
        let Verdict::Proved { proof_size } = resp.verdict else {
            panic!("expected a proof, got {:?}", resp.verdict);
        };
        assert!(proof_size > 0);
        let proof = resp.proof.expect("proof object present");
        let Query::Prove { lhs, rhs, hyps } = &query else {
            unreachable!()
        };
        let judgments: Vec<Judgment> = hyps.iter().map(|(l, r)| Judgment::Eq(*l, *r)).collect();
        assert_eq!(proof.check(&judgments).unwrap(), Judgment::eq(lhs, rhs));
    }

    #[test]
    fn exhausted_search_on_a_theorem_reports_holds_by_decision() {
        // Sliding is a theorem but unprovable by the bare rewrite search
        // (no rules registered beyond hypotheses, of which there are none).
        let mut session = Session::new();
        let resp = session.run(&Query::prove::<&str>("(p q)* p", "p (q p)*", &[]).unwrap());
        assert_eq!(
            resp.verdict,
            Verdict::Exhausted {
                holds_by_decision: Some(true)
            }
        );
    }

    #[test]
    fn oversized_series_requests_are_capped_not_evaluated() {
        // (a + b)* over length ≤ 63 spans 2^64 − 1 words; evaluating it
        // would OOM. The session must answer with a budget verdict
        // instead (a wire client controls max_len).
        let mut session = Session::new();
        let resp = session.run(&Query::series("(a + b)*", 63).unwrap());
        let Verdict::BudgetExhausted { detail } = &resp.verdict else {
            panic!("expected a budget verdict, got {:?}", resp.verdict);
        };
        assert!(detail.contains("session cap"), "{detail}");
        // A single-symbol alphabet with a pathological max_len is also
        // rejected promptly rather than looping for 2^64 iterations.
        let resp = session.run(&Query::series("a*", usize::MAX).unwrap());
        assert!(matches!(resp.verdict, Verdict::BudgetExhausted { .. }));
        // In-cap requests still answer.
        let resp = session.run(&Query::series("(a + b)*", 5).unwrap());
        assert!(matches!(resp.verdict, Verdict::Series { .. }));
    }

    #[test]
    fn budget_exhaustion_is_a_verdict() {
        let mut session = Session::with_budget(1);
        let resp = session.run(&Query::nka_eq("1* a", "1* a a").unwrap());
        let Verdict::BudgetExhausted { detail } = &resp.verdict else {
            panic!("expected budget exhaustion, got {:?}", resp.verdict);
        };
        assert!(detail.contains("out of budget"), "{detail}");
        assert!(!resp.verdict.is_positive());
    }

    #[test]
    fn parse_errors_carry_field_and_span() {
        let err = Query::nka_eq("a + ?", "a").unwrap_err();
        let ApiError::Parse { field, src, err } = &err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert_eq!(*field, "lhs");
        assert_eq!(src, "a + ?");
        assert_eq!(err.span(), (4, 5));
        let rendered = ApiError::Parse {
            field,
            src: src.clone(),
            err: err.clone(),
        }
        .render();
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn malformed_hypotheses_are_rejected() {
        let err = Query::prove("a", "a", &["no equals sign"]).unwrap_err();
        assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn responses_carry_term_size_accounting() {
        let mut session = Session::new();
        // p + p against p: 3 + 1 tree nodes, 2 distinct subterms
        // ({p, p + p}; `p` is shared across both sides by interning).
        let resp = session.run(&Query::nka_eq("p + p", "p").unwrap());
        assert_eq!(resp.expr_nodes, 4);
        assert_eq!(resp.expr_subterms, 2);
        assert_eq!(session.expr_nodes_seen(), 4);
        assert_eq!(session.expr_subterms_seen(), 2);
        let resp = session.run(&Query::series("q*", 1).unwrap());
        assert_eq!(resp.expr_nodes, 2);
        assert_eq!(resp.expr_subterms, 2);
        assert_eq!(session.expr_nodes_seen(), 6);
        assert_eq!(session.queries_run(), 2);
    }

    #[test]
    fn recycling_preserves_cumulative_stats_and_verdicts() {
        let mut session = Session::with_options(SessionOptions {
            recycle_after_queries: Some(2),
            ..SessionOptions::default()
        });
        let q = Query::nka_eq("(p q)* p", "p (q p)*").unwrap();
        for _ in 0..5 {
            assert_eq!(session.run(&q).verdict, Verdict::Holds);
        }
        // Limit 2: engines retire before queries 3 and 5.
        assert_eq!(session.queries_run(), 5);
        assert_eq!(session.engine_recycles(), 2);
        // Cumulative stats span all engine generations…
        assert_eq!(session.stats().nka_queries, 5);
        // …and each fresh engine recompiled the pair (2 sides × 3 gens).
        assert_eq!(session.stats().compile_misses, 6);
        let mem = session.memory_stats();
        assert_eq!(mem.engine_recycles, 2);
        assert_eq!(mem.queries_run, 5);
        assert_eq!(
            mem.arena_resident_nodes,
            mem.arena_persistent_nodes + mem.scratch_live_nodes
        );
    }

    #[test]
    fn prove_queries_reclaim_their_search_scratch() {
        let mut session = Session::new();
        let before = session.memory_stats();
        // Unique atoms: no sibling test pre-interns this search space.
        let q = Query::prove(
            "apiU (apiU apiM)",
            "apiM (apiU apiU)",
            &["apiU apiM = apiM apiU"],
        )
        .unwrap();
        let resp = session.run(&q);
        assert!(matches!(resp.verdict, Verdict::Proved { .. }));
        let after = session.memory_stats();
        assert!(after.scratch_retired_total > before.scratch_retired_total);
        assert!(after.scratch_scopes_retired > before.scratch_scopes_retired);
        // The proof the caller got is fully persistent.
        let proof = resp.proof.expect("proof object");
        let _ = proof.map_exprs(&mut |e| {
            assert!(!e.id().is_scratch());
            *e
        });
    }

    #[test]
    fn prog_eq_decides_program_equivalence() {
        let mut session = Session::new();
        // skip-elimination and reassociation are NKA-equalities.
        let q = Query::prog_eq("qubits 1; skip; h q0; x q0", "qubits 1; h q0; skip; x q0").unwrap();
        let resp = session.run(&q);
        let Verdict::ProgEq {
            holds,
            enc_p,
            enc_q,
        } = &resp.verdict
        else {
            panic!("expected a ProgEq verdict, got {:?}", resp.verdict);
        };
        assert!(*holds);
        assert_eq!(enc_p, "1 h_q0 x_q0");
        assert_eq!(enc_q, "h_q0 1 x_q0");
        assert!(resp.verdict.is_positive());
        assert_eq!(resp.verdict.name(), "holds");
        // h ≠ x as encodings (and as programs).
        let q = Query::prog_eq("qubits 1; h q0", "qubits 1; x q0").unwrap();
        let resp = session.run(&q);
        assert!(matches!(resp.verdict, Verdict::ProgEq { holds: false, .. }));
        assert_eq!(resp.verdict.name(), "refuted");
        // Loop unrolling: while ≡ its first unfolding (star fixpoint).
        let q = Query::prog_eq(
            "qubits 1; while q0 { h q0 }",
            "qubits 1; if q0 { h q0; while q0 { h q0 } }",
        )
        .unwrap();
        assert!(matches!(
            session.run(&q).verdict,
            Verdict::ProgEq { holds: true, .. }
        ));
    }

    #[test]
    fn prog_eq_scratch_is_reclaimed_and_equal_encodings_promote() {
        let mut session = Session::new();
        // Distinct refuted comparisons leave no persistent footprint.
        let refuted = Query::prog_eq(
            "qubits 2; h q0; cnot q0 q1; z q1",
            "qubits 2; h q1; cnot q1 q0; s q0",
        )
        .unwrap();
        let resp = session.run(&refuted);
        assert!(matches!(resp.verdict, Verdict::ProgEq { holds: false, .. }));
        let before = nka_syntax::interned_expr_count();
        for _ in 0..20 {
            let resp = session.run(&refuted);
            assert!(matches!(resp.verdict, Verdict::ProgEq { holds: false, .. }));
        }
        assert_eq!(
            nka_syntax::interned_expr_count(),
            before,
            "refuted ProgEq queries must not grow the persistent arena"
        );
        // An equal pair promotes its encodings once; repeats hit the
        // verdict cache on the persistent ids.
        let equal = Query::prog_eq("qubits 2; cz q0 q1; skip", "qubits 2; cz q0 q1").unwrap();
        let first = session.run(&equal);
        assert!(matches!(first.verdict, Verdict::ProgEq { holds: true, .. }));
        let promoted = nka_syntax::interned_expr_count();
        // Run 2 re-encodes onto the *promoted* (persistent) ids. The
        // scratch-keyed verdict from run 1 was purged with its scope,
        // but promotion seeded the verdict under the persistent ids,
        // so the repeat is already a cache hit…
        let second = session.run(&equal);
        assert!(matches!(
            second.verdict,
            Verdict::ProgEq { holds: true, .. }
        ));
        assert_eq!(
            second.stats_delta.answer_hits, 1,
            "{:?}",
            second.stats_delta
        );
        // …and every later run of the pair stays a pure hit.
        let warm = session.run(&equal);
        assert!(matches!(warm.verdict, Verdict::ProgEq { holds: true, .. }));
        assert_eq!(
            nka_syntax::interned_expr_count(),
            promoted,
            "a repeated equal pair must re-resolve to its promoted encodings"
        );
        assert_eq!(warm.stats_delta.answer_hits, 1, "{:?}", warm.stats_delta);
        assert_eq!(warm.stats_delta.compile_misses, 0, "{:?}", warm.stats_delta);
        // Program queries report AST nodes, no arena subterms.
        assert!(warm.expr_nodes > 0);
        assert_eq!(warm.expr_subterms, 0);
    }

    #[test]
    fn session_options_builder_validates_and_defaults() {
        // An all-defaults build is exactly `Default`.
        let built = SessionOptions::builder().build().unwrap();
        let dflt = SessionOptions::default();
        assert_eq!(built.prove_max_expansions, dflt.prove_max_expansions);
        assert_eq!(built.series_max_words, dflt.series_max_words);
        assert_eq!(built.recycle_after_queries, dflt.recycle_after_queries);
        assert_eq!(built.snapshot_path, None);
        // Zero budgets that would wedge or no-op the session are
        // rejected with a typed error, not accepted silently. (A zero
        // *expansion* budget stays legal: it only disables the proof
        // search, and prove queries still classify.)
        assert!(SessionOptions::builder()
            .prove_max_expansions(0)
            .build()
            .is_ok());
        for result in [
            SessionOptions::builder().prove_max_term_size(0).build(),
            SessionOptions::builder().series_max_words(0).build(),
            SessionOptions::builder()
                .recycle_after_queries(Some(0))
                .build(),
        ] {
            let err = result.unwrap_err();
            assert!(matches!(err, ApiError::Malformed { .. }), "{err:?}");
        }
        // In-range settings all land.
        let opts = SessionOptions::builder()
            .max_dfa_states(7)
            .recycle_after_queries(Some(3))
            .snapshot_path(Some(PathBuf::from("/tmp/warm.nkasnap")))
            .build()
            .unwrap();
        assert_eq!(opts.decide.max_dfa_states, 7);
        assert_eq!(opts.recycle_after_queries, Some(3));
        assert!(opts.snapshot_path.is_some());
    }

    #[test]
    fn session_snapshot_round_trip_restores_verdicts_and_counts_tiered_hits() {
        let dir = std::env::temp_dir().join(format!("nka-session-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.nkasnap");

        // Warm a session: an NKA refutation, a KA equality, and an
        // analyze pass (certificate cache), then dump.
        let nka_q = Query::nka_eq("p + p", "p").unwrap();
        let ka_q = Query::ka_eq("p + p", "p").unwrap();
        let analyze_q = Query::analyze("qubits 1; h q0; x q0", &["redundant_fragment"]).unwrap();
        let mut warm = Session::new();
        let cold_nka = warm.run(&nka_q).verdict;
        let cold_ka = warm.run(&ka_q).verdict;
        let cold_analysis = warm.run(&analyze_q).verdict;
        let exported = warm.save_snapshot(&path).unwrap();
        assert!(exported > 0, "warm session must export entries");
        assert_eq!(warm.snapshot_stats().dumps, 1);

        // A fresh session restores it and answers every query from the
        // snapshot tier: verdicts identical, zero new compiles, and the
        // tiered counters attribute the hits to the snapshot.
        let mut restored = Session::new();
        let n = restored.load_snapshot_file(&path).unwrap();
        assert_eq!(n as u64, restored.snapshot_stats().restored_entries);
        assert!(n > 0);
        assert_eq!(restored.run(&nka_q).verdict, cold_nka);
        assert_eq!(restored.run(&ka_q).verdict, cold_ka);
        assert_eq!(restored.run(&analyze_q).verdict, cold_analysis);
        let stats = restored.snapshot_stats();
        assert!(stats.snapshot_hits >= 2, "{stats:?}");
        assert!(stats.cert_snapshot_hits >= 1, "{stats:?}");
        assert_eq!(stats.load_warnings, 0, "{stats:?}");
        assert_eq!(restored.stats().compile_misses, 0);
        assert_eq!(
            stats.loaded_created_unix_secs,
            Some(
                snapshot::Snapshot::read(&path)
                    .unwrap()
                    .summary()
                    .created_unix_secs
            )
        );

        // A session whose cache-relevant options differ refuses the
        // snapshot wholesale — cold, one warning, no wrong answers.
        let mismatched_opts = SessionOptions::builder()
            .decide(DecideOptions {
                float_ablation: true,
                ..DecideOptions::default()
            })
            .build()
            .unwrap();
        let mut mismatched = Session::with_options(mismatched_opts);
        let err = mismatched.load_snapshot_file(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::ConfigMismatch), "{err:?}");
        let stats = mismatched.snapshot_stats();
        assert_eq!(stats.restored_entries, 0, "{stats:?}");
        assert_eq!(stats.load_warnings, 1, "{stats:?}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recycle_with_snapshot_path_dumps_before_discarding() {
        let dir = std::env::temp_dir().join(format!("nka-recycle-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recycle.nkasnap");
        let opts = SessionOptions::builder()
            .recycle_after_queries(Some(2))
            .snapshot_path(Some(path.clone()))
            .build()
            .unwrap();
        let mut session = Session::with_options(opts);
        let q = Query::nka_eq("p + p", "p").unwrap();
        // Three queries with a limit of two: the third triggers a
        // recycle, which dumps the retiring engine's caches first.
        for _ in 0..3 {
            let _ = session.run(&q);
        }
        assert_eq!(session.engine_recycles(), 1);
        assert_eq!(session.snapshot_stats().dumps, 1);
        let snap = snapshot::Snapshot::read(&path).unwrap();
        assert!(snap.summary().entry_count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hoare_checks_wlp_and_carries_the_encoded_inequality() {
        let mut session = Session::new();
        // {|1⟩⟨1|} x {|1⟩⟨1|'s image} — X maps |1⟩ to |0⟩.
        let good = Query::hoare("ket(1)", "qubits 1; x q0", "ket(0)").unwrap();
        let resp = session.run(&good);
        let Verdict::Hoare { holds, encoded } = &resp.verdict else {
            panic!("expected a Hoare verdict, got {:?}", resp.verdict);
        };
        assert!(*holds);
        assert_eq!(encoded, "x_q0 q1_neg ≤ q0_neg");
        // A false triple: X does not fix |1⟩.
        let bad = Query::hoare("ket(1)", "qubits 1; x q0", "ket(1)").unwrap();
        let resp = session.run(&bad);
        let Verdict::Hoare { holds, encoded } = &resp.verdict else {
            panic!("expected a Hoare verdict, got {:?}", resp.verdict);
        };
        assert!(!*holds);
        // pre == post here, so both sides share the q0 terms.
        assert_eq!(encoded, "x_q0 q0_neg ≤ q0_neg");
        // Identity/zero effects use the e/0 special terms.
        let top = Query::hoare("I", "qubits 1; abort", "0").unwrap();
        let resp = session.run(&top);
        let Verdict::Hoare { holds, encoded } = &resp.verdict else {
            panic!("expected a Hoare verdict, got {:?}", resp.verdict);
        };
        assert!(*holds, "abort satisfies every partial-correctness triple");
        assert_eq!(encoded, "0 e ≤ 0");
        // Hoare queries never touch the decision engine.
        assert_eq!(resp.stats_delta, DeciderStats::default());
    }

    #[test]
    fn program_query_construction_errors_are_typed() {
        // Parse errors carry field + span.
        let err = Query::prog_eq("qubits 1; frob q0", "qubits 1; skip").unwrap_err();
        let ApiError::ParseProgram { field, err, .. } = &err else {
            panic!("expected a program parse error, got {err:?}");
        };
        assert_eq!(*field, "p");
        assert_eq!(err.span(), (10, 14));
        // Qubit-count mismatch is malformed, not a verdict.
        let err = Query::prog_eq("qubits 1; skip", "qubits 2; skip").unwrap_err();
        assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
        // Effects parse against the program's qubit count.
        let err = Query::hoare("ket(01)", "qubits 1; skip", "I").unwrap_err();
        let ApiError::ParseProgram { field, .. } = &err else {
            panic!("expected a program parse error, got {err:?}");
        };
        assert_eq!(*field, "pre");
        assert!(err.render().contains('^'), "{}", err.render());
        // Non-effects are rejected at construction.
        let err = Query::hoare("I", "qubits 1; skip", "2 I").unwrap_err();
        assert!(matches!(err, ApiError::ParseProgram { field: "post", .. }));
    }

    #[test]
    fn parallel_batch_matches_single_session_verdicts() {
        let queries: Vec<Query> = [
            Query::nka_eq("(p q)* p", "p (q p)*").unwrap(),
            Query::ka_eq("p + p", "p").unwrap(),
            Query::nka_eq("p + p", "p").unwrap(),
            Query::series("(a + a)*", 3).unwrap(),
            Query::prove("m1 (m0 p + m1)", "m1", &["m1 m1 = m1", "m1 m0 = 0"]).unwrap(),
            Query::nka_eq("1 + p p*", "p*").unwrap(),
            Query::nka_eq("(p q)* p", "p (q p)*").unwrap(), // repeat
            Query::prog_eq("qubits 1; skip; h q0", "qubits 1; h q0").unwrap(),
            Query::prog_eq("qubits 1; h q0", "qubits 1; x q0").unwrap(),
            Query::hoare("ket(1)", "qubits 1; x q0", "ket(0)").unwrap(),
        ]
        .into_iter()
        .collect();
        let sequential = Session::new().run_all(&queries);
        for jobs in [1, 2, 4, 16, 0] {
            let parallel = run_batch_parallel(&queries, &SessionOptions::default(), jobs);
            assert_eq!(parallel.len(), queries.len());
            for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
                assert_eq!(seq.verdict, par.verdict, "query {i} at jobs={jobs}");
                assert_eq!(seq.kind, par.kind, "query {i} at jobs={jobs}");
                assert_eq!(seq.expr_nodes, par.expr_nodes, "query {i} at jobs={jobs}");
            }
        }
    }

    #[test]
    fn analyze_emits_tiered_findings_with_replayable_certificates() {
        let mut session = Session::new();
        // One program hitting many passes: unused q1, an unreachable
        // tail behind abort (and its certified abort-sink twin), a dead
        // then-branch, a constant guard, a self-inverse pair, metrics.
        let src = "qubits 2; init q0; if q0 { abort } else { h q0 }; h q0; h q0";
        let resp = session.run(&Query::analyze::<&str>(src, &[]).unwrap());
        assert_eq!(resp.kind, QueryKind::Analyze);
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!("expected an analysis verdict, got {:?}", resp.verdict);
        };
        let passes: HashSet<&str> = findings.iter().map(|f| f.pass).collect();
        for expected in [
            "unused_qubit",
            "constant_guard",
            "self_inverse_pair",
            "dead_branch",
            "metrics",
        ] {
            assert!(
                passes.contains(expected),
                "missing {expected}: {findings:?}"
            );
        }
        // Warnings present ⇒ negative verdict (CLI exit 1).
        assert!(!resp.verdict.is_positive());
        assert_eq!(resp.verdict.name(), "analysis");
        // Findings arrive sorted by span start.
        assert!(findings.windows(2).all(|w| w[0].span.0 <= w[1].span.0));
        // Every certificate replays to `holds` on a fresh session.
        let mut fresh = Session::new();
        for f in findings {
            let Some(cert) = &f.certificate else { continue };
            assert_eq!(cert.expect, "holds");
            let replay = fresh.run(&Query::prog_eq(&cert.p, &cert.q).unwrap());
            assert!(
                matches!(replay.verdict, Verdict::ProgEq { holds: true, .. }),
                "certificate of {:?} failed to replay: {:?}",
                f.pass,
                replay.verdict
            );
        }
        // The dead then-branch is certified, the healthy else is not.
        let dead: Vec<_> = findings
            .iter()
            .filter(|f| f.pass == "dead_branch")
            .collect();
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].certificate.is_some());
        // Counters moved: Tier B ran, findings bucketed per pass.
        let stats = session.analysis_stats();
        assert!(stats.tier_b_decides >= 1);
        assert_eq!(stats.findings_total(), findings.len() as u64);
        assert!(!stats.is_zero());
    }

    #[test]
    fn analyze_pass_filter_and_unknown_pass_rejection() {
        let mut session = Session::new();
        let src = "qubits 1; h q0; h q0";
        // metrics-only filter: exactly one finding.
        let resp = session.run(&Query::analyze(src, &["metrics"]).unwrap());
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!("expected analysis, got {:?}", resp.verdict);
        };
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pass, "metrics");
        // Info-only findings keep the verdict positive.
        assert!(resp.verdict.is_positive());
        // Unknown pass name is malformed, with the candidates listed.
        let err = Query::analyze(src, &["frobnicate"]).unwrap_err();
        let ApiError::Malformed(msg) = &err else {
            panic!("expected Malformed, got {err:?}");
        };
        assert!(
            msg.contains("frobnicate") && msg.contains("metrics"),
            "{msg}"
        );
        // Parse errors carry field + span like every program query.
        let err = Query::analyze::<&str>("qubits 1; frob q0", &[]).unwrap_err();
        assert!(matches!(err, ApiError::ParseProgram { field: "prog", .. }));
    }

    #[test]
    fn analyze_uses_certificate_cache_and_never_promotes() {
        let mut session = Session::new();
        // Refuted redundant-fragment check only (no while/abort): the
        // one Tier B decide is a cache miss, the repeat a cache hit.
        let q = Query::analyze("qubits 1; h q0; x q0", &["redundant_fragment"]).unwrap();
        let _ = session.run(&q);
        assert_eq!(session.analysis_stats().tier_b_decides, 1);
        assert_eq!(session.analysis_stats().cert_cache_hits, 0);
        let before = nka_syntax::interned_expr_count();
        let resp = session.run(&q);
        assert_eq!(session.analysis_stats().tier_b_decides, 1);
        assert_eq!(session.analysis_stats().cert_cache_hits, 1);
        // No finding: the program is not skip.
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!("{:?}", resp.verdict)
        };
        assert!(findings.is_empty(), "{findings:?}");
        // Analyses never grow the persistent arena — not even ones
        // whose checks hold (loop-peeling always does).
        let peel = Query::analyze("qubits 1; while q0 { h q0 }", &["peephole"]).unwrap();
        let resp = session.run(&peel);
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!("{:?}", resp.verdict)
        };
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(
            findings[0].certificate.as_ref().unwrap().rule,
            Some("loop-peeling")
        );
        assert_eq!(
            nka_syntax::interned_expr_count(),
            before,
            "analyze must leave the persistent arena untouched"
        );
    }

    #[test]
    fn parallel_batch_budget_verdicts_are_deterministic() {
        let queries = vec![
            Query::nka_eq("1* a", "1* a a").unwrap(),
            Query::nka_eq("p", "p").unwrap(),
        ];
        let opts = SessionOptions {
            decide: DecideOptions {
                max_dfa_states: 1,
                // Forced off so even `p = p` reaches the 1-state subset
                // construction (the fast path would answer it without
                // consuming DFA budget).
                starfree_max_words: 0,
                ..DecideOptions::default()
            },
            ..SessionOptions::default()
        };
        let responses = run_batch_parallel(&queries, &opts, 2);
        assert!(matches!(
            responses[0].verdict,
            Verdict::BudgetExhausted { .. }
        ));
        // With a 1-state budget even `p = p` overflows — the point is
        // the worker answers rather than panics, in input order.
        assert!(matches!(
            responses[1].verdict,
            Verdict::BudgetExhausted { .. }
        ));
    }
}
