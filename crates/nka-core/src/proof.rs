//! Proof objects and the proof checker.
//!
//! A [`Proof`] is a tree whose nodes are the inference rules of NKA's
//! equational/inequational logic (Figure 3): equational logic (reflexivity,
//! symmetry, transitivity, congruence), axiom instances, the partial-order
//! laws, monotonicity of `+` and `·`, the star-unfolding axiom, the two
//! inductive star rules, hypothesis references (Horn clauses, Corollary
//! 4.3), and a `BySemiring` bridge for the decidable semiring-plus-
//! congruence fragment (see [`crate::semiring_nf`]).
//!
//! Checking ([`Proof::check`]) computes the judgment a proof establishes,
//! failing loudly if any rule is misapplied. Every theorem shipped in this
//! repository is re-checked from scratch in the test suite.

use crate::axioms::{EqAxiom, LeAxiom};
use crate::judgment::Judgment;
use crate::semiring_nf::semiring_equal;
use nka_syntax::{Expr, ExprNode};
use std::fmt;

/// Error raised when a proof fails to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofError {
    rule: &'static str,
    detail: String,
}

impl ProofError {
    fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        ProofError {
            rule,
            detail: detail.into(),
        }
    }

    /// The rule at which checking failed.
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// Builds an error for a named derived rule or builder step.
    pub fn custom(rule: &'static str, detail: impl Into<String>) -> Self {
        ProofError::new(rule, detail)
    }
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} step: {}", self.rule, self.detail)
    }
}

impl std::error::Error for ProofError {}

/// A proof tree in the NKA calculus.
///
/// See the [module documentation](self) for the rule inventory and
/// [`crate::theorems`] for substantial examples.
#[derive(Debug, Clone, PartialEq)]
pub enum Proof {
    /// `⊢ e = e`
    Refl(Expr),
    /// From `e = f` conclude `f = e`.
    Sym(Box<Proof>),
    /// From `e = f` and `f = g` conclude `e = g`.
    Trans(Box<Proof>, Box<Proof>),
    /// From `e₁ = f₁` and `e₂ = f₂` conclude `e₁ + e₂ = f₁ + f₂`.
    CongAdd(Box<Proof>, Box<Proof>),
    /// From `e₁ = f₁` and `e₂ = f₂` conclude `e₁ e₂ = f₁ f₂`.
    CongMul(Box<Proof>, Box<Proof>),
    /// From `e = f` conclude `e* = f*`.
    CongStar(Box<Proof>),
    /// An instance of an equational axiom (Figure 3 semiring laws).
    Axiom(EqAxiom, Vec<Expr>),
    /// An instance of an inequational axiom (`1 + p p* ≤ p*`).
    AxiomLe(LeAxiom, Vec<Expr>),
    /// `⊢ e = f` when both sides have the same canonical form in the
    /// semiring-plus-congruence fragment — a sound, decidable macro-rule
    /// standing for a (mechanically constructible) chain of semiring axiom
    /// and congruence steps.
    BySemiring(Expr, Expr),
    /// `⊢ e ≤ e`
    LeRefl(Expr),
    /// From `e ≤ f` and `f ≤ g` conclude `e ≤ g`.
    LeTrans(Box<Proof>, Box<Proof>),
    /// From `e ≤ f` and `f ≤ e` conclude `e = f`.
    AntiSym(Box<Proof>, Box<Proof>),
    /// From `e = f` conclude `e ≤ f`.
    EqToLe(Box<Proof>),
    /// From `p ≤ q` and `r ≤ s` conclude `p + r ≤ q + s`.
    MonoAdd(Box<Proof>, Box<Proof>),
    /// From `p ≤ q` and `r ≤ s` conclude `p r ≤ q s`.
    MonoMul(Box<Proof>, Box<Proof>),
    /// From `q + p r ≤ r` conclude `p* q ≤ r` (inductive star law).
    StarIndLeft(Box<Proof>),
    /// From `q + r p ≤ r` conclude `q p* ≤ r` (inductive star law).
    StarIndRight(Box<Proof>),
    /// The `i`-th hypothesis of the enclosing Horn clause.
    Hyp(usize),
}

impl Proof {
    /// Checks the proof under the given hypotheses and returns the
    /// established judgment.
    ///
    /// # Errors
    ///
    /// Returns a [`ProofError`] describing the first misapplied rule.
    pub fn check(&self, hyps: &[Judgment]) -> Result<Judgment, ProofError> {
        match self {
            Proof::Refl(e) => Ok(Judgment::eq(e, e)),
            Proof::Sym(p) => match p.check(hyps)? {
                Judgment::Eq(l, r) => Ok(Judgment::Eq(r, l)),
                j @ Judgment::Le(..) => Err(ProofError::new(
                    "sym",
                    format!("premise must be an equation, got {j}"),
                )),
            },
            Proof::Trans(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Eq(a, b), Judgment::Eq(b2, c)) if b == b2 => {
                        Ok(Judgment::Eq(*a, *c))
                    }
                    _ => Err(ProofError::new(
                        "trans",
                        format!("premises do not chain: {j1} then {j2}"),
                    )),
                }
            }
            Proof::CongAdd(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Eq(a, b), Judgment::Eq(c, d)) => {
                        Ok(Judgment::Eq(a.add(c), b.add(d)))
                    }
                    _ => Err(ProofError::new(
                        "cong-add",
                        format!("premises must be equations: {j1}, {j2}"),
                    )),
                }
            }
            Proof::CongMul(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Eq(a, b), Judgment::Eq(c, d)) => {
                        Ok(Judgment::Eq(a.mul(c), b.mul(d)))
                    }
                    _ => Err(ProofError::new(
                        "cong-mul",
                        format!("premises must be equations: {j1}, {j2}"),
                    )),
                }
            }
            Proof::CongStar(p) => match p.check(hyps)? {
                Judgment::Eq(a, b) => Ok(Judgment::Eq(a.star(), b.star())),
                j @ Judgment::Le(..) => Err(ProofError::new(
                    "cong-star",
                    format!("premise must be an equation, got {j}"),
                )),
            },
            Proof::Axiom(ax, args) => {
                if args.len() < ax.arity() {
                    return Err(ProofError::new(
                        "axiom",
                        format!("axiom {ax} needs {} arguments", ax.arity()),
                    ));
                }
                let (l, r) = ax.instantiate(args);
                Ok(Judgment::Eq(l, r))
            }
            Proof::AxiomLe(ax, args) => {
                if args.is_empty() {
                    return Err(ProofError::new(
                        "axiom-le",
                        format!("axiom {ax} needs 1 argument"),
                    ));
                }
                let (l, r) = ax.instantiate(args);
                Ok(Judgment::Le(l, r))
            }
            Proof::BySemiring(l, r) => {
                if semiring_equal(l, r) {
                    Ok(Judgment::Eq(*l, *r))
                } else {
                    Err(ProofError::new(
                        "by-semiring",
                        format!("{l} and {r} differ in the semiring fragment"),
                    ))
                }
            }
            Proof::LeRefl(e) => Ok(Judgment::le(e, e)),
            Proof::LeTrans(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Le(a, b), Judgment::Le(b2, c)) if b == b2 => {
                        Ok(Judgment::Le(*a, *c))
                    }
                    _ => Err(ProofError::new(
                        "le-trans",
                        format!("premises do not chain: {j1} then {j2}"),
                    )),
                }
            }
            Proof::AntiSym(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Le(a, b), Judgment::Le(b2, a2)) if a == a2 && b == b2 => {
                        Ok(Judgment::Eq(*a, *b))
                    }
                    _ => Err(ProofError::new(
                        "antisym",
                        format!("premises are not opposite inequations: {j1}, {j2}"),
                    )),
                }
            }
            Proof::EqToLe(p) => match p.check(hyps)? {
                Judgment::Eq(a, b) => Ok(Judgment::Le(a, b)),
                j @ Judgment::Le(..) => Err(ProofError::new(
                    "eq-to-le",
                    format!("premise must be an equation, got {j}"),
                )),
            },
            Proof::MonoAdd(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Le(a, b), Judgment::Le(c, d)) => {
                        Ok(Judgment::Le(a.add(c), b.add(d)))
                    }
                    _ => Err(ProofError::new(
                        "mono-add",
                        format!("premises must be inequations: {j1}, {j2}"),
                    )),
                }
            }
            Proof::MonoMul(p1, p2) => {
                let (j1, j2) = (p1.check(hyps)?, p2.check(hyps)?);
                match (&j1, &j2) {
                    (Judgment::Le(a, b), Judgment::Le(c, d)) => {
                        Ok(Judgment::Le(a.mul(c), b.mul(d)))
                    }
                    _ => Err(ProofError::new(
                        "mono-mul",
                        format!("premises must be inequations: {j1}, {j2}"),
                    )),
                }
            }
            Proof::StarIndLeft(p) => {
                let j = p.check(hyps)?;
                let Judgment::Le(lhs, r) = &j else {
                    return Err(ProofError::new(
                        "star-ind-left",
                        format!("premise must be an inequation, got {j}"),
                    ));
                };
                let ExprNode::Add(q, pr) = lhs.node() else {
                    return Err(ProofError::new(
                        "star-ind-left",
                        format!("premise LHS must be q + p r, got {lhs}"),
                    ));
                };
                let ExprNode::Mul(p_expr, r2) = pr.node() else {
                    return Err(ProofError::new(
                        "star-ind-left",
                        format!("premise LHS must be q + p r, got {lhs}"),
                    ));
                };
                if r2 != *r {
                    return Err(ProofError::new(
                        "star-ind-left",
                        format!("inner r {r2} differs from bound {r}"),
                    ));
                }
                Ok(Judgment::Le(p_expr.star().mul(&q), *r))
            }
            Proof::StarIndRight(p) => {
                let j = p.check(hyps)?;
                let Judgment::Le(lhs, r) = &j else {
                    return Err(ProofError::new(
                        "star-ind-right",
                        format!("premise must be an inequation, got {j}"),
                    ));
                };
                let ExprNode::Add(q, rp) = lhs.node() else {
                    return Err(ProofError::new(
                        "star-ind-right",
                        format!("premise LHS must be q + r p, got {lhs}"),
                    ));
                };
                let ExprNode::Mul(r2, p_expr) = rp.node() else {
                    return Err(ProofError::new(
                        "star-ind-right",
                        format!("premise LHS must be q + r p, got {lhs}"),
                    ));
                };
                if r2 != *r {
                    return Err(ProofError::new(
                        "star-ind-right",
                        format!("inner r {r2} differs from bound {r}"),
                    ));
                }
                Ok(Judgment::Le(q.mul(&p_expr.star()), *r))
            }
            Proof::Hyp(i) => hyps.get(*i).cloned().ok_or_else(|| {
                ProofError::new("hyp", format!("hypothesis index {i} out of range"))
            }),
        }
    }

    /// Checks a proof that uses no hypotheses.
    ///
    /// # Errors
    ///
    /// Returns a [`ProofError`] if the proof is invalid or references a
    /// hypothesis.
    pub fn check_closed(&self) -> Result<Judgment, ProofError> {
        self.check(&[])
    }

    /// Rebuilds the proof with every stored expression mapped through
    /// `f`. The map must be a *congruence on terms* (map equal
    /// expressions to equal expressions and commute with the term
    /// constructors) for the result to check to the mapped judgment —
    /// `nka_syntax::promote` is one such map, and promotion of
    /// scratch-built proofs into the persistent arena (before their
    /// `ScratchScope` retires) is what this hook exists for.
    #[must_use]
    pub fn map_exprs(&self, f: &mut dyn FnMut(&Expr) -> Expr) -> Proof {
        let mut map1 = |p: &Proof| Box::new(p.map_exprs(f));
        match self {
            Proof::Refl(e) => Proof::Refl(f(e)),
            Proof::LeRefl(e) => Proof::LeRefl(f(e)),
            Proof::BySemiring(l, r) => Proof::BySemiring(f(l), f(r)),
            Proof::Axiom(ax, args) => Proof::Axiom(*ax, args.iter().map(&mut *f).collect()),
            Proof::AxiomLe(ax, args) => Proof::AxiomLe(*ax, args.iter().map(&mut *f).collect()),
            Proof::Sym(p) => Proof::Sym(map1(p)),
            Proof::CongStar(p) => Proof::CongStar(map1(p)),
            Proof::EqToLe(p) => Proof::EqToLe(map1(p)),
            Proof::StarIndLeft(p) => Proof::StarIndLeft(map1(p)),
            Proof::StarIndRight(p) => Proof::StarIndRight(map1(p)),
            Proof::Trans(p, q) => Proof::Trans(map1(p), map1(q)),
            Proof::CongAdd(p, q) => Proof::CongAdd(map1(p), map1(q)),
            Proof::CongMul(p, q) => Proof::CongMul(map1(p), map1(q)),
            Proof::LeTrans(p, q) => Proof::LeTrans(map1(p), map1(q)),
            Proof::AntiSym(p, q) => Proof::AntiSym(map1(p), map1(q)),
            Proof::MonoAdd(p, q) => Proof::MonoAdd(map1(p), map1(q)),
            Proof::MonoMul(p, q) => Proof::MonoMul(map1(p), map1(q)),
            Proof::Hyp(i) => Proof::Hyp(*i),
        }
    }

    /// Transitivity combinator: `self` then `other`.
    pub fn then(self, other: Proof) -> Proof {
        Proof::Trans(Box::new(self), Box::new(other))
    }

    /// Symmetry combinator.
    pub fn flip(self) -> Proof {
        Proof::Sym(Box::new(self))
    }

    /// Weakening to an inequation.
    pub fn as_le(self) -> Proof {
        Proof::EqToLe(Box::new(self))
    }

    /// Le-transitivity combinator.
    pub fn le_then(self, other: Proof) -> Proof {
        Proof::LeTrans(Box::new(self), Box::new(other))
    }

    /// Number of rule applications in the tree (proof size metric).
    pub fn size(&self) -> usize {
        match self {
            Proof::Refl(_)
            | Proof::LeRefl(_)
            | Proof::Axiom(..)
            | Proof::AxiomLe(..)
            | Proof::BySemiring(..)
            | Proof::Hyp(_) => 1,
            Proof::Sym(p)
            | Proof::CongStar(p)
            | Proof::EqToLe(p)
            | Proof::StarIndLeft(p)
            | Proof::StarIndRight(p) => 1 + p.size(),
            Proof::Trans(a, b)
            | Proof::CongAdd(a, b)
            | Proof::CongMul(a, b)
            | Proof::LeTrans(a, b)
            | Proof::AntiSym(a, b)
            | Proof::MonoAdd(a, b)
            | Proof::MonoMul(a, b) => 1 + a.size() + b.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn refl_and_axiom() {
        let p = Proof::Refl(e("a b"));
        assert_eq!(p.check_closed().unwrap().to_string(), "a b = a b");
        let ax = Proof::Axiom(EqAxiom::AddComm, vec![e("x"), e("y z")]);
        assert_eq!(ax.check_closed().unwrap().to_string(), "x + y z = y z + x");
    }

    #[test]
    fn trans_requires_matching_middle() {
        let good = Proof::Axiom(EqAxiom::AddComm, vec![e("a"), e("b")])
            .then(Proof::Axiom(EqAxiom::AddComm, vec![e("b"), e("a")]));
        assert_eq!(good.check_closed().unwrap().to_string(), "a + b = a + b");
        let bad = Proof::Refl(e("a")).then(Proof::Refl(e("b")));
        assert!(bad.check_closed().is_err());
    }

    #[test]
    fn congruence_rules() {
        let inner = Proof::Axiom(EqAxiom::MulOneLeft, vec![e("a")]);
        let under_star = Proof::CongStar(Box::new(inner.clone()));
        assert_eq!(
            under_star.check_closed().unwrap().to_string(),
            "(1 a)* = a*"
        );
        let in_sum = Proof::CongAdd(Box::new(inner), Box::new(Proof::Refl(e("c"))));
        assert_eq!(
            in_sum.check_closed().unwrap().to_string(),
            "1 a + c = a + c"
        );
    }

    #[test]
    fn by_semiring_accepts_fragment_and_rejects_star_laws() {
        let ok = Proof::BySemiring(e("(a + b) c"), e("b c + a c"));
        assert!(ok.check_closed().is_ok());
        let bad = Proof::BySemiring(e("1 + a a*"), e("a*"));
        assert!(bad.check_closed().is_err());
    }

    #[test]
    fn star_induction_left_shape() {
        // Premise: 1 + a r ≤ r with r = a*. Conclusion a* 1 ≤ a*.
        let premise = Proof::AxiomLe(LeAxiom::StarUnfold, vec![e("a")]);
        let conc = Proof::StarIndLeft(Box::new(premise));
        assert_eq!(conc.check_closed().unwrap().to_string(), "a* 1 ≤ a*");
    }

    #[test]
    fn star_induction_rejects_malformed_premise() {
        // Premise a ≤ a is not of shape q + p r ≤ r.
        let bad = Proof::StarIndLeft(Box::new(Proof::LeRefl(e("a"))));
        assert!(bad.check_closed().is_err());
        // Premise (1 + a b) ≤ c: inner r=b ≠ bound c.
        let prem = Proof::EqToLe(Box::new(Proof::BySemiring(e("1 + a b"), e("1 + a b"))));
        // This premise proves 1 + a b ≤ 1 + a b; r-bound is "1 + a b",
        // inner is "b" — mismatch.
        let bad2 = Proof::StarIndLeft(Box::new(prem));
        assert!(bad2.check_closed().is_err());
    }

    #[test]
    fn antisym_builds_equations() {
        let le1 = Proof::LeRefl(e("x"));
        let le2 = Proof::LeRefl(e("x"));
        let eq = Proof::AntiSym(Box::new(le1), Box::new(le2));
        assert_eq!(eq.check_closed().unwrap().to_string(), "x = x");
    }

    #[test]
    fn hypotheses_are_contextual() {
        let hyp = Judgment::eq(&e("m1 m0"), &e("0"));
        let p = Proof::Hyp(0);
        assert_eq!(p.check(std::slice::from_ref(&hyp)).unwrap(), hyp);
        assert!(p.check_closed().is_err());
    }

    #[test]
    fn monotonicity() {
        let le = Proof::AxiomLe(LeAxiom::StarUnfold, vec![e("a")]);
        let mono = Proof::MonoMul(Box::new(Proof::LeRefl(e("c"))), Box::new(le));
        assert_eq!(
            mono.check_closed().unwrap().to_string(),
            "c (1 + a a*) ≤ c a*"
        );
    }

    #[test]
    fn proof_size() {
        let p = Proof::Refl(e("a")).then(Proof::Refl(e("a")));
        assert_eq!(p.size(), 3);
    }
}
