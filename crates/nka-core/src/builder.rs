//! Chain builders for transcribing equational/inequational derivations.
//!
//! The paper's proofs (Sections 5–6, Appendices B–C) are chains of
//! rewriting steps annotated with the rule used. [`EqChain`] and
//! [`LeChain`] mirror that style: each step is checked as it is appended,
//! so a mistranscribed derivation fails at construction time with the
//! offending step, not at final checking.
//!
//! # Examples
//!
//! The first two steps of the loop-unrolling validation (Section 5.1):
//!
//! ```
//! use nka_core::{EqChain, Judgment, Proof};
//! use nka_syntax::Expr;
//!
//! let start: Expr = "(m0 p (m0 p + m1 1))* m1".parse()?;
//! let dist: Expr = "(m0 p m0 p + m0 p m1)* m1".parse()?;
//! let chain = EqChain::new(&start).semiring(&dist)?;
//! let judgment = chain.clone().into_proof().check_closed()?;
//! assert_eq!(judgment, Judgment::eq(&start, &dist));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::judgment::Judgment;
use crate::proof::{Proof, ProofError};
use nka_syntax::{Expr, ExprNode};

fn proof_error(rule: &'static str, detail: String) -> ProofError {
    ProofError::custom(rule, detail)
}

/// Wraps `rule` (an equation proof for `l = r`) in congruence steps so that
/// it applies at `path` inside `e`; returns the wrapped proof and the
/// rewritten expression.
fn wrap_at_path(
    e: &Expr,
    path: &[usize],
    rule: Proof,
    l: &Expr,
    r: &Expr,
) -> Result<(Proof, Expr), ProofError> {
    if path.is_empty() {
        if e != l {
            return Err(proof_error(
                "rewrite",
                format!("subterm is {e}, rule rewrites {l}"),
            ));
        }
        return Ok((rule, *r));
    }
    let (head, rest) = (path[0], &path[1..]);
    match (e.node(), head) {
        (ExprNode::Add(a, b), 0) => {
            let (inner, new_a) = wrap_at_path(&a, rest, rule, l, r)?;
            Ok((
                Proof::CongAdd(Box::new(inner), Box::new(Proof::Refl(b))),
                new_a.add(&b),
            ))
        }
        (ExprNode::Add(a, b), 1) => {
            let (inner, new_b) = wrap_at_path(&b, rest, rule, l, r)?;
            Ok((
                Proof::CongAdd(Box::new(Proof::Refl(a)), Box::new(inner)),
                a.add(&new_b),
            ))
        }
        (ExprNode::Mul(a, b), 0) => {
            let (inner, new_a) = wrap_at_path(&a, rest, rule, l, r)?;
            Ok((
                Proof::CongMul(Box::new(inner), Box::new(Proof::Refl(b))),
                new_a.mul(&b),
            ))
        }
        (ExprNode::Mul(a, b), 1) => {
            let (inner, new_b) = wrap_at_path(&b, rest, rule, l, r)?;
            Ok((
                Proof::CongMul(Box::new(Proof::Refl(a)), Box::new(inner)),
                a.mul(&new_b),
            ))
        }
        (ExprNode::Star(a), 0) => {
            let (inner, new_a) = wrap_at_path(&a, rest, rule, l, r)?;
            Ok((Proof::CongStar(Box::new(inner)), new_a.star()))
        }
        _ => Err(proof_error(
            "rewrite",
            format!("invalid path step {head} at {e}"),
        )),
    }
}

/// Applies an equation proof (`l = r` under `hyps`) once at `path` inside
/// `e`, returning a proof of `e = e'` and the rewritten `e'`.
///
/// This is the single-step engine behind [`EqChain::rw_at`], exposed for
/// the auto-prover.
///
/// # Errors
///
/// Fails if the rule is not an equation or the subterm at `path` is not
/// syntactically its left-hand side.
pub fn rewrite_once(
    e: &Expr,
    path: &[usize],
    rule: Proof,
    hyps: &[Judgment],
) -> Result<(Proof, Expr), ProofError> {
    let j = rule.check(hyps)?;
    let Judgment::Eq(l, r) = j else {
        return Err(proof_error(
            "rewrite",
            "rule is not an equation".to_string(),
        ));
    };
    wrap_at_path(e, path, rule, &l, &r)
}

/// Finds the first pre-order position whose subterm equals `l`.
fn find_subterm(e: &Expr, l: &Expr) -> Option<Vec<usize>> {
    let mut found = None;
    e.visit_subterms(&mut |path, sub| {
        if found.is_none() && sub == l {
            found = Some(path.to_vec());
        }
    });
    found
}

/// An equational derivation chain `e₀ = e₁ = … = eₙ`, checked step by step.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Clone)]
pub struct EqChain {
    hyps: Vec<Judgment>,
    start: Expr,
    current: Expr,
    proof: Proof,
}

impl EqChain {
    /// Starts a chain at `start` with no hypotheses.
    pub fn new(start: &Expr) -> EqChain {
        EqChain::with_hyps(start, &[])
    }

    /// Starts a chain at `start` under Horn-clause hypotheses.
    pub fn with_hyps(start: &Expr, hyps: &[Judgment]) -> EqChain {
        EqChain {
            hyps: hyps.to_vec(),
            start: *start,
            current: *start,
            proof: Proof::Refl(*start),
        }
    }

    /// The current right-hand side of the chain.
    pub fn current(&self) -> &Expr {
        &self.current
    }

    /// The judgment `start = current` established so far.
    pub fn judgment(&self) -> Judgment {
        Judgment::eq(&self.start, &self.current)
    }

    /// The accumulated proof.
    pub fn into_proof(self) -> Proof {
        self.proof
    }

    fn append(mut self, step: Proof, new_current: Expr) -> EqChain {
        self.proof = self.proof.then(step);
        self.current = new_current;
        self
    }

    /// Reshapes the current expression to `target` inside the semiring-
    /// plus-congruence fragment (distributivity, AC of `+`, units, …).
    ///
    /// # Errors
    ///
    /// Fails if `current` and `target` differ in that fragment.
    pub fn semiring(self, target: &Expr) -> Result<EqChain, ProofError> {
        let step = Proof::BySemiring(self.current, *target);
        step.check(&self.hyps)?;
        let target = *target;
        Ok(self.append(step, target))
    }

    /// Applies an equation proof `l = r` at an explicit `path` (child
    /// indices from the root), left to right.
    ///
    /// # Errors
    ///
    /// Fails if the rule is not an equation, or the subterm at `path` is
    /// not syntactically `l`.
    pub fn rw_at(self, path: &[usize], rule: Proof) -> Result<EqChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Eq(l, r) = j else {
            return Err(proof_error(
                "rewrite",
                format!("rule is not an equation: {j}"),
            ));
        };
        let (step, new_current) = wrap_at_path(&self.current, path, rule, &l, &r)?;
        Ok(self.append(step, new_current))
    }

    /// Applies an equation proof `l = r` right to left at `path`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EqChain::rw_at`], with sides swapped.
    pub fn rw_rev_at(self, path: &[usize], rule: Proof) -> Result<EqChain, ProofError> {
        self.rw_at(path, rule.flip())
    }

    /// Applies an equation proof at the first matching subterm (pre-order).
    ///
    /// # Errors
    ///
    /// Fails if no subterm equals the rule's left-hand side.
    pub fn rw(self, rule: Proof) -> Result<EqChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Eq(l, _) = &j else {
            return Err(proof_error(
                "rewrite",
                format!("rule is not an equation: {j}"),
            ));
        };
        let path = find_subterm(&self.current, l).ok_or_else(|| {
            proof_error(
                "rewrite",
                format!("no subterm of {} equals {l}", self.current),
            )
        })?;
        self.rw_at(&path, rule)
    }

    /// Applies an equation proof right to left at the first matching
    /// subterm.
    ///
    /// # Errors
    ///
    /// Fails if no subterm equals the rule's right-hand side.
    pub fn rw_rev(self, rule: Proof) -> Result<EqChain, ProofError> {
        self.rw(rule.flip())
    }

    /// Rewrites with hypothesis `i` (which must be an equation), left to
    /// right, at the first matching subterm.
    ///
    /// # Errors
    ///
    /// Fails if the hypothesis is missing, not an equation, or unmatched.
    pub fn hyp(self, i: usize) -> Result<EqChain, ProofError> {
        self.rw(Proof::Hyp(i))
    }

    /// Rewrites with hypothesis `i` right to left.
    ///
    /// # Errors
    ///
    /// Same as [`EqChain::hyp`].
    pub fn hyp_rev(self, i: usize) -> Result<EqChain, ProofError> {
        self.rw_rev(Proof::Hyp(i))
    }

    /// Rewrites with hypothesis `i` at an explicit path.
    ///
    /// # Errors
    ///
    /// Same as [`EqChain::rw_at`].
    pub fn hyp_at(self, path: &[usize], i: usize) -> Result<EqChain, ProofError> {
        self.rw_at(path, Proof::Hyp(i))
    }

    /// Repeats [`EqChain::rw`] with the same rule until it no longer
    /// matches (at least `min` applications must succeed).
    ///
    /// # Errors
    ///
    /// Fails if fewer than `min` applications match.
    pub fn rw_repeat(mut self, rule: Proof, min: usize) -> Result<EqChain, ProofError> {
        let mut count = 0;
        loop {
            let j = rule.check(&self.hyps)?;
            let Judgment::Eq(l, _) = &j else {
                return Err(proof_error(
                    "rewrite",
                    format!("rule is not an equation: {j}"),
                ));
            };
            match find_subterm(&self.current, l) {
                Some(path) => {
                    self = self.rw_at(&path, rule.clone())?;
                    count += 1;
                }
                None if count >= min => return Ok(self),
                None => {
                    return Err(proof_error(
                        "rewrite",
                        format!("rule matched {count} times, needed {min}"),
                    ))
                }
            }
        }
    }
}

/// An inequational derivation chain `e₀ ≤ e₁ ≤ … ≤ eₙ`.
///
/// Equation steps are weakened via `EqToLe`; inequation steps must apply at
/// the root or at a position reached through `+`/`·` contexts only (those
/// are monotone by the Figure-3 axioms; rewriting under `*` needs the
/// derived monotone-star lemma, see [`crate::theorems::monotone_star`]).
#[derive(Debug, Clone)]
pub struct LeChain {
    hyps: Vec<Judgment>,
    start: Expr,
    current: Expr,
    /// `None` while the chain is still at its start (so far `start ≤ start`
    /// by reflexivity, kept implicit to avoid a useless leading step).
    proof: Option<Proof>,
}

impl LeChain {
    /// Starts a chain at `start` with no hypotheses.
    pub fn new(start: &Expr) -> LeChain {
        LeChain::with_hyps(start, &[])
    }

    /// Starts a chain at `start` under hypotheses.
    pub fn with_hyps(start: &Expr, hyps: &[Judgment]) -> LeChain {
        LeChain {
            hyps: hyps.to_vec(),
            start: *start,
            current: *start,
            proof: None,
        }
    }

    /// The current right-hand side.
    pub fn current(&self) -> &Expr {
        &self.current
    }

    /// The judgment `start ≤ current` established so far.
    pub fn judgment(&self) -> Judgment {
        Judgment::le(&self.start, &self.current)
    }

    /// The accumulated proof of `start ≤ current`.
    pub fn into_proof(self) -> Proof {
        self.proof.unwrap_or(Proof::LeRefl(self.start))
    }

    fn append(mut self, step: Proof, new_current: Expr) -> LeChain {
        self.proof = Some(match self.proof {
            None => step,
            Some(p) => p.le_then(step),
        });
        self.current = new_current;
        self
    }

    /// Appends an inequation proof whose LHS is exactly `current`.
    ///
    /// # Errors
    ///
    /// Fails if the rule's judgment is not `current ≤ X`.
    pub fn le_step(self, rule: Proof) -> Result<LeChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Le(l, r) = &j else {
            return Err(proof_error(
                "le-step",
                format!("rule is not an inequation: {j}"),
            ));
        };
        if l != &self.current {
            return Err(proof_error(
                "le-step",
                format!("rule starts at {l}, chain is at {}", self.current),
            ));
        }
        let r = *r;
        Ok(self.append(rule, r))
    }

    /// Appends an equation proof (weakened to `≤`) whose LHS is `current`.
    ///
    /// # Errors
    ///
    /// Fails if the rule's judgment is not `current = X`.
    pub fn eq_step(self, rule: Proof) -> Result<LeChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Eq(l, r) = &j else {
            return Err(proof_error(
                "eq-step",
                format!("rule is not an equation: {j}"),
            ));
        };
        if l != &self.current {
            return Err(proof_error(
                "eq-step",
                format!("rule starts at {l}, chain is at {}", self.current),
            ));
        }
        let r = *r;
        Ok(self.append(rule.as_le(), r))
    }

    /// Reshapes `current` to `target` inside the semiring fragment.
    ///
    /// # Errors
    ///
    /// Fails if the two differ in that fragment.
    pub fn semiring(self, target: &Expr) -> Result<LeChain, ProofError> {
        let step = Proof::BySemiring(self.current, *target);
        self.eq_step(step)
    }

    /// Applies an *inequation* proof `l ≤ r` at `path`, wrapping it in
    /// monotonicity steps. Every path step must traverse `+` or `·`.
    ///
    /// # Errors
    ///
    /// Fails if the path crosses a `*` node, is invalid, or the subterm at
    /// `path` differs from `l`.
    pub fn le_rw_at(self, path: &[usize], rule: Proof) -> Result<LeChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Le(l, r) = &j else {
            return Err(proof_error(
                "le-rewrite",
                format!("rule is not an inequation: {j}"),
            ));
        };
        let (step, new_current) = wrap_le_at_path(&self.current, path, rule, l, r)?;
        Ok(self.append(step, new_current))
    }

    /// Applies an equation proof at `path` (through any context — equations
    /// rewrite congruently, then weaken to `≤`).
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`EqChain::rw_at`].
    pub fn eq_rw_at(self, path: &[usize], rule: Proof) -> Result<LeChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Eq(l, r) = &j else {
            return Err(proof_error(
                "eq-rewrite",
                format!("rule is not an equation: {j}"),
            ));
        };
        let (step, new_current) = wrap_at_path(&self.current, path, rule, l, r)?;
        Ok(self.append(step.as_le(), new_current))
    }

    /// Applies an equation proof at the first matching subterm and weakens.
    ///
    /// # Errors
    ///
    /// Fails if no subterm matches.
    pub fn eq_rw(self, rule: Proof) -> Result<LeChain, ProofError> {
        let j = rule.check(&self.hyps)?;
        let Judgment::Eq(l, _) = &j else {
            return Err(proof_error(
                "eq-rewrite",
                format!("rule is not an equation: {j}"),
            ));
        };
        let path = find_subterm(&self.current, l).ok_or_else(|| {
            proof_error(
                "eq-rewrite",
                format!("no subterm of {} equals {l}", self.current),
            )
        })?;
        self.eq_rw_at(&path, rule)
    }
}

/// Monotone wrapping of an inequation along a `+`/`·` path.
fn wrap_le_at_path(
    e: &Expr,
    path: &[usize],
    rule: Proof,
    l: &Expr,
    r: &Expr,
) -> Result<(Proof, Expr), ProofError> {
    if path.is_empty() {
        if e != l {
            return Err(proof_error(
                "le-rewrite",
                format!("subterm is {e}, rule rewrites {l}"),
            ));
        }
        return Ok((rule, *r));
    }
    let (head, rest) = (path[0], &path[1..]);
    match (e.node(), head) {
        (ExprNode::Add(a, b), 0) => {
            let (inner, new_a) = wrap_le_at_path(&a, rest, rule, l, r)?;
            Ok((
                Proof::MonoAdd(Box::new(inner), Box::new(Proof::LeRefl(b))),
                new_a.add(&b),
            ))
        }
        (ExprNode::Add(a, b), 1) => {
            let (inner, new_b) = wrap_le_at_path(&b, rest, rule, l, r)?;
            Ok((
                Proof::MonoAdd(Box::new(Proof::LeRefl(a)), Box::new(inner)),
                a.add(&new_b),
            ))
        }
        (ExprNode::Mul(a, b), 0) => {
            let (inner, new_a) = wrap_le_at_path(&a, rest, rule, l, r)?;
            Ok((
                Proof::MonoMul(Box::new(inner), Box::new(Proof::LeRefl(b))),
                new_a.mul(&b),
            ))
        }
        (ExprNode::Mul(a, b), 1) => {
            let (inner, new_b) = wrap_le_at_path(&b, rest, rule, l, r)?;
            Ok((
                Proof::MonoMul(Box::new(Proof::LeRefl(a)), Box::new(inner)),
                a.mul(&new_b),
            ))
        }
        (ExprNode::Star(_), _) => Err(proof_error(
            "le-rewrite",
            "monotone rewriting under * requires the monotone-star lemma".to_string(),
        )),
        _ => Err(proof_error(
            "le-rewrite",
            format!("invalid path step {head} at {e}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::LeAxiom;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn semiring_steps_chain() {
        let chain = EqChain::new(&e("(a + b) c"))
            .semiring(&e("a c + b c"))
            .unwrap()
            .semiring(&e("b c + a c"))
            .unwrap();
        let judgment = chain.clone().judgment();
        assert_eq!(judgment.to_string(), "(a + b) c = b c + a c");
        assert_eq!(chain.into_proof().check_closed().unwrap(), judgment);
    }

    #[test]
    fn rewriting_with_hypotheses() {
        // Hypothesis m1 m1 = m1: rewrite inside a bigger term.
        let hyps = [Judgment::eq(&e("m1 m1"), &e("m1"))];
        let start = e("a (m1 m1) b");
        let chain = EqChain::with_hyps(&start, &hyps).hyp(0).unwrap();
        assert_eq!(chain.current(), &e("a m1 b"));
        let proof = chain.into_proof();
        assert_eq!(
            proof.check(&hyps).unwrap(),
            Judgment::eq(&start, &e("a m1 b"))
        );
        // Without the hypothesis the proof must not check.
        assert!(proof.check(&[]).is_err());
    }

    #[test]
    fn reverse_rewriting() {
        let hyps = [Judgment::eq(&e("u u_inv"), &e("1"))];
        let start = e("a 1 b");
        let chain = EqChain::with_hyps(&start, &hyps).hyp_rev(0).unwrap();
        assert_eq!(chain.current(), &e("a (u u_inv) b"));
    }

    #[test]
    fn explicit_paths() {
        let start = e("x + y (m m)");
        let hyps = [Judgment::eq(&e("m m"), &e("m"))];
        let chain = EqChain::with_hyps(&start, &hyps)
            .hyp_at(&[1, 1], 0)
            .unwrap();
        assert_eq!(chain.current(), &e("x + y m"));
        // Wrong path errors out.
        let bad = EqChain::with_hyps(&start, &hyps).hyp_at(&[0], 0);
        assert!(bad.is_err());
    }

    #[test]
    fn failed_semiring_step_is_rejected() {
        let bad = EqChain::new(&e("a + a")).semiring(&e("a"));
        assert!(bad.is_err());
    }

    #[test]
    fn le_chain_star_unfold() {
        // 1 + a a* ≤ a* ≤-chain with an equation prefix.
        let chain = LeChain::new(&e("1 + a (1 a)*"))
            .semiring(&e("1 + a (1 a)*"))
            .unwrap()
            .eq_rw(Proof::BySemiring(e("1 a"), e("a")))
            .unwrap()
            .le_step(Proof::AxiomLe(LeAxiom::StarUnfold, vec![e("a")]))
            .unwrap();
        assert_eq!(chain.judgment().to_string(), "1 + a (1 a)* ≤ a*");
        chain.into_proof().check_closed().unwrap();
    }

    #[test]
    fn le_rewrite_under_monotone_context() {
        // c + (1 + a a*) d  ≤  c + a* d
        let start = e("c + (1 + a a*) d");
        let chain = LeChain::new(&start)
            .le_rw_at(&[1, 0], Proof::AxiomLe(LeAxiom::StarUnfold, vec![e("a")]))
            .unwrap();
        assert_eq!(chain.current(), &e("c + a* d"));
        chain.into_proof().check_closed().unwrap();
    }

    #[test]
    fn le_rewrite_under_star_is_rejected() {
        let start = e("(1 + a a*)*");
        let res =
            LeChain::new(&start).le_rw_at(&[0], Proof::AxiomLe(LeAxiom::StarUnfold, vec![e("a")]));
        assert!(res.is_err());
    }

    #[test]
    fn rw_repeat() {
        let hyps = [Judgment::eq(&e("g g"), &e("g"))];
        let start = e("g g (g g)");
        let chain = EqChain::with_hyps(&start, &hyps)
            .rw_repeat(Proof::Hyp(0), 1)
            .unwrap();
        assert_eq!(chain.current(), &e("g"));
    }
}
