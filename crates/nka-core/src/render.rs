//! Rendering checked proofs as paper-style derivations.
//!
//! The paper presents its derivations as chains of equalities annotated
//! with the rule used at each step — e.g. §5.1's
//!
//! ```text
//!   (m0 p (m0 p + m1 1))* m1
//! = (m0 p m0 p + m0 p m1)* m1        (distributive-law)
//! = (m0 p m0 p)* (m0 p m1 (…))* m1   (denesting)
//! …
//! ```
//!
//! [`render`] reproduces that presentation from a machine-checked
//! [`Proof`] object: transitivity chains are flattened into one step per
//! line and every step is annotated with a human-readable rule label
//! (axiom name, `semiring`, `hypothesis i`, congruence context, star
//! induction). Each line is *re-checked* while rendering, so the output
//! is a faithful display of the certificate, not a reconstruction.
//!
//! # Examples
//!
//! ```
//! use nka_core::{render::render, theorems};
//!
//! let proof = theorems::sliding(&"p".parse()?, &"q".parse()?);
//! let text = render(&proof, &[])?;
//! assert!(text.starts_with("(p q)* p"));
//! assert!(text.contains("(semiring)"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::judgment::Judgment;
use crate::proof::{Proof, ProofError};

/// One line of a rendered derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedStep {
    /// `=` or `≤`, relating this line to the previous one.
    pub relation: &'static str,
    /// The display form of the step's right-hand side.
    pub expr: String,
    /// The rule annotation for the step.
    pub rule: String,
}

/// A derivation rendered as a start expression plus annotated steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedDerivation {
    /// The derivation's starting expression.
    pub start: String,
    /// The annotated steps, in order.
    pub steps: Vec<RenderedStep>,
}

impl std::fmt::Display for RenderedDerivation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.start)?;
        let width = self
            .steps
            .iter()
            .map(|s| s.expr.chars().count())
            .max()
            .unwrap_or(0);
        for step in &self.steps {
            writeln!(
                f,
                "{} {:width$}   ({})",
                step.relation,
                step.expr,
                step.rule,
                width = width
            )?;
        }
        Ok(())
    }
}

/// Renders a proof as a paper-style derivation chain.
///
/// Transitivity (`Trans`/`LeTrans`) is flattened; every other node
/// becomes a single annotated line. Sub-proofs are re-checked under
/// `hyps` to recover each line's expression, so rendering fails exactly
/// when checking would.
///
/// # Errors
///
/// Returns [`ProofError`] if the proof does not check under `hyps`.
pub fn render(proof: &Proof, hyps: &[Judgment]) -> Result<String, ProofError> {
    Ok(render_derivation(proof, hyps)?.to_string())
}

/// Structured form of [`render`], for programmatic consumption.
///
/// # Errors
///
/// Returns [`ProofError`] if the proof does not check under `hyps`.
pub fn render_derivation(
    proof: &Proof,
    hyps: &[Judgment],
) -> Result<RenderedDerivation, ProofError> {
    let judgment = proof.check(hyps)?;
    let start = judgment.lhs().to_string();
    let mut steps = Vec::new();
    collect(proof, hyps, &mut steps)?;
    Ok(RenderedDerivation { start, steps })
}

/// Flattens transitivity chains into `steps`; every non-transitivity
/// node contributes one line.
fn collect(
    proof: &Proof,
    hyps: &[Judgment],
    steps: &mut Vec<RenderedStep>,
) -> Result<(), ProofError> {
    match proof {
        Proof::Trans(a, b) | Proof::LeTrans(a, b) => {
            collect(a, hyps, steps)?;
            collect(b, hyps, steps)?;
        }
        // Reflexivity contributes no visible step.
        Proof::Refl(_) | Proof::LeRefl(_) => {}
        // EqToLe only changes the relation of its inner chain.
        Proof::EqToLe(inner) => collect(inner, hyps, steps)?,
        other => {
            let judgment = other.check(hyps)?;
            steps.push(RenderedStep {
                relation: if judgment.is_eq() { "=" } else { "≤" },
                expr: judgment.rhs().to_string(),
                rule: label(other),
            });
        }
    }
    Ok(())
}

/// A human-readable annotation for a single (non-transitivity) rule.
fn label(proof: &Proof) -> String {
    match proof {
        Proof::Refl(_) | Proof::LeRefl(_) => "reflexivity".to_owned(),
        Proof::Sym(inner) => format!("{}, reversed", label(inner)),
        Proof::Trans(..) | Proof::LeTrans(..) => "chain".to_owned(),
        Proof::CongAdd(a, b) => congruence("in +", a, b),
        Proof::CongMul(a, b) => congruence("in context", a, b),
        Proof::CongStar(inner) => format!("{}, under *", label(inner)),
        Proof::Axiom(ax, _) => format!("{ax:?}"),
        Proof::AxiomLe(ax, _) => format!("{ax:?}"),
        Proof::BySemiring(..) => "semiring".to_owned(),
        Proof::AntiSym(..) => "antisymmetry".to_owned(),
        Proof::EqToLe(inner) => label(inner),
        Proof::MonoAdd(a, b) => congruence("monotone +", a, b),
        Proof::MonoMul(a, b) => congruence("monotone ·", a, b),
        Proof::StarIndLeft(_) => "star-induction (p*q ≤ r)".to_owned(),
        Proof::StarIndRight(_) => "star-induction (qp* ≤ r)".to_owned(),
        Proof::Hyp(i) => format!("hypothesis {i}"),
    }
}

/// Congruence labels name the interesting (non-reflexive) side.
fn congruence(context: &str, a: &Proof, b: &Proof) -> String {
    let a_trivial = matches!(a, Proof::Refl(_) | Proof::LeRefl(_));
    let b_trivial = matches!(b, Proof::Refl(_) | Proof::LeRefl(_));
    match (a_trivial, b_trivial) {
        (true, false) => format!("{}, {}", label(b), context),
        (false, true) => format!("{}, {}", label(a), context),
        _ => format!("congruence {context}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EqChain;
    use crate::theorems;
    use nka_syntax::Expr;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn renders_a_semiring_chain() {
        let chain = EqChain::new(&e("p (q + r)"))
            .semiring(&e("p q + p r"))
            .unwrap();
        let text = render(&chain.into_proof(), &[]).unwrap();
        assert!(text.starts_with("p (q + r)\n"));
        assert!(text.contains("= p q + p r"));
        assert!(text.contains("(semiring)"));
    }

    #[test]
    fn renders_hypothesis_steps_with_indices() {
        let hyps = vec![Judgment::Eq(e("m m"), e("m"))];
        let chain = EqChain::with_hyps(&e("m m"), &hyps).hyp(0).unwrap();
        let text = render(&chain.into_proof(), &hyps).unwrap();
        assert!(text.contains("hypothesis 0"), "{text}");
    }

    #[test]
    fn renders_figure_2_theorems() {
        // Every Figure-2 proof renders; line count tracks proof size.
        let p = e("p");
        let q = e("q");
        for proof in [
            theorems::sliding(&p, &q),
            theorems::product_star(&p, &q),
            theorems::unrolling(&p),
            theorems::denesting_left(&p, &q),
        ] {
            let d = render_derivation(&proof, &[]).unwrap();
            assert!(!d.steps.is_empty());
            assert!(d.steps.len() <= proof.size());
            // The final line's expression is the proved judgment's rhs.
            let j = proof.check(&[]).unwrap();
            assert_eq!(d.steps.last().unwrap().expr, j.rhs().to_string());
        }
    }

    #[test]
    fn rendering_rejects_bogus_proofs() {
        // A hypothesis index out of range fails at render time exactly
        // like at check time.
        let proof = Proof::Hyp(3);
        assert!(render(&proof, &[]).is_err());
    }

    #[test]
    fn display_aligns_rule_annotations() {
        let chain = EqChain::new(&e("(p + q) r"))
            .semiring(&e("p r + q r"))
            .unwrap()
            .semiring(&e("q r + p r"))
            .unwrap();
        let d = render_derivation(&chain.into_proof(), &[]).unwrap();
        let text = d.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Both step lines place their annotations at the same column.
        let col0 = lines[1].find('(').unwrap();
        let col1 = lines[2].find('(').unwrap();
        assert_eq!(col0, col1);
    }
}
