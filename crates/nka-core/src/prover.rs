//! A bounded-search auto-prover for NKA equations under hypotheses.
//!
//! The prover explores the rewrite graph whose nodes are semiring-canonical
//! classes (see [`crate::semiring_nf`]) and whose edges are applications of
//! user-supplied equation rules (hypotheses of a Horn clause, instantiated
//! lemmas from [`crate::theorems`], …) at arbitrary positions, in either
//! direction. Reaching the goal class yields a complete [`Proof`] object —
//! the search *constructs proofs*, it does not merely answer yes/no.
//!
//! This automates the short derivations of Section 5 of the paper; the
//! long ones (Section 6, Appendices B/C.7) are transcribed by hand with
//! [`crate::builder::EqChain`] because their intermediate terms are far
//! beyond any blind search radius.
//!
//! # Examples
//!
//! ```
//! use nka_core::prover::Prover;
//! use nka_core::{theorems, Judgment, Proof};
//! use nka_syntax::Expr;
//!
//! // Under m1 m1 = m1, prove m1 (m1 m1) = m1.
//! let hyps = [Judgment::Eq("m1 m1".parse()?, "m1".parse()?)];
//! let mut prover = Prover::new(&hyps);
//! prover.add_rule(Proof::Hyp(0));
//! let goal_l: Expr = "m1 (m1 m1)".parse()?;
//! let goal_r: Expr = "m1".parse()?;
//! let proof = prover.prove_eq(&goal_l, &goal_r).expect("proof found");
//! assert_eq!(proof.check(&hyps)?, Judgment::eq(&goal_l, &goal_r));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::builder::rewrite_once;
use crate::judgment::Judgment;
use crate::proof::Proof;
use crate::semiring_nf::{canon, CanonPoly};
use nka_syntax::{Expr, ScratchScope};

use nka_wfa::{DecideError, Decider};
use std::collections::{BTreeSet, VecDeque};

/// The three-valued result of [`Prover::prove_or_refute`].
#[derive(Debug, Clone)]
pub enum ProveOutcome {
    /// A machine-checkable proof of the goal was found.
    Proved(Proof),
    /// The goal is **not** an NKA theorem: the decision engine separated
    /// the two power series (only possible for hypothesis-free goals,
    /// where the engine is a complete oracle by Theorem A.6).
    Refuted,
    /// The search budget ran out; the goal may or may not be provable.
    Exhausted,
}

/// A breadth-first rewrite prover; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Prover {
    hyps: Vec<Judgment>,
    rules: Vec<Proof>,
    max_expansions: usize,
    max_term_size: usize,
}

impl Prover {
    /// Creates a prover with the given Horn-clause hypotheses and default
    /// bounds (2000 expansions, term size 120).
    pub fn new(hyps: &[Judgment]) -> Prover {
        Prover {
            hyps: hyps.to_vec(),
            rules: Vec::new(),
            max_expansions: 2000,
            max_term_size: 120,
        }
    }

    /// Adds an equation rule (applied in both directions during search).
    ///
    /// Non-equation proofs are accepted but ignored by the search.
    pub fn add_rule(&mut self, rule: Proof) -> &mut Prover {
        self.rules.push(rule);
        self
    }

    /// Adds every hypothesis (that is an equation) as a rule.
    pub fn add_hypothesis_rules(&mut self) -> &mut Prover {
        for i in 0..self.hyps.len() {
            self.rules.push(Proof::Hyp(i));
        }
        self
    }

    /// Sets the expansion budget.
    pub fn with_max_expansions(mut self, n: usize) -> Prover {
        self.max_expansions = n;
        self
    }

    /// Sets the term-size bound beyond which rewrites are not explored.
    pub fn with_max_term_size(mut self, n: usize) -> Prover {
        self.max_term_size = n;
        self
    }

    /// [`Prover::prove_eq`] routed through the shared decision engine:
    /// for hypothesis-free goals the engine is consulted first, so a
    /// non-theorem is *refuted* immediately instead of burning the whole
    /// search budget, and repeated goals benefit from `engine`'s caches.
    ///
    /// The rewrite search runs inside a [`ScratchScope`]: every
    /// transient frontier term it materializes is interned into the
    /// thread-local scratch region and **reclaimed when the query
    /// answers**, so adversarially distinct `Prove` traffic cannot grow
    /// the process arena (see `tests/arena_soak.rs`). A found proof is
    /// [promoted](nka_syntax::promote) into the persistent arena before
    /// the scope retires — callers receive only persistent handles.
    ///
    /// # Errors
    ///
    /// Returns [`DecideError`] if the engine's subset construction exceeds
    /// its state budget (the rewrite search itself never errors).
    pub fn prove_or_refute(
        &self,
        engine: &mut Decider,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<ProveOutcome, DecideError> {
        // Under hypotheses the series model is only sound for *theorems of
        // the pure theory*, so a semantic "no" refutes nothing; skip it.
        // (Deliberately outside the scratch scope: the goal ids the engine
        // caches must be the caller's persistent ones.)
        if self.hyps.is_empty() && !engine.decide(lhs, rhs)? {
            return Ok(ProveOutcome::Refuted);
        }
        let scope = ScratchScope::enter();
        Ok(match self.prove_eq(lhs, rhs) {
            Some(proof) => {
                // The proof references scratch-built intermediate terms;
                // rebuild it persistently so it outlives the scope. One
                // memo spans the whole tree: proof steps mention the
                // same goal-sized terms over and over, and each distinct
                // subterm should be rebuilt exactly once.
                let mut memo = std::collections::HashMap::new();
                let promoted = proof.map_exprs(&mut |e| nka_syntax::promote_memoized(e, &mut memo));
                drop(scope);
                ProveOutcome::Proved(promoted)
            }
            None => ProveOutcome::Exhausted,
        })
    }

    /// Searches for a proof of `lhs = rhs`; returns `None` when the budget
    /// is exhausted (the equation may still be provable).
    pub fn prove_eq(&self, lhs: &Expr, rhs: &Expr) -> Option<Proof> {
        let goal = canon(rhs);
        let start_class = canon(lhs);
        if start_class == goal {
            return Some(Proof::BySemiring(*lhs, *rhs));
        }

        // Pre-check rules once: keep only equations, in both orientations.
        let mut oriented: Vec<Proof> = Vec::new();
        for rule in &self.rules {
            if let Ok(Judgment::Eq(..)) = rule.check(&self.hyps) {
                oriented.push(rule.clone());
                oriented.push(rule.clone().flip());
            }
        }

        let mut visited: BTreeSet<CanonPoly> = BTreeSet::new();
        visited.insert(start_class);
        let mut queue: VecDeque<(Expr, Proof)> = VecDeque::new();
        queue.push_back((*lhs, Proof::Refl(*lhs)));
        let mut expansions = 0;

        while let Some((expr, proof)) = queue.pop_front() {
            expansions += 1;
            if expansions > self.max_expansions {
                return None;
            }
            // Rewrite on the raw representative and on both canonical
            // association variants; each variant is BySemiring-connected to
            // the representative, so matching stays purely syntactic while
            // effectively working modulo the semiring axioms.
            let class_here = canon(&expr);
            let variants = [expr, class_here.to_expr(true), class_here.to_expr(false)];
            for (vi, variant) in variants.iter().enumerate() {
                let to_variant = if vi == 0 {
                    proof.clone()
                } else {
                    proof.clone().then(Proof::BySemiring(expr, *variant))
                };
                for rule in &oriented {
                    let Ok(Judgment::Eq(l, _)) = rule.check(&self.hyps) else {
                        continue;
                    };
                    let mut paths = Vec::new();
                    variant.visit_subterms(&mut |path, sub| {
                        if sub == &l {
                            paths.push(path.to_vec());
                        }
                    });
                    for path in paths {
                        let Ok((step, new_expr)) =
                            rewrite_once(variant, &path, rule.clone(), &self.hyps)
                        else {
                            continue;
                        };
                        if new_expr.size() > self.max_term_size {
                            continue;
                        }
                        let class = canon(&new_expr);
                        if class == goal {
                            let total = to_variant
                                .then(step)
                                .then(Proof::BySemiring(new_expr, *rhs));
                            return Some(total);
                        }
                        if visited.insert(class) {
                            queue.push_back((new_expr, to_variant.clone().then(step)));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorems;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn semiring_goals_need_no_rules() {
        let prover = Prover::new(&[]);
        let proof = prover.prove_eq(&e("(a + b) c"), &e("b c + a c")).unwrap();
        proof.check_closed().unwrap();
    }

    #[test]
    fn projective_measurement_absorption() {
        // m1 m1 = m1, m1 m0 = 0 ⊢ m1 (m0 p + m1) = m1.
        let hyps = [
            Judgment::Eq(e("m1 m1"), e("m1")),
            Judgment::Eq(e("m1 m0"), e("0")),
        ];
        let mut prover = Prover::new(&hyps);
        prover.add_hypothesis_rules();
        let lhs = e("m1 (m0 p + m1)");
        let rhs = e("m1");
        let proof = prover.prove_eq(&lhs, &rhs).expect("provable");
        assert_eq!(proof.check(&hyps).unwrap(), Judgment::eq(&lhs, &rhs));
    }

    #[test]
    fn uses_instantiated_lemmas() {
        // Prove a* a + 1 = a* from fixed-point-left.
        let mut prover = Prover::new(&[]);
        prover.add_rule(theorems::fixed_point_left(&e("a")));
        let lhs = e("a* a + 1");
        let rhs = e("a*");
        let proof = prover.prove_eq(&lhs, &rhs).expect("provable");
        assert_eq!(proof.check_closed().unwrap(), Judgment::eq(&lhs, &rhs));
    }

    #[test]
    fn unprovable_within_budget_returns_none() {
        let prover = Prover::new(&[]).with_max_expansions(50);
        assert!(prover.prove_eq(&e("a + a"), &e("a")).is_none());
    }

    #[test]
    fn engine_refutes_non_theorems_without_search() {
        // With an expansion budget of zero the rewrite search can prove
        // nothing, so a Refuted outcome must come from the engine alone.
        let prover = Prover::new(&[]).with_max_expansions(0);
        let mut engine = Decider::new();
        let outcome = prover
            .prove_or_refute(&mut engine, &e("a + a"), &e("a"))
            .unwrap();
        assert!(matches!(outcome, ProveOutcome::Refuted));
        assert_eq!(engine.stats().nka_queries, 1);
    }

    #[test]
    fn engine_routed_proving_still_finds_proofs() {
        let mut prover = Prover::new(&[]);
        prover.add_rule(crate::theorems::fixed_point_left(&e("a")));
        let mut engine = Decider::new();
        let outcome = prover
            .prove_or_refute(&mut engine, &e("a* a + 1"), &e("a*"))
            .unwrap();
        let ProveOutcome::Proved(proof) = outcome else {
            panic!("expected a proof");
        };
        proof.check_closed().unwrap();
    }

    #[test]
    fn refutation_is_skipped_under_hypotheses() {
        // a = b ⊢ a = b is provable but semantically false without the
        // hypothesis; the engine must not refute it.
        let hyps = [Judgment::Eq(e("a"), e("b"))];
        let mut prover = Prover::new(&hyps);
        prover.add_hypothesis_rules();
        let mut engine = Decider::new();
        let outcome = prover
            .prove_or_refute(&mut engine, &e("a"), &e("b"))
            .unwrap();
        assert!(matches!(outcome, ProveOutcome::Proved(_)));
        // The (unsound-here) semantic oracle was never consulted.
        assert_eq!(engine.stats().nka_queries, 0);
    }

    #[test]
    fn budget_errors_propagate_from_the_engine() {
        let prover = Prover::new(&[]);
        let mut engine = Decider::with_budget(1);
        assert!(prover
            .prove_or_refute(&mut engine, &e("1* a"), &e("1* b"))
            .is_err());
    }

    #[test]
    fn search_scratch_is_reclaimed_and_proofs_are_promoted() {
        use nka_syntax::scratch_retired_total;
        // Hypothesis-ful goal: the engine is skipped and the rewrite
        // search runs entirely inside a scratch scope.
        // Atoms unique to this test, so no sibling test pre-interns the
        // search frontier persistently.
        let hyps = [Judgment::Eq(e("scU scM"), e("scM scU"))];
        let mut prover = Prover::new(&hyps);
        prover.add_hypothesis_rules();
        let (lhs, rhs) = (e("scU (scU scM)"), e("scM (scU scU)"));
        let mut engine = Decider::new();
        let retired_before = scratch_retired_total();
        let outcome = prover.prove_or_refute(&mut engine, &lhs, &rhs).unwrap();
        let ProveOutcome::Proved(proof) = outcome else {
            panic!("expected a proof, got {outcome:?}");
        };
        // The search interned transient terms and retired them all.
        assert!(scratch_retired_total() > retired_before);
        // The promoted proof references no scratch ids and still checks.
        let _ = proof.map_exprs(&mut |ex| {
            assert!(!ex.id().is_scratch(), "scratch id escaped promotion");
            *ex
        });
        assert_eq!(proof.check(&hyps).unwrap(), Judgment::eq(&lhs, &rhs));
    }

    #[test]
    fn commutation_chain() {
        // u m = m u ⊢ u (u m) = m (u u).
        let hyps = [Judgment::Eq(e("u m"), e("m u"))];
        let mut prover = Prover::new(&hyps);
        prover.add_hypothesis_rules();
        let lhs = e("u (u m)");
        let rhs = e("m (u u)");
        let proof = prover.prove_eq(&lhs, &rhs).expect("provable");
        assert_eq!(proof.check(&hyps).unwrap(), Judgment::eq(&lhs, &rhs));
    }
}
