//! Version-stamped, checksummed binary snapshots of warm engine state.
//!
//! Every worker recycle and supervisor restart used to discard the caches
//! that separate the ~hundred-nanosecond warm query path from the
//! ~millisecond cold path. This module makes that warm state a durable
//! artifact: a snapshot captures the promoted arena expressions reachable
//! from the [`Decider`](nka_wfa::Decider) caches (in a canonical,
//! process-independent post-order encoding), the NKA/KA verdict caches,
//! the star-free word-multiset memo, and the analyzer certificate cache —
//! and restores them into a fresh process.
//!
//! # Format
//!
//! A snapshot file is `MAGIC ("NKASNAP.") · version (u32) · checksum
//! (u64, FNV-1a over the body) · body`, all integers little-endian. The
//! body is:
//!
//! | section   | contents                                                       |
//! |-----------|----------------------------------------------------------------|
//! | header    | creation time (unix secs), config guard (`float_ablation`, `starfree_max_words`) |
//! | symbols   | count + length-prefixed UTF-8 names                            |
//! | exprs     | count + tagged nodes in post-order (children precede parents; child indices must be smaller than the node's own index) |
//! | verdicts  | NKA then KA: count + `(lhs idx, rhs idx, verdict)` triples     |
//! | multisets | count + per-expression word multisets (symbol-index words)     |
//! | certs     | count + `(p, q, holds, certificate counters)` entries          |
//!
//! Expression identity is *structural*: [`nka_syntax::ExprId`]s
//! are process-local (the arena shards by a per-process hash seed), so
//! the dump remaps every id to a dense table index and the load re-interns
//! each node through the public constructors — hash-consing makes the
//! restored handles canonical again in the new process.
//!
//! # Degradation contract
//!
//! Loading **never** produces a wrong answer. Every defect — bad magic,
//! unsupported version, checksum mismatch, truncation, malformed indices,
//! or a semantically relevant [`DecideOptions`] mismatch — is a typed
//! [`SnapshotError`]; callers degrade to a cold start and surface a
//! warning counter. A verdict restored from a *valid* snapshot is exact
//! by construction: it was decided by the same exact pipeline under the
//! same cache-relevant options.

use nka_qprog::analysis::CertificateStats;
use nka_syntax::{Expr, ExprId, ExprNode, Symbol, Word};
use nka_wfa::starfree::WordMultiset;
use nka_wfa::DecideOptions;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// The 8-byte file magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"NKASNAP.";

/// The current snapshot format version. Bump on any layout change; a
/// reader seeing an unknown version degrades to cold start.
pub const VERSION: u32 = 1;

/// The subset of [`DecideOptions`] that affects what cached entries
/// *mean*. A snapshot written under one guard must not be restored into
/// an engine running under a different one: `float_ablation` changes the
/// zeroness arithmetic and `starfree_max_words` changes which multisets
/// were admissible. (`max_dfa_states` is a resource budget only — it can
/// differ freely, so it is deliberately not part of the guard.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigGuard {
    /// Whether the unsound `f64` zeroness ablation was active.
    pub float_ablation: bool,
    /// The star-free fast-path word budget the entries were computed under.
    pub starfree_max_words: u64,
}

impl ConfigGuard {
    /// The guard for a given set of engine options.
    #[must_use]
    pub fn from_options(opts: &DecideOptions) -> ConfigGuard {
        ConfigGuard {
            float_ablation: opts.float_ablation,
            starfree_max_words: opts.starfree_max_words as u64,
        }
    }
}

/// Why a snapshot could not be written or restored. Every variant is a
/// *degrade-to-cold* signal, never a correctness hazard.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure reading or writing the snapshot.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file claims a format version this reader does not speak.
    UnsupportedVersion(u32),
    /// The body checksum does not match the header — bit rot or a torn
    /// write.
    ChecksumMismatch {
        /// The checksum recorded in the header.
        expected: u64,
        /// The checksum recomputed over the body.
        actual: u64,
    },
    /// The file ended before a section it promised.
    Truncated,
    /// A structural invariant failed (bad tag, out-of-range index,
    /// non-UTF-8 name); the static message names which.
    Malformed(&'static str),
    /// The snapshot was written under cache-semantics-relevant options
    /// that differ from the loading engine's ([`ConfigGuard`]).
    ConfigMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads v{VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#018x}, body {actual:#018x})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was written under different engine options")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One analyzer certificate-cache entry: the certifying `prog_eq` query
/// sources, its verdict, and the fast-path counters its decision cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertEntry {
    /// Left program source of the certifying query.
    pub p: String,
    /// Right program source of the certifying query.
    pub q: String,
    /// The cached `prog_eq` verdict.
    pub holds: bool,
    /// The tier counters recorded when the certificate was decided.
    pub stats: CertificateStats,
}

/// A canonically-encoded expression node; children are table indices
/// strictly smaller than the node's own index (post-order invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Zero,
    One,
    Atom(u32),
    Add(u32, u32),
    Mul(u32, u32),
    Star(u32),
}

/// One serialized word multiset: `(word as symbol-table indices,
/// multiplicity)` pairs for a single star-free expression.
type WordCounts = Vec<(Vec<u32>, u64)>;

/// Accumulates warm state for a dump: remaps process-local [`ExprId`]s
/// to dense table indices, dedups entries contributed by multiple
/// workers, and serializes to the binary format. Scratch-keyed
/// expressions are refused at every entry point — their ids are reused
/// across epochs, so persisting them could resurrect a verdict under a
/// different term.
#[derive(Debug)]
pub struct SnapshotBuilder {
    config: ConfigGuard,
    symbols: Vec<String>,
    symbol_ids: HashMap<Symbol, u32>,
    nodes: Vec<Node>,
    expr_ids: HashMap<ExprId, u32>,
    nka: Vec<(u32, u32, bool)>,
    nka_seen: HashMap<(u32, u32), ()>,
    ka: Vec<(u32, u32, bool)>,
    ka_seen: HashMap<(u32, u32), ()>,
    multisets: Vec<(u32, WordCounts)>,
    multiset_seen: HashMap<u32, ()>,
    certs: Vec<CertEntry>,
    cert_seen: HashMap<(String, String), ()>,
}

impl SnapshotBuilder {
    /// An empty builder for state computed under `config`.
    #[must_use]
    pub fn new(config: ConfigGuard) -> SnapshotBuilder {
        SnapshotBuilder {
            config,
            symbols: Vec::new(),
            symbol_ids: HashMap::new(),
            nodes: Vec::new(),
            expr_ids: HashMap::new(),
            nka: Vec::new(),
            nka_seen: HashMap::new(),
            ka: Vec::new(),
            ka_seen: HashMap::new(),
            multisets: Vec::new(),
            multiset_seen: HashMap::new(),
            certs: Vec::new(),
            cert_seen: HashMap::new(),
        }
    }

    /// Total entries (verdicts + multisets + certificates) staged so far.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nka.len() + self.ka.len() + self.multisets.len() + self.certs.len()
    }

    fn intern_symbol(&mut self, sym: Symbol) -> u32 {
        if let Some(&ix) = self.symbol_ids.get(&sym) {
            return ix;
        }
        let ix = u32::try_from(self.symbols.len()).expect("snapshot symbol table overflow");
        self.symbols.push(sym.name());
        self.symbol_ids.insert(sym, ix);
        ix
    }

    /// The table index of `e`, interning its subterms first (iterative
    /// post-order — program encodings can be deep `·`-spines).
    fn intern_expr(&mut self, e: &Expr) -> u32 {
        if let Some(&ix) = self.expr_ids.get(&e.id()) {
            return ix;
        }
        let mut stack: Vec<(Expr, bool)> = vec![(*e, false)];
        while let Some((cur, children_done)) = stack.pop() {
            if self.expr_ids.contains_key(&cur.id()) {
                continue;
            }
            if !children_done {
                stack.push((cur, true));
                match cur.node() {
                    ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                        stack.push((r, false));
                        stack.push((l, false));
                    }
                    ExprNode::Star(x) => stack.push((x, false)),
                    _ => {}
                }
            } else {
                let node = match cur.node() {
                    ExprNode::Zero => Node::Zero,
                    ExprNode::One => Node::One,
                    ExprNode::Atom(sym) => Node::Atom(self.intern_symbol(sym)),
                    ExprNode::Add(l, r) => {
                        Node::Add(self.expr_ids[&l.id()], self.expr_ids[&r.id()])
                    }
                    ExprNode::Mul(l, r) => {
                        Node::Mul(self.expr_ids[&l.id()], self.expr_ids[&r.id()])
                    }
                    ExprNode::Star(x) => Node::Star(self.expr_ids[&x.id()]),
                };
                let ix = u32::try_from(self.nodes.len()).expect("snapshot expr table overflow");
                self.nodes.push(node);
                self.expr_ids.insert(cur.id(), ix);
            }
        }
        self.expr_ids[&e.id()]
    }

    /// Stages an NKA verdict-cache entry. Duplicate pairs (e.g. from
    /// several workers) collapse to the first occurrence.
    pub fn add_nka_verdict(&mut self, lhs: &Expr, rhs: &Expr, verdict: bool) {
        if lhs.id().is_scratch() || rhs.id().is_scratch() {
            return;
        }
        let key = (self.intern_expr(lhs), self.intern_expr(rhs));
        if self.nka_seen.insert(key, ()).is_none() {
            self.nka.push((key.0, key.1, verdict));
        }
    }

    /// Stages a KA verdict-cache entry.
    pub fn add_ka_verdict(&mut self, lhs: &Expr, rhs: &Expr, verdict: bool) {
        if lhs.id().is_scratch() || rhs.id().is_scratch() {
            return;
        }
        let key = (self.intern_expr(lhs), self.intern_expr(rhs));
        if self.ka_seen.insert(key, ()).is_none() {
            self.ka.push((key.0, key.1, verdict));
        }
    }

    /// Stages a star-free word-multiset memo entry.
    pub fn add_multiset(&mut self, e: &Expr, multiset: &WordMultiset) {
        if e.id().is_scratch() {
            return;
        }
        let ix = self.intern_expr(e);
        if self.multiset_seen.insert(ix, ()).is_some() {
            return;
        }
        let words: Vec<(Vec<u32>, u64)> = multiset
            .iter()
            .map(|(word, &mult)| {
                let syms = word
                    .symbols()
                    .iter()
                    .map(|&s| self.intern_symbol(s))
                    .collect();
                (syms, mult)
            })
            .collect();
        self.multisets.push((ix, words));
    }

    /// Stages an analyzer certificate-cache entry.
    pub fn add_cert(&mut self, p: &str, q: &str, holds: bool, stats: CertificateStats) {
        let key = (p.to_owned(), q.to_owned());
        if self.cert_seen.insert(key, ()).is_some() {
            return;
        }
        self.certs.push(CertEntry {
            p: p.to_owned(),
            q: q.to_owned(),
            holds,
            stats,
        });
    }

    /// Serializes the staged state to the binary format, stamped with
    /// the given creation time.
    #[must_use]
    pub fn encode(&self, created_unix_secs: u64) -> Vec<u8> {
        let mut body = Vec::new();
        push_u64(&mut body, created_unix_secs);
        body.push(u8::from(self.config.float_ablation));
        push_u64(&mut body, self.config.starfree_max_words);
        push_u32(&mut body, self.symbols.len() as u32);
        for name in &self.symbols {
            push_bytes(&mut body, name.as_bytes());
        }
        push_u32(&mut body, self.nodes.len() as u32);
        for node in &self.nodes {
            match *node {
                Node::Zero => body.push(0),
                Node::One => body.push(1),
                Node::Atom(s) => {
                    body.push(2);
                    push_u32(&mut body, s);
                }
                Node::Add(l, r) => {
                    body.push(3);
                    push_u32(&mut body, l);
                    push_u32(&mut body, r);
                }
                Node::Mul(l, r) => {
                    body.push(4);
                    push_u32(&mut body, l);
                    push_u32(&mut body, r);
                }
                Node::Star(x) => {
                    body.push(5);
                    push_u32(&mut body, x);
                }
            }
        }
        for verdicts in [&self.nka, &self.ka] {
            push_u32(&mut body, verdicts.len() as u32);
            for &(l, r, v) in verdicts {
                push_u32(&mut body, l);
                push_u32(&mut body, r);
                body.push(u8::from(v));
            }
        }
        push_u32(&mut body, self.multisets.len() as u32);
        for (ix, words) in &self.multisets {
            push_u32(&mut body, *ix);
            push_u32(&mut body, words.len() as u32);
            for (syms, mult) in words {
                push_u32(&mut body, syms.len() as u32);
                for &s in syms {
                    push_u32(&mut body, s);
                }
                push_u64(&mut body, *mult);
            }
        }
        push_u32(&mut body, self.certs.len() as u32);
        for cert in &self.certs {
            push_bytes(&mut body, cert.p.as_bytes());
            push_bytes(&mut body, cert.q.as_bytes());
            body.push(u8::from(cert.holds));
            push_u64(&mut body, cert.stats.starfree_hits);
            push_u64(&mut body, cert.stats.prefix_hits);
            push_u64(&mut body, cert.stats.fastpath_fallbacks);
        }
        let mut out = Vec::with_capacity(20 + body.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Writes the snapshot to `path` atomically (temp file + rename in
    /// the same directory), stamped with the current wall-clock time.
    /// Concurrent writers race benignly: last rename wins, and readers
    /// always see a complete file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the temp file cannot be written
    /// or renamed into place.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let created = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let bytes = self.encode(created);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(SnapshotError::Io(e))
            }
        }
    }
}

/// Structural facts about a snapshot, for `nka snapshot inspect` and
/// the `--stats` surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// The format version the file carries.
    pub version: u32,
    /// When the snapshot was written (unix seconds).
    pub created_unix_secs: u64,
    /// The engine options the entries were computed under.
    pub config: ConfigGuard,
    /// Interned symbol names in the table.
    pub symbols: usize,
    /// Canonical expression nodes in the table.
    pub exprs: usize,
    /// NKA verdict-cache entries.
    pub nka_verdicts: usize,
    /// KA verdict-cache entries.
    pub ka_verdicts: usize,
    /// Star-free word-multiset memo entries.
    pub multisets: usize,
    /// Analyzer certificate-cache entries.
    pub certs: usize,
}

impl SnapshotSummary {
    /// Total restorable cache entries (verdicts + multisets + certs).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nka_verdicts + self.ka_verdicts + self.multisets + self.certs
    }
}

/// A decoded snapshot in neutral (table-index) form: validated against
/// the format invariants but not yet interned into this process's arena.
#[derive(Debug)]
pub struct Snapshot {
    /// When the snapshot was written (unix seconds).
    pub created_unix_secs: u64,
    /// The engine options the entries were computed under.
    pub config: ConfigGuard,
    symbols: Vec<String>,
    nodes: Vec<Node>,
    nka: Vec<(u32, u32, bool)>,
    ka: Vec<(u32, u32, bool)>,
    multisets: Vec<(u32, WordCounts)>,
    certs: Vec<CertEntry>,
}

impl Snapshot {
    /// Decodes and fully validates a snapshot image: magic, version,
    /// checksum, then every structural invariant (tags, UTF-8, index
    /// ranges, the post-order child constraint).
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotError`] naming the first defect found.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let expected = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let body = &bytes[20..];
        let actual = fnv1a64(body);
        if expected != actual {
            return Err(SnapshotError::ChecksumMismatch { expected, actual });
        }
        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        let created_unix_secs = cur.u64()?;
        let float_ablation = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("config flag out of range")),
        };
        let starfree_max_words = cur.u64()?;
        let symbol_count = cur.u32()? as usize;
        let mut symbols = Vec::new();
        for _ in 0..symbol_count {
            let raw = cur.bytes()?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| SnapshotError::Malformed("symbol name is not UTF-8"))?;
            symbols.push(name.to_owned());
        }
        let node_count = cur.u32()? as usize;
        let mut nodes = Vec::new();
        for ix in 0..node_count {
            let child = |i: u32| -> Result<u32, SnapshotError> {
                if (i as usize) < ix {
                    Ok(i)
                } else {
                    Err(SnapshotError::Malformed(
                        "expr child index not below parent",
                    ))
                }
            };
            let node = match cur.u8()? {
                0 => Node::Zero,
                1 => Node::One,
                2 => {
                    let s = cur.u32()?;
                    if s as usize >= symbols.len() {
                        return Err(SnapshotError::Malformed("atom symbol index out of range"));
                    }
                    Node::Atom(s)
                }
                3 => Node::Add(child(cur.u32()?)?, child(cur.u32()?)?),
                4 => Node::Mul(child(cur.u32()?)?, child(cur.u32()?)?),
                5 => Node::Star(child(cur.u32()?)?),
                _ => return Err(SnapshotError::Malformed("unknown expr node tag")),
            };
            nodes.push(node);
        }
        let read_verdicts = |cur: &mut Cursor<'_>| -> Result<Vec<(u32, u32, bool)>, SnapshotError> {
            let count = cur.u32()? as usize;
            let mut out = Vec::new();
            for _ in 0..count {
                let l = cur.u32()?;
                let r = cur.u32()?;
                if l as usize >= nodes.len() || r as usize >= nodes.len() {
                    return Err(SnapshotError::Malformed("verdict expr index out of range"));
                }
                let v = match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(SnapshotError::Malformed("verdict flag out of range")),
                };
                out.push((l, r, v));
            }
            Ok(out)
        };
        let nka = read_verdicts(&mut cur)?;
        let ka = read_verdicts(&mut cur)?;
        let multiset_count = cur.u32()? as usize;
        let mut multisets = Vec::new();
        for _ in 0..multiset_count {
            let ix = cur.u32()?;
            if ix as usize >= nodes.len() {
                return Err(SnapshotError::Malformed("multiset expr index out of range"));
            }
            let word_count = cur.u32()? as usize;
            let mut words = Vec::new();
            for _ in 0..word_count {
                let len = cur.u32()? as usize;
                let mut syms = Vec::new();
                for _ in 0..len {
                    let s = cur.u32()?;
                    if s as usize >= symbols.len() {
                        return Err(SnapshotError::Malformed("word symbol index out of range"));
                    }
                    syms.push(s);
                }
                let mult = cur.u64()?;
                words.push((syms, mult));
            }
            multisets.push((ix, words));
        }
        let cert_count = cur.u32()? as usize;
        let mut certs = Vec::new();
        for _ in 0..cert_count {
            let p = std::str::from_utf8(cur.bytes()?)
                .map_err(|_| SnapshotError::Malformed("certificate source is not UTF-8"))?
                .to_owned();
            let q = std::str::from_utf8(cur.bytes()?)
                .map_err(|_| SnapshotError::Malformed("certificate source is not UTF-8"))?
                .to_owned();
            let holds = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Malformed("certificate flag out of range")),
            };
            let stats = CertificateStats {
                starfree_hits: cur.u64()?,
                prefix_hits: cur.u64()?,
                fastpath_fallbacks: cur.u64()?,
            };
            certs.push(CertEntry { p, q, holds, stats });
        }
        if cur.pos != body.len() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after last section",
            ));
        }
        Ok(Snapshot {
            created_unix_secs,
            config: ConfigGuard {
                float_ablation,
                starfree_max_words,
            },
            symbols,
            nodes,
            nka,
            ka,
            multisets,
            certs,
        })
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, otherwise whatever
    /// [`Snapshot::decode`] reports.
    pub fn read(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Snapshot::decode(&bytes)
    }

    /// Structural facts for `inspect`/`--stats`.
    #[must_use]
    pub fn summary(&self) -> SnapshotSummary {
        SnapshotSummary {
            version: VERSION,
            created_unix_secs: self.created_unix_secs,
            config: self.config,
            symbols: self.symbols.len(),
            exprs: self.nodes.len(),
            nka_verdicts: self.nka.len(),
            ka_verdicts: self.ka.len(),
            multisets: self.multisets.len(),
            certs: self.certs.len(),
        }
    }

    /// Interns every snapshot expression into this process's arena and
    /// resolves the cache entries to real [`Expr`] handles, ready to be
    /// restored into any number of sessions.
    ///
    /// Call this once per process, **outside any
    /// `nka_syntax::ScratchScope`** — inside a scope the rebuilt terms
    /// would intern as scratch and every downstream restore would
    /// (safely) refuse them.
    #[must_use]
    pub fn instantiate(&self) -> LoadedSnapshot {
        let syms: Vec<Symbol> = self.symbols.iter().map(|s| Symbol::intern(s)).collect();
        let mut exprs: Vec<Expr> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let e = match *node {
                Node::Zero => Expr::zero(),
                Node::One => Expr::one(),
                Node::Atom(s) => Expr::atom(syms[s as usize]),
                Node::Add(l, r) => exprs[l as usize].add(&exprs[r as usize]),
                Node::Mul(l, r) => exprs[l as usize].mul(&exprs[r as usize]),
                Node::Star(x) => exprs[x as usize].star(),
            };
            exprs.push(e);
        }
        let resolve = |entries: &[(u32, u32, bool)]| -> Vec<(Expr, Expr, bool)> {
            entries
                .iter()
                .map(|&(l, r, v)| (exprs[l as usize], exprs[r as usize], v))
                .collect()
        };
        let multisets = self
            .multisets
            .iter()
            .map(|(ix, words)| {
                let mut ms = WordMultiset::new();
                for (word_syms, mult) in words {
                    let word = Word::from_symbols(word_syms.iter().map(|&s| syms[s as usize]));
                    ms.insert(word, *mult);
                }
                (exprs[*ix as usize], Arc::new(ms))
            })
            .collect();
        LoadedSnapshot {
            created_unix_secs: self.created_unix_secs,
            config: self.config,
            nka: resolve(&self.nka),
            ka: resolve(&self.ka),
            multisets,
            certs: self.certs.clone(),
        }
    }
}

/// A snapshot instantiated into this process's arena: `Expr` handles are
/// `Copy` indices into the process-global arena, so one `LoadedSnapshot`
/// is cheaply shared (e.g. behind an `Arc`) across a whole worker pool,
/// each worker restoring the entries into its own session.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// When the snapshot was written (unix seconds).
    pub created_unix_secs: u64,
    /// The engine options the entries were computed under.
    pub config: ConfigGuard,
    /// NKA verdict-cache entries.
    pub nka: Vec<(Expr, Expr, bool)>,
    /// KA verdict-cache entries.
    pub ka: Vec<(Expr, Expr, bool)>,
    /// Star-free word-multiset memo entries.
    pub multisets: Vec<(Expr, Arc<WordMultiset>)>,
    /// Analyzer certificate-cache entries.
    pub certs: Vec<CertEntry>,
}

impl LoadedSnapshot {
    /// Total restorable cache entries.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.nka.len() + self.ka.len() + self.multisets.len() + self.certs.len()
    }

    /// The snapshot's age relative to `now_unix_secs`, saturating at
    /// zero for clock skew.
    #[must_use]
    pub fn age_secs(&self, now_unix_secs: u64) -> u64 {
        now_unix_secs.saturating_sub(self.created_unix_secs)
    }
}

/// Compile-time proof that a loaded snapshot can be shared across the
/// serve worker pool behind an `Arc`.
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<LoadedSnapshot>();
}

/// Reads, validates, config-checks, and instantiates the snapshot at
/// `path` in one step — the boot-time entry point used by the CLI and
/// the serve worker pool.
///
/// # Errors
///
/// Any [`SnapshotError`]; in particular [`SnapshotError::ConfigMismatch`]
/// if the snapshot was written under different cache-relevant options
/// than `expected`. Callers treat every error as "start cold".
pub fn load(path: &Path, expected: &ConfigGuard) -> Result<LoadedSnapshot, SnapshotError> {
    let snapshot = Snapshot::read(path)?;
    if snapshot.config != *expected {
        return Err(SnapshotError::ConfigMismatch);
    }
    Ok(snapshot.instantiate())
}

/// The current wall-clock time in unix seconds (0 if the clock is
/// before the epoch), shared by the stats surfaces that report
/// snapshot age.
#[must_use]
pub fn now_unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// 64-bit FNV-1a over `bytes` — the body checksum. Not cryptographic;
/// it guards against bit rot and torn writes, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader over the snapshot body; every
/// overrun is [`SnapshotError::Truncated`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = *self.bytes.get(self.pos).ok_or(SnapshotError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let end = self.pos.checked_add(4).ok_or(SnapshotError::Truncated)?;
        let raw = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let end = self.pos.checked_add(8).ok_or(SnapshotError::Truncated)?;
        let raw = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&[u8], SnapshotError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
        let raw = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> ConfigGuard {
        ConfigGuard::from_options(&DecideOptions::default())
    }

    fn sample_builder() -> SnapshotBuilder {
        let mut b = SnapshotBuilder::new(guard());
        let l: Expr = "(p q)* p".parse().unwrap();
        let r: Expr = "p (q p)*".parse().unwrap();
        b.add_nka_verdict(&l, &r, true);
        b.add_ka_verdict(&l, &r, true);
        let sf: Expr = "a (b + c)".parse().unwrap();
        let mut ms = WordMultiset::new();
        let (a, bb, c) = (
            Symbol::intern("a"),
            Symbol::intern("b"),
            Symbol::intern("c"),
        );
        ms.insert(Word::from_symbols([a, bb]), 1);
        ms.insert(Word::from_symbols([a, c]), 1);
        b.add_multiset(&sf, &ms);
        b.add_cert(
            "x := 0",
            "x := 0;; skip",
            true,
            CertificateStats {
                starfree_hits: 1,
                prefix_hits: 0,
                fastpath_fallbacks: 0,
            },
        );
        b
    }

    #[test]
    fn round_trip_preserves_every_section() {
        let b = sample_builder();
        let bytes = b.encode(1_700_000_000);
        let snap = Snapshot::decode(&bytes).unwrap();
        let summary = snap.summary();
        assert_eq!(summary.version, VERSION);
        assert_eq!(summary.created_unix_secs, 1_700_000_000);
        assert_eq!(summary.nka_verdicts, 1);
        assert_eq!(summary.ka_verdicts, 1);
        assert_eq!(summary.multisets, 1);
        assert_eq!(summary.certs, 1);
        assert_eq!(summary.entry_count(), 4);
        let loaded = snap.instantiate();
        // Hash-consing makes the restored handles canonical: they are
        // *identical* to freshly parsed terms, not merely equal.
        let l: Expr = "(p q)* p".parse().unwrap();
        let r: Expr = "p (q p)*".parse().unwrap();
        let (rl, rr, v) = loaded.nka[0];
        assert!(v);
        let mut restored = [rl.id(), rr.id()];
        let mut fresh = [l.id(), r.id()];
        restored.sort();
        fresh.sort();
        assert_eq!(restored, fresh);
        assert_eq!(loaded.multisets[0].1.len(), 2);
        assert_eq!(loaded.certs[0].p, "x := 0");
        assert!(loaded.certs[0].holds);
    }

    #[test]
    fn duplicate_entries_collapse() {
        let mut b = sample_builder();
        let l: Expr = "(p q)* p".parse().unwrap();
        let r: Expr = "p (q p)*".parse().unwrap();
        b.add_nka_verdict(&l, &r, true);
        b.add_cert("x := 0", "x := 0;; skip", true, CertificateStats::default());
        assert_eq!(b.entry_count(), 4);
    }

    #[test]
    fn scratch_entries_are_refused() {
        let mut b = SnapshotBuilder::new(guard());
        let p: Expr = "p".parse().unwrap();
        {
            let _scope = nka_syntax::ScratchScope::enter();
            let s = p.star().star();
            assert!(s.id().is_scratch());
            b.add_nka_verdict(&s, &s, true);
            b.add_multiset(&s, &WordMultiset::new());
        }
        assert_eq!(b.entry_count(), 0);
    }

    #[test]
    fn corruption_degrades_to_typed_errors_never_panics() {
        let bytes = sample_builder().encode(42);
        // Zero-length and sub-header files: truncated.
        assert!(matches!(
            Snapshot::decode(&[]),
            Err(SnapshotError::Truncated)
        ));
        assert!(matches!(
            Snapshot::decode(&bytes[..10]),
            Err(SnapshotError::Truncated)
        ));
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
        // A body bit-flip trips the checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncation mid-body also trips the checksum first — still a
        // typed error, still cold start.
        assert!(Snapshot::decode(&bytes[..bytes.len() - 4]).is_err());
        // Every byte-level truncation of the file is *some* typed error.
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn config_mismatch_degrades_to_cold() {
        let bytes = sample_builder().encode(42);
        let snap = Snapshot::decode(&bytes).unwrap();
        assert_eq!(snap.config, guard());
        let other = ConfigGuard {
            float_ablation: true,
            ..guard()
        };
        // Via the one-step loader.
        let dir = std::env::temp_dir().join(format!("nka-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("config.snap");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path, &other),
            Err(SnapshotError::ConfigMismatch)
        ));
        assert!(load(&path, &guard()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_to_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("nka-snap-write-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.snap");
        sample_builder().write_to(&path).unwrap();
        let snap = Snapshot::read(&path).unwrap();
        assert_eq!(snap.summary().entry_count(), 4);
        // No temp droppings left behind.
        let others = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(others, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_indices_are_rejected() {
        // Hand-craft a body whose expr table violates the post-order
        // child constraint: node 0 is a Star of node 0.
        let mut body = Vec::new();
        push_u64(&mut body, 0); // created
        body.push(0); // float_ablation
        push_u64(&mut body, 8192); // starfree_max_words
        push_u32(&mut body, 0); // no symbols
        push_u32(&mut body, 1); // one node
        body.push(5); // Star
        push_u32(&mut body, 0); // child = self
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
