//! Exact rational numbers over [`BigInt`].

use crate::{BigInt, Semiring};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
///
/// Q forms a field; the NKA decision procedure uses it as the weight domain
/// of the difference automaton whose zeroness is tested (the finite part of
/// an N̄-rational series embeds in Q).
///
/// # Examples
///
/// ```
/// use nka_semiring::BigRational;
/// let half = BigRational::new(1i64.into(), 2i64.into());
/// let third = BigRational::new(1i64.into(), 3i64.into());
/// assert_eq!((&half + &third).to_string(), "5/6");
/// assert_eq!((&half * &third).to_string(), "1/6");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

impl BigRational {
    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "BigRational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        if num.is_zero() {
            return BigRational {
                num,
                den: BigInt::from(1u64),
            };
        }
        let g = num.gcd(&den);
        if g != BigInt::from(1u64) {
            num = num.div_rem(&g).0;
            den = den.div_rem(&g).0;
        }
        BigRational { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Self {
        BigRational {
            num: BigInt::new(),
            den: BigInt::from(1u64),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        BigRational {
            num: BigInt::from(1u64),
            den: BigInt::from(1u64),
        }
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// The numerator (in lowest terms).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (in lowest terms, always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero rational");
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Lossy conversion to `f64` (diagnostics only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational {
            num: v,
            den: BigInt::from(1u64),
        }
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from(BigInt::from(v))
    }
}

impl From<u64> for BigRational {
    fn from(v: u64) -> Self {
        BigRational::from(BigInt::from(v))
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "BigRational division by zero");
        BigRational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, rhs: &BigRational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, rhs: &BigRational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigRational> for BigRational {
    fn mul_assign(&mut self, rhs: &BigRational) {
        *self = &*self * rhs;
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -self.num.clone(),
            den: self.den.clone(),
        }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(mut self) -> BigRational {
        self.num = -self.num;
        self
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplying preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == BigInt::from(1u64) {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl Semiring for BigRational {
    fn zero() -> Self {
        BigRational::zero()
    }
    fn one() -> Self {
        BigRational::one()
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        BigRational::is_zero(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::new(n.into(), d.into())
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), BigRational::zero());
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 9), r(3, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-3, 9).to_string(), "-1/3");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = BigRational::new(1i64.into(), 0i64.into());
    }
}
