//! The [`Semiring`] and [`StarSemiring`] traits.

use std::fmt::Debug;

/// A semiring `(S, +, ·, 0, 1)`.
///
/// Implementations must satisfy the usual laws: `+` is a commutative monoid
/// with unit [`Semiring::zero`], `·` is a monoid with unit [`Semiring::one`],
/// `·` distributes over `+`, and `0` annihilates `·`. The laws are exercised
/// by property tests in each implementing crate.
///
/// # Examples
///
/// ```
/// use nka_semiring::{ExtNat, Semiring};
///
/// fn dot<S: Semiring>(xs: &[S], ys: &[S]) -> S {
///     xs.iter()
///         .zip(ys)
///         .fold(S::zero(), |acc, (x, y)| acc.add(&x.mul(y)))
/// }
///
/// let a = [ExtNat::from(1u64), ExtNat::from(2u64)];
/// let b = [ExtNat::from(3u64), ExtNat::from(4u64)];
/// assert_eq!(dot(&a, &b), ExtNat::from(11u64));
/// ```
pub trait Semiring: Clone + PartialEq + Debug {
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool;
    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }
}

/// A semiring with a star operation satisfying `a* = 1 + a·a*`.
///
/// For [`crate::ExtNat`] this is Definition A.1 of the paper:
/// `0* = 1` and `n* = ∞` for `n ≥ 1` (including `∞* = ∞`).
pub trait StarSemiring: Semiring {
    /// The Kleene star of a scalar.
    fn star(&self) -> Self;
}
