//! Arbitrary-precision signed integers.
//!
//! The decision procedure for NKA equations reduces to a zeroness check on
//! Q-weighted automata; the Gaussian-elimination style basis computation
//! there requires exact arithmetic because path weights grow exponentially
//! in the expression size. No bignum crate is available offline, so this
//! module implements sign-magnitude big integers on 64-bit limbs
//! (little-endian), with schoolbook multiplication and Knuth Algorithm D
//! division — ample for automata with a few hundred states.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A signed arbitrary-precision integer.
///
/// # Examples
///
/// ```
/// use nka_semiring::BigInt;
/// let a = BigInt::from(1u64 << 62);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "21267647932558653966460912964485513216");
/// assert_eq!((&b - &b), BigInt::from(0i64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// -1, 0, or 1; zero iff `mag` is empty.
    sign: i8,
    /// Little-endian 64-bit limbs with no trailing (most-significant) zeros.
    mag: Vec<u64>,
}

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u128;
    for (i, &limb) in long.iter().enumerate() {
        let s = carry + u128::from(limb) + u128::from(*short.get(i).unwrap_or(&0));
        out.push(s as u64);
        carry = s >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// Computes `a - b`; requires `a >= b` in magnitude.
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &limb) in a.iter().enumerate() {
        let d = i128::from(limb) - i128::from(*b.get(i).unwrap_or(&0)) - borrow;
        if d < 0 {
            out.push((d + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = u128::from(out[k]) + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn shl_bits(a: &[u64], shift: u32) -> Vec<u64> {
    debug_assert!(shift < 64);
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &limb in a {
        out.push((limb << shift) | carry);
        carry = limb >> (64 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_bits(a: &[u64], shift: u32) -> Vec<u64> {
    debug_assert!(shift < 64);
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    for i in 0..a.len() {
        out[i] = a[i] >> shift;
        if i + 1 < a.len() {
            out[i] |= a[i + 1] << (64 - shift);
        }
    }
    trim(&mut out);
    out
}

/// Long division of magnitudes: returns `(quotient, remainder)`.
fn div_rem_mag(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!v.is_empty(), "division by zero magnitude");
    if cmp_mag(u, v) == Ordering::Less {
        return (Vec::new(), u.to_vec());
    }
    if v.len() == 1 {
        let d = u128::from(v[0]);
        let mut q = vec![0u64; u.len()];
        let mut rem: u128 = 0;
        for i in (0..u.len()).rev() {
            let cur = (rem << 64) | u128::from(u[i]);
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        trim(&mut q);
        let mut r = vec![rem as u64];
        trim(&mut r);
        return (q, r);
    }

    // Knuth TAOCP vol. 2, Algorithm D.
    let shift = v.last().unwrap().leading_zeros();
    let vn = shl_bits(v, shift);
    debug_assert_eq!(vn.len(), v.len());
    let mut un = shl_bits(u, shift);
    un.resize(u.len() + 1, 0);
    let n = vn.len();
    let m = un.len() - n - 1;
    let mut q = vec![0u64; m + 1];
    let vtop = u128::from(vn[n - 1]);
    let vsecond = u128::from(vn[n - 2]);
    for j in (0..=m).rev() {
        let top = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
        let mut qhat = top / vtop;
        let mut rhat = top % vtop;
        while qhat >> 64 != 0 || qhat * vsecond > ((rhat << 64) | u128::from(un[j + n - 2])) {
            qhat -= 1;
            rhat += vtop;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * u128::from(vn[i]) + carry;
            carry = p >> 64;
            let d = i128::from(un[i + j]) - i128::from(p as u64) - borrow;
            if d < 0 {
                un[i + j] = (d + (1i128 << 64)) as u64;
                borrow = 1;
            } else {
                un[i + j] = d as u64;
                borrow = 0;
            }
        }
        let d = i128::from(un[j + n]) - i128::from(carry as u64) - borrow;
        if d < 0 {
            // qhat was one too large: add back.
            un[j + n] = (d + (1i128 << 64)) as u64;
            qhat -= 1;
            let mut carry2 = 0u128;
            for i in 0..n {
                let s = u128::from(un[i + j]) + u128::from(vn[i]) + carry2;
                un[i + j] = s as u64;
                carry2 = s >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry2 as u64);
        } else {
            un[j + n] = d as u64;
        }
        q[j] = qhat as u64;
    }
    trim(&mut q);
    let mut rem = un[..n].to_vec();
    trim(&mut rem);
    (q, shr_bits(&rem, shift))
}

impl BigInt {
    /// The integer zero.
    pub fn new() -> Self {
        BigInt {
            sign: 0,
            mag: Vec::new(),
        }
    }

    fn from_mag(sign: i8, mut mag: Vec<u64>) -> Self {
        trim(&mut mag);
        if mag.is_empty() {
            BigInt::new()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Whether this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Whether this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Whether this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_mag(if self.sign == 0 { 0 } else { 1 }, self.mag.clone())
    }

    /// Euclidean division: `(self / rhs, self % rhs)` with truncation toward
    /// zero (like Rust's `/` and `%` on primitives).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        assert!(!rhs.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::new(), BigInt::new());
        }
        let (q, r) = div_rem_mag(&self.mag, &rhs.mag);
        (
            BigInt::from_mag(self.sign * rhs.sign, q),
            BigInt::from_mag(self.sign, r),
        )
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Conversion to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match self.mag.len() {
            0 => Some(0),
            1 => Some(i128::from(self.sign) * i128::from(self.mag[0])),
            2 => {
                let v = (u128::from(self.mag[1]) << 64) | u128::from(self.mag[0]);
                if self.sign > 0 && v <= i128::MAX as u128 {
                    Some(v as i128)
                } else if self.sign < 0 && v <= (i128::MAX as u128) + 1 {
                    Some((v as i128).wrapping_neg())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (used only for diagnostics, never for the
    /// exact decision procedure).
    pub fn to_f64(&self) -> f64 {
        let mut x = 0.0f64;
        for &limb in self.mag.iter().rev() {
            x = x * 1.8446744073709552e19 + limb as f64;
        }
        f64::from(self.sign) * x
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(top) => 64 * self.mag.len() - top.leading_zeros() as usize,
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::new()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(i128::from(v))
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_mag(1, vec![v])
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(i128::from(v))
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        };
        let mag = v.unsigned_abs();
        BigInt::from_mag(sign, vec![mag as u64, (mag >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.sign {
            0 => Ordering::Equal,
            1 => cmp_mag(&self.mag, &other.mag),
            _ => cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: -self.sign,
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            BigInt::from_mag(self.sign, add_mag(&self.mag, &rhs.mag))
        } else {
            match cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::new(),
                Ordering::Greater => BigInt::from_mag(self.sign, sub_mag(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_mag(rhs.sign, sub_mag(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_mag(self.sign * rhs.sign, mul_mag(&self.mag, &rhs.mag))
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        // Repeated short division by 10^19 (the largest power of ten < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks = Vec::new();
        while !mag.is_empty() {
            let (q, r) = div_rem_mag(&mag, &[CHUNK]);
            chunks.push(r.first().copied().unwrap_or(0));
            mag = q;
        }
        let mut iter = chunks.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{first}")?;
        }
        for chunk in iter {
            write!(f, "{chunk:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer syntax")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let ten = BigInt::from(10u64);
        let mut acc = BigInt::new();
        for b in digits.bytes() {
            acc = &(&acc * &ten) + &BigInt::from(u64::from(b - b'0'));
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic_matches_i128() {
        let samples: Vec<i128> = vec![0, 1, -1, 7, -13, 1 << 40, -(1 << 63), 999_999_999_999];
        for &x in &samples {
            for &y in &samples {
                assert_eq!((&b(x) + &b(y)).to_i128(), Some(x + y), "{x}+{y}");
                assert_eq!((&b(x) - &b(y)).to_i128(), Some(x - y), "{x}-{y}");
                if let (Some(p), true) = (x.checked_mul(y), true) {
                    assert_eq!((&b(x) * &b(y)).to_i128(), Some(p), "{x}*{y}");
                }
                if y != 0 {
                    let (q, r) = b(x).div_rem(&b(y));
                    assert_eq!(q.to_i128(), Some(x / y), "{x}/{y}");
                    assert_eq!(r.to_i128(), Some(x % y), "{x}%{y}");
                }
            }
        }
    }

    #[test]
    fn multi_limb_multiplication_and_division_roundtrip() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let d: BigInt = "987654321098765432109".parse().unwrap();
        let prod = &a * &d;
        let (q, r) = prod.div_rem(&d);
        assert_eq!(q, a);
        assert!(r.is_zero());
        let with_rem = &prod + &BigInt::from(17u64);
        let (q2, r2) = with_rem.div_rem(&d);
        assert_eq!(q2, a);
        assert_eq!(r2, BigInt::from(17u64));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn gcd_examples() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let g = a.gcd(&(&a * &b(77)));
        assert_eq!(g, a);
    }

    #[test]
    fn comparison_total_order() {
        let mut values = vec![b(-100), b(-1), b(0), b(1), b(2), b(1 << 70)];
        let sorted = values.clone();
        values.reverse();
        values.sort();
        assert_eq!(values, sorted);
    }

    #[test]
    fn knuth_d_add_back_branch() {
        // Crafted operands that exercise the rare "add back" correction in
        // Algorithm D: u = (2^128 - 1) * 2^64, v = 2^128 - 2^64 - ... pick
        // values near the qhat-overestimation boundary.
        let u = BigInt::from_mag(1, vec![0, u64::MAX, u64::MAX - 1]);
        let v = BigInt::from_mag(1, vec![u64::MAX, u64::MAX - 1]);
        let (q, r) = u.div_rem(&v);
        let recomposed = &(&q * &v) + &r;
        assert_eq!(recomposed, u);
        assert!(r.cmp(&v) == Ordering::Less);
    }

    #[test]
    fn bit_len() {
        assert_eq!(b(0).bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(BigInt::from(1u64 << 63).bit_len(), 64);
        let big: BigInt = "18446744073709551616".parse().unwrap(); // 2^64
        assert_eq!(big.bit_len(), 65);
    }
}
