//! The extended natural numbers `N̄ = N ∪ {∞}` (Definition A.1).

use crate::{Semiring, StarSemiring};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign};

/// An element of `N̄ = N ∪ {∞}`, the coefficient semiring of formal power
/// series over which NKA is sound and complete (Theorem A.6).
///
/// Arithmetic follows Definition A.1 of the paper:
///
/// * `0 + ∞ = ∞`, `n + ∞ = ∞`
/// * `0 · ∞ = ∞ · 0 = 0`, `n · ∞ = ∞ · n = ∞` for `n ≥ 1`
/// * `0* = 1`, `n* = ∞` for `n ≥ 1` (including `∞* = ∞`)
///
/// # Panics
///
/// Finite values are stored in a `u64`. Additions and multiplications whose
/// exact finite result would exceed `u64::MAX` panic rather than silently
/// saturating to infinity: conflating a huge finite coefficient with `∞`
/// would make the decision procedure unsound. All constructions in this
/// repository keep finite coefficients far below this bound.
///
/// # Examples
///
/// ```
/// use nka_semiring::ExtNat;
/// let n = ExtNat::from(3u64);
/// assert_eq!(n + ExtNat::INFINITY, ExtNat::INFINITY);
/// assert_eq!(ExtNat::zero_const() * ExtNat::INFINITY, ExtNat::zero_const());
/// assert!(n < ExtNat::INFINITY);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtNat {
    /// A finite natural number.
    Fin(u64),
    /// The top element `∞`.
    Inf,
}

impl ExtNat {
    /// The top element `∞`.
    pub const INFINITY: ExtNat = ExtNat::Inf;

    /// `0`, usable in `const` contexts (see also [`Semiring::zero`]).
    pub const fn zero_const() -> ExtNat {
        ExtNat::Fin(0)
    }

    /// `1`, usable in `const` contexts.
    pub const fn one_const() -> ExtNat {
        ExtNat::Fin(1)
    }

    /// Whether this is `∞`.
    pub fn is_infinite(self) -> bool {
        matches!(self, ExtNat::Inf)
    }

    /// Whether this is a finite natural.
    pub fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            ExtNat::Fin(n) => Some(n),
            ExtNat::Inf => None,
        }
    }

    /// Saturating conversion for display/statistics; `∞` maps to `u64::MAX`.
    pub fn to_saturating_u64(self) -> u64 {
        match self {
            ExtNat::Fin(n) => n,
            ExtNat::Inf => u64::MAX,
        }
    }
}

impl From<u64> for ExtNat {
    fn from(n: u64) -> Self {
        ExtNat::Fin(n)
    }
}

impl From<u32> for ExtNat {
    fn from(n: u32) -> Self {
        ExtNat::Fin(u64::from(n))
    }
}

impl Default for ExtNat {
    fn default() -> Self {
        ExtNat::Fin(0)
    }
}

impl PartialOrd for ExtNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExtNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (ExtNat::Fin(a), ExtNat::Fin(b)) => a.cmp(b),
            (ExtNat::Fin(_), ExtNat::Inf) => Ordering::Less,
            (ExtNat::Inf, ExtNat::Fin(_)) => Ordering::Greater,
            (ExtNat::Inf, ExtNat::Inf) => Ordering::Equal,
        }
    }
}

impl Add for ExtNat {
    type Output = ExtNat;
    fn add(self, rhs: ExtNat) -> ExtNat {
        match (self, rhs) {
            (ExtNat::Fin(a), ExtNat::Fin(b)) => {
                ExtNat::Fin(a.checked_add(b).expect("ExtNat addition overflow"))
            }
            _ => ExtNat::Inf,
        }
    }
}

impl AddAssign for ExtNat {
    fn add_assign(&mut self, rhs: ExtNat) {
        *self = *self + rhs;
    }
}

impl Mul for ExtNat {
    type Output = ExtNat;
    fn mul(self, rhs: ExtNat) -> ExtNat {
        match (self, rhs) {
            (ExtNat::Fin(0), _) | (_, ExtNat::Fin(0)) => ExtNat::Fin(0),
            (ExtNat::Fin(a), ExtNat::Fin(b)) => {
                ExtNat::Fin(a.checked_mul(b).expect("ExtNat multiplication overflow"))
            }
            _ => ExtNat::Inf,
        }
    }
}

impl MulAssign for ExtNat {
    fn mul_assign(&mut self, rhs: ExtNat) {
        *self = *self * rhs;
    }
}

impl Sum for ExtNat {
    fn sum<I: Iterator<Item = ExtNat>>(iter: I) -> ExtNat {
        iter.fold(ExtNat::Fin(0), Add::add)
    }
}

impl fmt::Display for ExtNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtNat::Fin(n) => write!(f, "{n}"),
            ExtNat::Inf => write!(f, "∞"),
        }
    }
}

impl Semiring for ExtNat {
    fn zero() -> Self {
        ExtNat::Fin(0)
    }
    fn one() -> Self {
        ExtNat::Fin(1)
    }
    fn add(&self, other: &Self) -> Self {
        *self + *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn is_zero(&self) -> bool {
        matches!(self, ExtNat::Fin(0))
    }
}

impl StarSemiring for ExtNat {
    fn star(&self) -> Self {
        match self {
            ExtNat::Fin(0) => ExtNat::Fin(1),
            _ => ExtNat::Inf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_absorbs_addition() {
        assert_eq!(ExtNat::Fin(5) + ExtNat::Inf, ExtNat::Inf);
        assert_eq!(ExtNat::Inf + ExtNat::Fin(0), ExtNat::Inf);
        assert_eq!(ExtNat::Inf + ExtNat::Inf, ExtNat::Inf);
    }

    #[test]
    fn zero_annihilates_infinity() {
        assert_eq!(ExtNat::Fin(0) * ExtNat::Inf, ExtNat::Fin(0));
        assert_eq!(ExtNat::Inf * ExtNat::Fin(0), ExtNat::Fin(0));
    }

    #[test]
    fn nonzero_times_infinity_is_infinity() {
        assert_eq!(ExtNat::Fin(3) * ExtNat::Inf, ExtNat::Inf);
        assert_eq!(ExtNat::Inf * ExtNat::Fin(1), ExtNat::Inf);
        assert_eq!(ExtNat::Inf * ExtNat::Inf, ExtNat::Inf);
    }

    #[test]
    fn star_definition_a1() {
        assert_eq!(ExtNat::Fin(0).star(), ExtNat::Fin(1));
        assert_eq!(ExtNat::Fin(1).star(), ExtNat::Inf);
        assert_eq!(ExtNat::Fin(7).star(), ExtNat::Inf);
        assert_eq!(ExtNat::Inf.star(), ExtNat::Inf);
    }

    #[test]
    fn order_extends_naturals() {
        assert!(ExtNat::Fin(3) < ExtNat::Fin(4));
        assert!(ExtNat::Fin(u64::MAX) < ExtNat::Inf);
        assert_eq!(ExtNat::Inf.cmp(&ExtNat::Inf), Ordering::Equal);
    }

    #[test]
    fn sum_of_iterator() {
        let total: ExtNat = (1u64..=4).map(ExtNat::from).sum();
        assert_eq!(total, ExtNat::Fin(10));
        let with_inf: ExtNat = [ExtNat::Fin(1), ExtNat::Inf].into_iter().sum();
        assert_eq!(with_inf, ExtNat::Inf);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn finite_overflow_panics() {
        let _ = ExtNat::Fin(u64::MAX) + ExtNat::Fin(1);
    }

    #[test]
    fn star_unfold_law_on_samples() {
        for a in [ExtNat::Fin(0), ExtNat::Fin(1), ExtNat::Fin(9), ExtNat::Inf] {
            // a* = 1 + a·a*
            assert_eq!(a.star(), ExtNat::Fin(1) + a * a.star());
        }
    }
}
