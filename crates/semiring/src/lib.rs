//! Semirings and exact arithmetic for the NKA decision procedure.
//!
//! This crate provides the scalar algebra underlying the semantic models of
//! non-idempotent Kleene algebra (Peng, Ying, Wu — PLDI 2022):
//!
//! * [`ExtNat`] — the extended natural numbers `N̄ = N ∪ {∞}` of
//!   Definition A.1, the coefficient semiring of formal power series.
//! * [`BigInt`] / [`BigRational`] — arbitrary-precision exact arithmetic.
//!   The zeroness check for Q-weighted automata (the finite part of the
//!   decision procedure) performs Gaussian elimination whose intermediate
//!   values can be exponential in the input size, so floating point would be
//!   unsound. The offline dependency set contains no bignum crate, hence the
//!   from-scratch implementation here.
//! * The [`Semiring`] and [`StarSemiring`] traits tying them together.
//!
//! # Examples
//!
//! ```
//! use nka_semiring::{ExtNat, Semiring, StarSemiring};
//!
//! let two = ExtNat::from(2u64);
//! assert_eq!(two.star(), ExtNat::INFINITY);           // n* = ∞ for n ≥ 1
//! assert_eq!(ExtNat::zero().star(), ExtNat::one());   // 0* = 1
//! assert_eq!(ExtNat::INFINITY * ExtNat::zero(), ExtNat::zero()); // ∞·0 = 0
//! ```

mod bigint;
mod extnat;
mod rational;
mod traits;

pub use bigint::BigInt;
pub use extnat::ExtNat;
pub use rational::BigRational;
pub use traits::{Semiring, StarSemiring};

/// The Boolean semiring `({false, true}, ∨, ∧)`.
///
/// Used for the support automata (NFA view) inside the decision procedure.
///
/// # Examples
///
/// ```
/// use nka_semiring::{Boolean, Semiring, StarSemiring};
/// assert_eq!(Boolean(true).add(&Boolean(false)), Boolean(true));
/// assert_eq!(Boolean(false).star(), Boolean(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Boolean(pub bool);

impl Semiring for Boolean {
    fn zero() -> Self {
        Boolean(false)
    }
    fn one() -> Self {
        Boolean(true)
    }
    fn add(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }
    fn is_zero(&self) -> bool {
        !self.0
    }
}

impl StarSemiring for Boolean {
    fn star(&self) -> Self {
        Boolean(true)
    }
}

impl std::fmt::Display for Boolean {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.0 { "1" } else { "0" })
    }
}
