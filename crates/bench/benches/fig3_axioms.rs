//! FIG3 — soundness of the NKA axioms across the three models: the
//! truncated power-series oracle, the decision procedure, and the quantum
//! path model at growing Hilbert dimension (Theorem 3.6 / 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_core::axioms::EqAxiom;
use nka_qpath::{action::actions_approx_eq, Interpretation};
use nka_series::eval;
use nka_syntax::{Expr, Symbol};
use qsim_quantum::{gates, Measurement, Superoperator};
use std::hint::black_box;

fn axiom_instances() -> Vec<(Expr, Expr)> {
    let args: Vec<Expr> = ["a", "b", "a b"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    EqAxiom::ALL
        .iter()
        .map(|ax| ax.instantiate(&args[..ax.arity()]))
        .collect()
}

fn interpretation(dim: usize) -> Interpretation {
    let meas = Measurement::computational_basis(dim);
    let mut int = Interpretation::new(dim);
    // a = branch 0 then a global rotation, b = branch 1.
    let mut u = qsim_linalg::CMatrix::identity(dim);
    for k in 0..dim.trailing_zeros() as usize {
        let mut space = qsim_quantum::RegisterSpace::new();
        let regs: Vec<_> = (0..dim.trailing_zeros() as usize)
            .map(|i| space.add_register(&format!("q{i}"), 2))
            .collect();
        u = &space.embed(&gates::hadamard(), &[regs[k]]) * &u;
    }
    int.assign(
        Symbol::intern("a"),
        meas.branch(0).compose(&Superoperator::from_unitary(&u)),
    );
    int.assign(Symbol::intern("b"), meas.branch(1));
    int
}

fn bench_fig3(c: &mut Criterion) {
    let instances = axiom_instances();
    let alphabet = [Symbol::intern("a"), Symbol::intern("b")];

    c.bench_function("fig3/series_oracle_all_axioms", |b| {
        b.iter(|| {
            for (l, r) in &instances {
                assert_eq!(
                    eval(black_box(l), &alphabet, 3),
                    eval(black_box(r), &alphabet, 3)
                );
            }
        });
    });

    c.bench_function("fig3/decision_procedure_all_axioms", |b| {
        b.iter(|| {
            // Fresh engine per sweep: the axiom instances share subterms,
            // so even a cold engine amortizes compilations within a sweep.
            let mut engine = nka_wfa::Decider::new();
            for (l, r) in &instances {
                assert!(engine.decide(black_box(l), black_box(r)).unwrap());
            }
        });
    });

    let mut group = c.benchmark_group("fig3/quantum_path_model");
    group.sample_size(10);
    for dim in [2usize, 4, 8] {
        let int = interpretation(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                for (l, r) in &instances {
                    assert!(actions_approx_eq(
                        &int.action(black_box(l)),
                        &int.action(black_box(r))
                    ));
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_fig3
}
criterion_main!(benches);
