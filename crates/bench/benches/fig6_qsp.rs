//! FIG6-QSP — the Appendix B optimization: algebraic certificate versus
//! gate-level semantic verification across QSP instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_apps::qsp::{qsp_optimization_proof, QspInstance};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/algebraic_proof", |b| {
        b.iter(|| {
            let horn = qsp_optimization_proof();
            black_box(&horn).assert_checked();
        });
    });

    let mut group = c.benchmark_group("fig6/hypothesis_discharge");
    group.sample_size(10);
    for (n, l) in [(1usize, 2usize), (2, 2), (2, 3)] {
        let inst = QspInstance::new(n, l);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_L{l}_dim{}", inst.dim)),
            &inst,
            |b, inst| b.iter(|| assert!(inst.hypotheses_hold(1e-8))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig6/semantic_equality");
    group.sample_size(10);
    for (n, l) in [(1usize, 2usize), (2, 2)] {
        let inst = QspInstance::new(n, l);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_L{l}_dim{}", inst.dim)),
            &inst,
            |b, inst| b.iter(|| assert!(inst.programs_equal(1e-7))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_fig6
}
criterion_main!(benches);
