//! SEC6-NF — the Section-6 worked example (proof construction/checking)
//! and the general Theorem-6.1 normal-form transformation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_apps::normal_form_example::{section6_proof, verify_section6_semantically};
use nka_qprog::normal_form::{normalize, verify_normal_form};
use nka_qprog::Program;
use qsim_quantum::{gates, Measurement};
use std::hint::black_box;

fn shapes() -> Vec<(&'static str, Program)> {
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());
    let coin = Program::while_loop(["m0", "m1"], &meas, h);
    vec![
        ("seq2", coin.then(&coin)),
        (
            "case",
            Program::case(["n0", "n1"], &meas, vec![coin.clone(), x.clone()]),
        ),
        (
            "nested",
            Program::while_loop(["n0", "n1"], &meas, coin.then(&x)),
        ),
    ]
}

/// The verification arm only uses the shapes whose guard spaces stay
/// small enough for repeated sampling (the dim-54 shapes are verified
/// once in the test suite instead).
fn verify_shapes() -> Vec<(&'static str, Program)> {
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());
    let coin = Program::while_loop(["m0", "m1"], &meas, h);
    vec![
        ("single", coin.clone()),
        ("case", Program::case(["n0", "n1"], &meas, vec![coin, x])),
    ]
}

fn bench_sec6(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec6/worked_example");
    group.sample_size(10);
    group.bench_function("algebraic_proof", |b| {
        b.iter(|| {
            let horn = section6_proof();
            black_box(&horn).assert_checked();
        });
    });
    group.bench_function("semantic_check", |b| {
        b.iter(|| assert!(verify_section6_semantically(1e-7)));
    });
    group.finish();

    let mut group = c.benchmark_group("sec6/theorem61_transform");
    group.sample_size(10);
    for (name, program) in shapes() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| {
                let nf = normalize(black_box(p));
                assert_eq!(nf.program().loop_count(), 1);
                nf
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sec6/theorem61_verify");
    group.sample_size(10);
    for (name, program) in verify_shapes() {
        let nf = normalize(&program);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(program, nf),
            |b, (p, nf)| {
                b.iter(|| assert!(verify_normal_form(p, nf, 1e-6)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_sec6
}
criterion_main!(benches);
