//! FIG4-UNROLL / FIG4-BOUND — validation cost of the two §5 compiler
//! rules: the algebraic certificate (dimension-independent) versus the
//! semantic check (density matrices, grows with qubit count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_apps::compiler_opt::{
    loop_boundary_proof, loop_unrolling_proof, verify_loop_boundary_semantically,
    verify_loop_unrolling_semantically,
};
use nka_apps::rule_library::{catalog, validate_rule};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/unrolling/algebraic_proof", |b| {
        b.iter(|| {
            let horn = loop_unrolling_proof();
            black_box(&horn).assert_checked();
        });
    });
    c.bench_function("fig4/boundary/algebraic_proof", |b| {
        b.iter(|| {
            let horn = loop_boundary_proof();
            black_box(&horn).assert_checked();
        });
    });

    let mut group = c.benchmark_group("fig4/unrolling/semantic");
    group.sample_size(10);
    for qubits in 1..=3usize {
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, &q| {
            b.iter(|| assert!(verify_loop_unrolling_semantically(q, 1e-7)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig4/boundary/semantic");
    group.sample_size(10);
    for qubits in 1..=2usize {
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, &q| {
            b.iter(|| assert!(verify_loop_boundary_semantically(q, 1e-7)));
        });
    }
    group.finish();

    // The extended §5-style rule catalog: full pipeline per rule
    // (re-check the certificate + compare the witness denotations).
    let mut group = c.benchmark_group("fig4/rule_library");
    group.sample_size(10);
    for entry in catalog() {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name),
            &entry,
            |b, entry| {
                b.iter(|| assert!(validate_rule(black_box(entry), 1e-9)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_fig4
}
criterion_main!(benches);
