//! DECIDE-SCALE — Remark 2.1: the equational theory of NKA is decidable.
//! Measures the decision procedure across expression sizes, plus two
//! ablations from DESIGN.md §6: the unsound `f64` zeroness arm, and the
//! truncated-series semi-oracle (refutation-complete only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_bench::random_exprs;
use nka_core::api::{Query, Session, SessionOptions, Verdict};
use nka_series::eval;
use nka_syntax::Symbol;
use nka_wfa::decide::{decide_eq_with, DecideOptions};
use nka_wfa::ka::{ka_equiv, saturate};
use nka_wfa::Decider;
use std::hint::black_box;

/// A deterministic loop-free `n`-gate two-qubit program: the
/// `prog_eq` scaling subject (its encoding is star-free, so the fast
/// path applies; with the fast path disabled the same pair runs the
/// full generic pipeline).
fn gate_program(n: usize) -> String {
    const G: [&str; 5] = ["h q0", "x q1", "cnot q0 q1", "s q0", "t q1"];
    let body = (0..n)
        .map(|i| G[i % G.len()])
        .collect::<Vec<_>>()
        .join("; ");
    format!("qubits 2; {body}")
}

fn bench_decide(c: &mut Criterion) {
    let alphabet = [Symbol::intern("a"), Symbol::intern("b")];

    let mut group = c.benchmark_group("decide/exact");
    group.sample_size(10);
    for size in [10usize, 20, 40, 80] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &exprs, |b, exprs| {
            b.iter(|| {
                // One cold engine per sweep: the honest end-to-end cost of
                // compiling + deciding each pair exactly once.
                let mut engine = Decider::new();
                for pair in exprs.chunks(2) {
                    let _ = engine.decide(black_box(&pair[0]), black_box(&pair[1]));
                }
            });
        });
    }
    group.finish();

    // The same sweeps against a persistent warm `Session` — the Query
    // API steady state `nka batch`/`nka serve` sit on: after the first
    // iteration every verdict is a cache hit, so this arm measures the
    // memoized lookup plus the per-query accounting (stats delta +
    // timing) of the API layer.
    let mut group = c.benchmark_group("decide/session_warm");
    group.sample_size(10);
    for size in [10usize, 20, 40, 80] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        let queries: Vec<Query> = exprs
            .chunks(2)
            .map(|pair| Query::NkaEq {
                lhs: pair[0],
                rhs: pair[1],
            })
            .collect();
        let mut session = Session::new();
        let _ = session.run_all(&queries); // prime the caches
        group.bench_with_input(BenchmarkId::from_parameter(size), &queries, |b, queries| {
            b.iter(|| {
                for query in queries {
                    black_box(session.run(black_box(query)));
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decide/f64_ablation");
    group.sample_size(10);
    let opts = DecideOptions {
        float_ablation: true,
        ..DecideOptions::default()
    };
    for size in [10usize, 20, 40] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &exprs, |b, exprs| {
            b.iter(|| {
                for pair in exprs.chunks(2) {
                    let _ = decide_eq_with(black_box(&pair[0]), black_box(&pair[1]), &opts);
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decide/series_truncation_ablation");
    group.sample_size(10);
    for size in [10usize, 20, 40] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &exprs, |b, exprs| {
            b.iter(|| {
                for pair in exprs.chunks(2) {
                    let _ = eval(black_box(&pair[0]), &alphabet, 4)
                        == eval(black_box(&pair[1]), &alphabet, 4);
                }
            });
        });
    }
    group.finish();

    // Remark 2.1's 1*K embedding: deciding the KA (language) theory via
    // the support DFAs, versus pushing the saturated pair through the
    // full weighted pipeline. Both decide the same relation on 1*K; the
    // support route skips the ∞-split and the exact-rational zeroness.
    let mut group = c.benchmark_group("decide/ka_support");
    group.sample_size(10);
    for size in [10usize, 20, 40] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &exprs, |b, exprs| {
            b.iter(|| {
                for pair in exprs.chunks(2) {
                    let _ = ka_equiv(black_box(&pair[0]), black_box(&pair[1]));
                }
            });
        });
    }
    group.finish();

    // Tiered-equivalence crossover (star-free fast path): loop-free
    // `prog_eq` pairs at 6/10/14 gates, equal and refuted directions,
    // decided end-to-end on a fresh session with the fast path on
    // (default options) vs off (`starfree_max_words: 0`, the pure
    // generic pipeline). The fast/generic gap at 14 gates is the
    // tentpole win: hundreds of ms generic vs single-digit ms fast.
    let mut group = c.benchmark_group("decide/prog_eq_loop_free");
    group.sample_size(10);
    for gates in [6usize, 10, 14] {
        let p = gate_program(gates);
        let equal = Query::prog_eq(&p, &format!("{p}; skip")).expect("well-formed");
        let refuted = Query::prog_eq(&p, &format!("{p}; z q0")).expect("well-formed");
        for (direction, expect_holds, query) in
            [("equal", true, &equal), ("refuted", false, &refuted)]
        {
            for (pipeline, starfree_max_words) in [("fast", 8192usize), ("generic", 0)] {
                let options = || {
                    SessionOptions::builder()
                        .decide(nka_wfa::decide::DecideOptions {
                            starfree_max_words,
                            ..DecideOptions::default()
                        })
                        .build()
                        .expect("bench options are in range")
                };
                // Both pipelines must agree on the verdict before any
                // timing is trusted.
                let verdict = Session::with_options(options()).run(query).verdict;
                assert!(
                    matches!(verdict, Verdict::ProgEq { holds, .. } if holds == expect_holds),
                    "{direction}/{pipeline} at {gates} gates answered {verdict:?}"
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("{direction}_{pipeline}"), gates),
                    query,
                    |b, query| {
                        b.iter(|| {
                            let mut session = Session::with_options(options());
                            black_box(session.run(black_box(query)));
                        });
                    },
                );
            }
        }
    }
    group.finish();

    let mut group = c.benchmark_group("decide/ka_via_saturated_nka");
    group.sample_size(10);
    for size in [10usize, 20, 40] {
        let exprs = random_exprs(8, size, 0xD5C1DE + size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &exprs, |b, exprs| {
            b.iter(|| {
                for pair in exprs.chunks(2) {
                    let _ = nka_wfa::decide_eq(
                        black_box(&saturate(&pair[0])),
                        black_box(&saturate(&pair[1])),
                    );
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_decide
}
criterion_main!(benches);
