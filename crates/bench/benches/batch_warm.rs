//! BATCH-WARM — the steady-state claim behind `nka batch`: a stream of
//! queries on one warm [`Session`] versus a fresh engine per query.
//!
//! The stream is 100 queries (50 distinct NKA/KA pairs, each issued
//! twice, as real batch files repeat themselves), so the one-session
//! arms exercise every cache class: expression compilations, DFA
//! determinizations, and whole-verdict hits.

use criterion::{criterion_group, criterion_main, Criterion};
use nka_bench::random_exprs;
use nka_core::api::{run_batch_parallel, Query, Session, SessionOptions};
use std::hint::black_box;

/// 100 queries: 50 distinct (NkaEq/KaEq alternating over random pairs),
/// each appearing twice.
fn query_stream() -> Vec<Query> {
    let exprs = random_exprs(100, 10, 0xBA7C4);
    let distinct: Vec<Query> = exprs
        .chunks(2)
        .enumerate()
        .map(|(i, pair)| {
            let (lhs, rhs) = (pair[0], pair[1]);
            if i % 2 == 0 {
                Query::NkaEq { lhs, rhs }
            } else {
                Query::KaEq { lhs, rhs }
            }
        })
        .collect();
    assert_eq!(distinct.len(), 50);
    let mut stream = distinct.clone();
    stream.extend(distinct);
    stream
}

fn bench_batch(c: &mut Criterion) {
    let queries = query_stream();
    assert_eq!(queries.len(), 100);

    // One throwaway engine per query: what a loop over one-shot
    // `decide_eq` calls (or spawning `nka decide` per query) costs.
    let mut group = c.benchmark_group("api/batch_cold_engines");
    group.sample_size(10);
    group.bench_function("100_queries", |b| {
        b.iter(|| {
            for query in &queries {
                let mut session = Session::new();
                black_box(session.run(black_box(query)));
            }
        });
    });
    group.finish();

    // One session for the whole stream, built fresh each iteration: the
    // honest `nka batch` cost including first-time compilations.
    let mut group = c.benchmark_group("api/batch_one_session");
    group.sample_size(10);
    group.bench_function("100_queries", |b| {
        b.iter(|| {
            let mut session = Session::new();
            for query in &queries {
                black_box(session.run(black_box(query)));
            }
        });
    });
    group.finish();

    // A persistent pre-warmed session: the serving steady state, where
    // every query is a verdict-cache hit.
    let mut group = c.benchmark_group("api/batch_warm_session");
    group.sample_size(10);
    let mut session = Session::new();
    let _ = session.run_all(&queries); // prime every cache class
    assert!(session.stats().answer_hits > 0);
    group.bench_function("100_queries", |b| {
        b.iter(|| {
            for query in &queries {
                black_box(session.run(black_box(query)));
            }
        });
    });
    group.finish();

    // The sharded batch path behind `nka batch --jobs N`: fresh worker
    // sessions per iteration (cost-comparable to batch_one_session).
    // On a single hardware thread the extra jobs measure pure sharding
    // overhead (thread spawn + per-worker cache misses on shared
    // expressions); with real cores they measure the speedup.
    let mut group = c.benchmark_group("api/batch_parallel");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("{jobs}_jobs"), |b| {
            b.iter(|| {
                black_box(run_batch_parallel(
                    black_box(&queries),
                    &SessionOptions::default(),
                    jobs,
                ));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_batch
}
criterion_main!(benches);
