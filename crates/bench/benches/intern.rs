//! INTERN — the cost model of the hash-consing arena behind Expr API v2.
//!
//! Two regimes on the Figure 2 theorem terms (both sides of all seven
//! equations):
//!
//! * **cold** — every iteration renames the atoms to fresh symbols, so
//!   each build inserts never-before-seen nodes: the full intern path
//!   (hash, stripe lock, leak-allocate, two map writes). This is the
//!   cost a *first-ever* query pays per node.
//! * **warm** — every iteration rebuilds the same terms node-by-node,
//!   so each build is pure lookup (hash, stripe lock, map hit): the
//!   steady-state cost of re-materializing a known term, and an upper
//!   bound on what `parse` adds over the arena itself.
//!
//! `handle_ops` measures what the redesign bought: `clone`/`eq`/`hash`
//! on a ~45-node term, which were O(size) on the v1 `Rc` tree and must
//! be O(1) flat on handles.

use criterion::{criterion_group, criterion_main, Criterion};
use nka_bench::figure2_equations;
use nka_syntax::{Expr, ExprNode, ScratchScope, Symbol};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

/// Rebuilds `e` bottom-up through the public constructors with atoms
/// remapped by `rename`; every node goes through the interner.
fn rebuild_with(e: &Expr, rename: &dyn Fn(Symbol) -> Symbol) -> Expr {
    match e.node() {
        ExprNode::Zero => Expr::zero(),
        ExprNode::One => Expr::one(),
        ExprNode::Atom(s) => Expr::atom(rename(s)),
        ExprNode::Add(l, r) => rebuild_with(&l, rename).add(&rebuild_with(&r, rename)),
        ExprNode::Mul(l, r) => rebuild_with(&l, rename).mul(&rebuild_with(&r, rename)),
        ExprNode::Star(inner) => rebuild_with(&inner, rename).star(),
    }
}

fn fig2_terms() -> Vec<Expr> {
    figure2_equations()
        .into_iter()
        .flat_map(|(_, lhs, rhs)| [lhs.parse().unwrap(), rhs.parse().unwrap()])
        .collect()
}

fn bench_intern(c: &mut Criterion) {
    let terms = fig2_terms();
    let total_nodes: usize = terms.iter().map(Expr::size).sum();
    assert!(total_nodes > 40, "Fig. 2 corpus unexpectedly small");

    // Cold: fresh atom namespace per iteration → every node is an
    // arena insert. The epoch counter lives across iterations so no
    // name is ever reused.
    let mut group = c.benchmark_group("intern");
    group.sample_size(10);
    let mut epoch = 0u64;
    group.bench_function("fig2_cold", |b| {
        b.iter(|| {
            epoch += 1;
            let rename = |s: Symbol| Symbol::intern(&format!("{}_{epoch}", s.name()));
            for t in &terms {
                black_box(rebuild_with(black_box(t), &rename));
            }
        });
    });

    // Warm: identical structure every iteration → every node is an
    // arena hit. Bench note: the Arena lifecycle v1 two-region probe
    // regressed this from 2.85 µs to 4.41 µs; the no-scope fast path
    // (depth `Cell` + thread-local persistent-hit cache in `intern`,
    // which skips both SipHash passes and the stripe mutex on a warm
    // hit) brought it to ~1.25 µs.
    group.bench_function("fig2_warm", |b| {
        b.iter(|| {
            for t in &terms {
                black_box(rebuild_with(black_box(t), &|s| s));
            }
        });
    });

    // Scratch lifecycle (Arena lifecycle v1): intern the corpus into a
    // scratch scope and retire it, every iteration. This is the
    // reclamation constant the auto-prover pays per query — compare
    // with `fig2_cold` (persistent insert, never reclaimed): the gap is
    // the cost of truncate-and-evict on retirement, and slot reuse
    // means steady-state memory stays flat no matter how many
    // iterations run.
    group.bench_function("scratch_scope_churn", |b| {
        let rename = |s: Symbol| Symbol::intern(&format!("{}_scr", s.name()));
        b.iter(|| {
            let scope = ScratchScope::enter();
            for t in &terms {
                black_box(rebuild_with(black_box(t), &rename));
            }
            black_box(scope.live_nodes());
            drop(scope); // retire: truncation + dedup-map eviction
        });
    });

    // The O(1) handle operations the Decider's warm path is built on.
    let big = terms.iter().fold(Expr::one(), |acc, t| acc.mul(t)).star();
    group.bench_function("handle_ops", |b| {
        b.iter(|| {
            let copy = *black_box(&big);
            let eq = black_box(&copy) == black_box(&big);
            let mut h = DefaultHasher::new();
            black_box(&big).hash(&mut h);
            black_box((copy, eq, h.finish()));
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_intern
}
criterion_main!(benches);
