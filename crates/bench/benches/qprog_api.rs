//! QPROG-API — the quantum workload surface: what a `prog_eq` /
//! `hoare` wire query costs end to end (parse → encode-under-scratch →
//! decide/wlp → retire), and how the promote-on-equal policy amortizes
//! repeated equal comparisons.
//!
//! Three arms:
//!
//! * `prog_eq_cold` — 16 distinct refuted pairs, fresh session per
//!   sweep: the adversarial-traffic steady state (nothing promotes, the
//!   scratch region churns, every decide compiles).
//! * `prog_eq_warm` — one equal pair re-issued on a warm session: after
//!   the first decide promotes the encodings, repeats are an encode
//!   (onto persistent ids) plus a verdict-cache hit.
//! * `hoare` — one triple checked per iteration: wlp is a dense
//!   Liouville computation, so this floor is numeric, not algebraic.

use criterion::{criterion_group, criterion_main, Criterion};
use nka_core::api::{Query, Session, Verdict};
use std::hint::black_box;

const GATES: [&str; 6] = ["h", "x", "y", "z", "s", "t"];

/// A distinct single-qubit `len`-gate program per index (base-6
/// digits).
fn gate_word_n(i: usize, len: usize) -> String {
    let mut k = i;
    let gates = (0..len)
        .map(|_| {
            let g = format!("{} q0", GATES[k % 6]);
            k /= 6;
            g
        })
        .collect::<Vec<_>>()
        .join("; ");
    format!("qubits 1; {gates}")
}

/// A distinct single-qubit 5-gate program per index (base-6 digits).
fn gate_word(i: usize) -> String {
    gate_word_n(i, 5)
}

fn bench_prog_eq(c: &mut Criterion) {
    // Refuted pairs: p vs p;z — nothing promotes, full churn.
    let cold_pairs: Vec<Query> = (0..16)
        .map(|i| {
            let p = gate_word(i);
            Query::prog_eq(&p, &format!("{p}; z q0")).expect("well-formed")
        })
        .collect();
    let mut group = c.benchmark_group("qprog/prog_eq_cold");
    group.sample_size(10);
    group.bench_function("16_refuted_pairs", |b| {
        b.iter(|| {
            let mut session = Session::new();
            for query in &cold_pairs {
                black_box(session.run(black_box(query)));
            }
        });
    });
    group.finish();

    // 14-gate rows (the ISSUE's long-program target; loop-free, so the
    // star-free fast path answers them): same refuted-churn shape as
    // the 5-gate arm, at the program length the tiered pipeline was
    // built for.
    let cold_pairs_14: Vec<Query> = (0..16)
        .map(|i| {
            let p = gate_word_n(i, 14);
            Query::prog_eq(&p, &format!("{p}; z q0")).expect("well-formed")
        })
        .collect();
    let mut group = c.benchmark_group("qprog/prog_eq_cold_14g");
    group.sample_size(10);
    group.bench_function("16_refuted_pairs", |b| {
        b.iter(|| {
            let mut session = Session::new();
            for query in &cold_pairs_14 {
                black_box(session.run(black_box(query)));
            }
        });
    });
    group.finish();

    // The acceptance row: one equal 14-gate pair on a *fresh* session
    // per iteration — parse, encode, and a first-ever decide, nothing
    // amortized. The tiered pipeline targets this in the low-ms range.
    let p14 = gate_word_n(7, 14);
    let equal_14 = Query::prog_eq(&p14, &format!("{p14}; skip")).expect("well-formed");
    let mut group = c.benchmark_group("qprog/prog_eq_equal_14g");
    group.sample_size(10);
    group.bench_function("fresh_session", |b| {
        b.iter(|| {
            let mut session = Session::new();
            black_box(session.run(black_box(&equal_14)));
        });
    });
    group.finish();

    // One equal pair on a warm session: post-promotion steady state.
    let equal = Query::prog_eq(
        "qubits 2; h q0; cnot q0 q1; skip",
        "qubits 2; skip; h q0; cnot q0 q1",
    )
    .expect("well-formed");
    let mut warm_session = Session::new();
    let first = warm_session.run(&equal);
    assert!(matches!(first.verdict, Verdict::ProgEq { holds: true, .. }));
    let mut group = c.benchmark_group("qprog/prog_eq_warm");
    group.bench_function("equal_pair_repeat", |b| {
        b.iter(|| black_box(warm_session.run(black_box(&equal))));
    });
    group.finish();

    let triple = Query::hoare("ket(1)", "qubits 1; x q0; h q0", "0.5 I").expect("well-formed");
    let mut session = Session::new();
    let mut group = c.benchmark_group("qprog/hoare");
    group.bench_function("one_qubit_triple", |b| {
        b.iter(|| black_box(session.run(black_box(&triple))));
    });
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    // The acceptance composite: loop-peeling + dead-branch fire (two
    // certified steps), the h;h gate-fusion advisory is refuted, and
    // the final whole-program certificate is decided — an optimize
    // query is several analyze sweeps plus one prog_eq per applied
    // step, so this floor sits well above the single-decide arms.
    let composite = Query::optimize(
        "qubits 2; if q0 { h q1; while q0 { h q1 } } else { skip }; \
         if q1 { x q0; abort } else { skip }; h q0; h q0",
        &[] as &[&str],
        32,
        1,
    )
    .expect("well-formed");
    let mut group = c.benchmark_group("qprog/optimize_cold");
    group.sample_size(10);
    group.bench_function("two_step_composite", |b| {
        b.iter(|| {
            let mut session = Session::new();
            black_box(session.run(black_box(&composite)));
        });
    });
    group.finish();

    // Warm repeat: every candidate verdict and the final certificate
    // hit the per-session caches; what's left is parse + rewrite +
    // re-encode churn.
    let mut warm_session = Session::new();
    let first = warm_session.run(&composite);
    assert!(matches!(
        first.verdict,
        Verdict::Optimized { ref steps, fixpoint: true, .. } if steps.len() == 2
    ));
    let mut group = c.benchmark_group("qprog/optimize_warm");
    group.bench_function("two_step_composite_repeat", |b| {
        b.iter(|| black_box(warm_session.run(black_box(&composite))));
    });
    group.finish();
}

criterion_group!(benches, bench_prog_eq, bench_optimize);
criterion_main!(benches);
