//! SERVE-THROUGHPUT — what the Serve v2 socket path costs on top of the
//! in-process warm session that `api/batch_warm_session` measures
//! (~124 ns/query): the same pre-warmed query stream, answered over a
//! loopback TCP connection to a running [`Server`].
//!
//! Two arms bound the wire overhead from both sides:
//!
//! * `roundtrip_warm` — strict request/response lockstep, one query per
//!   round trip: the full per-query wire cost (encode + syscall + wakeup
//!   + decode, both ways) dominated by scheduler latency.
//! * `pipelined_warm` — the whole stream written before reading the
//!   responses: the *throughput* view a loaded server actually sees,
//!   where syscall and wakeup costs amortize across the in-flight
//!   window.
//!
//! Comparing either arm against `api/batch_warm_session/100_queries`
//! gives the wire tax tracked in CHANGES.md.

use criterion::{criterion_group, criterion_main, Criterion};
use nka_bench::random_exprs;
use nka_core::api::{wire, Query, Session};
use nka_core::serve::{ListenAddr, ServeConfig, Server};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// The `batch_warm` stream: 100 queries, 50 distinct NKA/KA pairs each
/// issued twice (same seed, so the arms stay comparable across bench
/// files).
fn query_stream() -> Vec<Query> {
    let exprs = random_exprs(100, 10, 0xBA7C4);
    let distinct: Vec<Query> = exprs
        .chunks(2)
        .enumerate()
        .map(|(i, pair)| {
            let (lhs, rhs) = (pair[0], pair[1]);
            if i % 2 == 0 {
                Query::NkaEq { lhs, rhs }
            } else {
                Query::KaEq { lhs, rhs }
            }
        })
        .collect();
    let mut stream = distinct.clone();
    stream.extend(distinct);
    stream
}

fn bench_serve(c: &mut Criterion) {
    let queries = query_stream();
    let request_lines: Vec<String> = queries.iter().map(wire::encode_request).collect();

    let server = Server::bind(
        ServeConfig {
            workers: 2,
            json: true,
            ..ServeConfig::default()
        },
        &[ListenAddr::Tcp("127.0.0.1:0".to_owned())],
    )
    .expect("bind a loopback server");
    let handle = server.handle();
    let stream = TcpStream::connect(server.tcp_addrs()[0]).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // Prime the pool: after one pass, every query is a verdict-cache
    // hit in its worker (connection→worker affinity pins this client to
    // one warm session, mirroring the in-process warm arm). Also prime
    // an in-process session so the two arms agree on the answers.
    let mut check = Session::new();
    let mut line = String::new();
    for (query, request) in queries.iter().zip(&request_lines) {
        writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request writes");
        line.clear();
        reader.read_line(&mut line).expect("response reads");
        let expected = wire::encode_response(query, &check.run(query));
        assert_eq!(
            wire::stable_response_projection(&line),
            wire::stable_response_projection(&expected),
            "socket warm-up diverged from in-process session"
        );
    }

    // One query per round trip: the per-query wire floor.
    let mut group = c.benchmark_group("serve/roundtrip_warm");
    group.sample_size(10);
    group.bench_function("100_queries", |b| {
        b.iter(|| {
            for request in &request_lines {
                writer
                    .write_all(format!("{request}\n").as_bytes())
                    .expect("request writes");
                line.clear();
                reader.read_line(&mut line).expect("response reads");
                black_box(line.len());
            }
        });
    });
    group.finish();

    // The whole stream in flight at once: the amortized throughput view.
    // (100 requests ≈ 6 KiB, far under both the kernel buffers and the
    // server's default 64-deep per-connection window, so nothing stalls.)
    let mut group = c.benchmark_group("serve/pipelined_warm");
    group.sample_size(10);
    let mut burst = String::new();
    for request in &request_lines {
        burst.push_str(request);
        burst.push('\n');
    }
    group.bench_function("100_queries", |b| {
        b.iter(|| {
            writer.write_all(burst.as_bytes()).expect("burst writes");
            for _ in &request_lines {
                line.clear();
                reader.read_line(&mut line).expect("response reads");
                black_box(line.len());
            }
        });
    });
    group.finish();

    drop((reader, writer));
    handle.begin_drain(0, "bench complete");
    assert_eq!(server.join(), 0, "clean drain after the bench load");
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_serve
}
criterion_main!(benches);
