//! SCALE-MOTIV — the Section 1 motivation: "existing methods usually
//! involve exponential-size matrices in the system size … succinct
//! KA-based algebraic reasoning would greatly increase scalability."
//!
//! The same loop-unrolling rule is validated two ways while the qubit
//! count grows: the algebraic certificate has *constant* cost (it never
//! mentions the dimension), while the semantic check works on `2^q × 2^q`
//! densities over a `4^q`-element probe family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_apps::compiler_opt::{loop_unrolling_proof, verify_loop_unrolling_semantically};
use std::hint::black_box;

fn bench_scale(c: &mut Criterion) {
    // Constant-cost arm: build + check the proof once per iteration.
    let mut group = c.benchmark_group("scale_motivation");
    group.sample_size(10);
    for qubits in 1..=4usize {
        group.bench_with_input(BenchmarkId::new("algebraic", qubits), &qubits, |b, _| {
            // The proof is literally the same object at every size.
            b.iter(|| {
                let horn = loop_unrolling_proof();
                black_box(&horn).assert_checked();
            });
        });
        group.bench_with_input(BenchmarkId::new("semantic", qubits), &qubits, |b, &q| {
            b.iter(|| assert!(verify_loop_unrolling_semantically(q, 1e-7)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_scale
}
criterion_main!(benches);
