//! FIG2A/FIG2B — cost of establishing each derivable formula of Figure 2,
//! by three routes: constructing + checking the proof object, re-checking
//! a prebuilt proof, and the decision procedure.

use criterion::{criterion_group, criterion_main, Criterion};
use nka_bench::figure2_equations;
use nka_core::api::{Query, Session, Verdict};
use nka_core::theorems;
use nka_syntax::Expr;
use std::hint::black_box;

fn e(src: &str) -> Expr {
    src.parse().unwrap()
}

fn build_proof(name: &str) -> nka_core::Proof {
    let (p, q) = (e("p"), e("q"));
    match name {
        "fixed-point-right" => theorems::fixed_point_right(&p),
        "fixed-point-left" => theorems::fixed_point_left(&p),
        "product-star" => theorems::product_star(&p, &q),
        "sliding" => theorems::sliding(&p, &q),
        "denesting-left" => theorems::denesting_left(&p, &q),
        "denesting-right" => theorems::denesting_right(&p, &q),
        "unrolling" => theorems::unrolling(&p),
        _ => unreachable!("unknown theorem {name}"),
    }
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/construct_and_check");
    for (name, _, _) in figure2_equations() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let proof = build_proof(black_box(name));
                proof.check_closed().unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig2/check_only");
    for (name, _, _) in figure2_equations() {
        let proof = build_proof(name);
        group.bench_function(name, |b| {
            b.iter(|| black_box(&proof).check_closed().unwrap());
        });
    }
    group.finish();

    // Cold path: a fresh engine per decision (compile + determinize every
    // time) — this is what a one-shot `decide_eq` call costs.
    let mut group = c.benchmark_group("fig2/decision_procedure");
    for (name, lhs, rhs) in figure2_equations() {
        let (l, r) = (e(lhs), e(rhs));
        group.bench_function(name, |b| {
            b.iter(|| {
                nka_wfa::Decider::new()
                    .decide(black_box(&l), black_box(&r))
                    .unwrap()
            });
        });
    }
    group.finish();

    // Warm path: all seven theorems through one shared `Session`,
    // re-queried per iteration — verdicts come from the memoized caches
    // via the Query API the serving layers use.
    let mut group = c.benchmark_group("fig2/decision_session_warm");
    let queries: Vec<Query> = figure2_equations()
        .into_iter()
        .map(|(_, lhs, rhs)| Query::NkaEq {
            lhs: e(lhs),
            rhs: e(rhs),
        })
        .collect();
    let mut session = Session::new();
    assert!(session
        .run_all(&queries)
        .iter()
        .all(|resp| resp.verdict == Verdict::Holds));
    group.bench_function("all_theorems", |b| {
        b.iter(|| {
            for query in &queries {
                let resp = session.run(black_box(query));
                assert_eq!(resp.verdict, Verdict::Holds);
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_fig2
}
criterion_main!(benches);
