//! THM42-COMPLETE — evaluating the Appendix C.5 interpretation in the
//! quantum path model and checking eq. C.5.1 against the series oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nka_apps::completeness::CompletenessModel;
use nka_bench::random_exprs;
use nka_syntax::Symbol;
use std::hint::black_box;

fn bench_thm42(c: &mut Criterion) {
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let exprs = random_exprs(6, 6, 0xC51);

    let mut group = c.benchmark_group("thm42/c51_check");
    group.sample_size(10);
    for max_len in [1usize, 2] {
        let model = CompletenessModel::new(&alphabet, max_len);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len{max_len}_dim{}", model.dim())),
            &model,
            |b, model| {
                b.iter(|| {
                    for e in &exprs {
                        assert!(model.check_c51_on_epsilon(black_box(e)));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_thm42
}
criterion_main!(benches);
