//! FIG5-QHL — cost of checking Figure-5 derivations and of compiling them
//! into NKAT derivations (Theorem 7.8).

use criterion::{criterion_group, criterion_main, Criterion};
use nka_qprog::{EncoderSetting, Program};
use nkat::qhl::{encode_qhl, HoareTriple, QhlDerivation};
use qsim_linalg::{CMatrix, Complex};
use qsim_quantum::{gates, states, Measurement};
use std::hint::black_box;

fn loop_case() -> (QhlDerivation, Program) {
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let w = Program::while_loop(["m0", "m1"], &meas, h.clone());
    let half = CMatrix::identity(2).scale(Complex::from(0.5));
    let c = CMatrix::from_real(&[&[1.0, 0.0], &[0.0, 0.5]]);
    let body = QhlDerivation::Atomic(HoareTriple::new(&half, &h, &c));
    (
        QhlDerivation::Loop {
            a: states::basis_density(2, 0),
            inner: Box::new(body),
        },
        w,
    )
}

fn seq_case() -> (QhlDerivation, Program) {
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());
    let prog = h.then(&x);
    let plus = h.run(&states::basis_density(2, 0));
    let t1 = HoareTriple::new(&plus, &h, &states::basis_density(2, 0));
    let t2 = HoareTriple::new(
        &states::basis_density(2, 0),
        &x,
        &states::basis_density(2, 1),
    );
    (
        QhlDerivation::Seq(
            Box::new(QhlDerivation::Atomic(t1)),
            Box::new(QhlDerivation::Atomic(t2)),
        ),
        prog,
    )
}

fn bench_fig5(c: &mut Criterion) {
    for (name, (derivation, prog)) in [("loop", loop_case()), ("seq", seq_case())] {
        c.bench_function(&format!("fig5/{name}/semantic_side_conditions"), |b| {
            b.iter(|| black_box(&derivation).conclude(black_box(&prog)).unwrap());
        });
        c.bench_function(&format!("fig5/{name}/theorem78_compile"), |b| {
            b.iter(|| {
                let mut setting = EncoderSetting::new(2);
                let encoded =
                    encode_qhl(black_box(&derivation), black_box(&prog), &mut setting).unwrap();
                encoded.derivation.verify().unwrap();
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = nka_bench::criterion_config();
    targets = bench_fig5
}
criterion_main!(benches);
