//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one experiment of `EXPERIMENTS.md`
//! (which in turn indexes every figure of the paper — the paper is a
//! theory paper, so its "figures" are axiom sets, derivable formulae,
//! program pairs, and proof systems rather than measurement plots; the
//! benches measure the cost of *checking* each of them plus the scaling
//! claims of Section 1).

use nka_syntax::{random_expr, Expr, ExprGenConfig, Symbol};

/// Deterministic pseudo-random expressions over `{a, b}` of roughly
/// `size` nodes.
pub fn random_exprs(count: usize, size: usize, seed: u64) -> Vec<Expr> {
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let config = ExprGenConfig::new(alphabet).with_target_size(size);
    let mut state = seed;
    (0..count)
        .map(|_| random_expr(&config, &mut state))
        .collect()
}

/// The equations of Figure 2a/2b as parse-ready strings.
pub fn figure2_equations() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("fixed-point-right", "1 + p p*", "p*"),
        ("fixed-point-left", "1 + p* p", "p*"),
        ("product-star", "1 + p (q p)* q", "(p q)*"),
        ("sliding", "(p q)* p", "p (q p)*"),
        ("denesting-left", "(p + q)*", "(p* q)* p*"),
        ("denesting-right", "(p + q)*", "p* (q p*)*"),
        ("unrolling", "(p p)* (1 + p)", "p*"),
    ]
}

/// The shared Criterion configuration for every bench target: small
/// sample count and short windows so the full `cargo bench --workspace`
/// run finishes in minutes on a laptop-class machine. Shapes (who wins,
/// growth rates, crossovers) are unaffected; absolute noise floors rise.
#[must_use]
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .configure_from_args()
}
