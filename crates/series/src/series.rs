//! Truncated formal power series and the semantics map `{{−}}`.

use nka_semiring::{ExtNat, Semiring, StarSemiring};
use nka_syntax::{Expr, ExprNode, Symbol, Word};
use std::collections::BTreeMap;
use std::fmt;

/// A formal power series over `N̄`, truncated to words of length ≤ `max_len`
/// over a fixed alphabet.
///
/// Only non-zero coefficients are stored. All operations (including
/// [`Series::star`]) are exact on the retained prefix: truncation commutes
/// with `+`, `·` and `*` because the coefficient of a word only depends on
/// coefficients of words that are no longer.
///
/// # Examples
///
/// ```
/// use nka_series::Series;
/// use nka_syntax::{Symbol, Word};
/// use nka_semiring::ExtNat;
///
/// let a = Symbol::intern("a");
/// let atom = Series::atom(a, 4);
/// let star = atom.star();
/// // {{a*}}[a^n] = 1 for every n.
/// for n in 0..=4 {
///     let w = Word::from_symbols(std::iter::repeat(a).take(n));
///     assert_eq!(star.coeff(&w), ExtNat::from(1u64));
/// }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Series {
    max_len: usize,
    coeffs: BTreeMap<Word, ExtNat>,
}

/// Enumerates all words of length ≤ `max_len` over `alphabet`, shortest
/// first.
pub fn all_words(alphabet: &[Symbol], max_len: usize) -> Vec<Word> {
    let mut out = vec![Word::epsilon()];
    let mut frontier = vec![Word::epsilon()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet.len());
        for w in &frontier {
            for &s in alphabet {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

impl Series {
    /// The zero series.
    pub fn zero(max_len: usize) -> Series {
        Series {
            max_len,
            coeffs: BTreeMap::new(),
        }
    }

    /// The unit series `1ε`.
    pub fn one(max_len: usize) -> Series {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(Word::epsilon(), ExtNat::from(1u64));
        Series { max_len, coeffs }
    }

    /// The series `1a` for an atom.
    pub fn atom(sym: Symbol, max_len: usize) -> Series {
        let mut coeffs = BTreeMap::new();
        if max_len >= 1 {
            coeffs.insert(Word::from_symbols([sym]), ExtNat::from(1u64));
        }
        Series { max_len, coeffs }
    }

    /// The truncation length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The coefficient of `word` (zero if beyond the truncation length —
    /// callers should only query words of length ≤ [`Series::max_len`]).
    pub fn coeff(&self, word: &Word) -> ExtNat {
        self.coeffs
            .get(word)
            .copied()
            .unwrap_or(ExtNat::zero_const())
    }

    /// The non-zero coefficients, in word order.
    pub fn iter(&self) -> impl Iterator<Item = (&Word, ExtNat)> {
        self.coeffs.iter().map(|(w, &c)| (w, c))
    }

    /// The support (words with non-zero coefficient).
    pub fn support_len(&self) -> usize {
        self.coeffs.len()
    }

    fn insert_add(&mut self, word: Word, value: ExtNat) {
        if value.is_zero() || word.len() > self.max_len {
            return;
        }
        let entry = self.coeffs.entry(word).or_insert(ExtNat::zero_const());
        *entry += value;
    }

    /// Pointwise sum (Definition A.3, eq. A.0.1).
    ///
    /// # Panics
    ///
    /// Panics if the truncation lengths differ.
    pub fn add(&self, other: &Series) -> Series {
        assert_eq!(self.max_len, other.max_len, "mismatched truncation length");
        let mut out = self.clone();
        for (w, c) in other.iter() {
            out.insert_add(w.clone(), c);
        }
        out
    }

    /// Cauchy product (Definition A.3, eq. A.0.2), truncated.
    ///
    /// # Panics
    ///
    /// Panics if the truncation lengths differ.
    pub fn mul(&self, other: &Series) -> Series {
        assert_eq!(self.max_len, other.max_len, "mismatched truncation length");
        let mut out = Series::zero(self.max_len);
        for (u, cu) in self.iter() {
            if cu.is_zero() {
                continue;
            }
            for (v, cv) in other.iter() {
                if u.len() + v.len() > self.max_len {
                    continue;
                }
                out.insert_add(u.concat(v), cu * cv);
            }
        }
        out
    }

    /// Kleene star (Definition A.3, eq. A.0.3), truncated.
    ///
    /// Computed from the least-solution recurrence
    /// `(f*)[w] = f[ε]* · ( [w = ε] + Σ_{uv=w, u≠ε} f[u]·(f*)[v] )`,
    /// which agrees with the path-summation definition over the countably
    /// complete semiring `N̄`.
    pub fn star(&self) -> Series {
        let eps_star = self.coeff(&Word::epsilon()).star();
        let mut out = Series::zero(self.max_len);
        out.insert_add(Word::epsilon(), eps_star);
        // Process words in order of increasing length; a word's coefficient
        // depends only on coefficients of strictly shorter suffixes.
        for len in 1..=self.max_len {
            let mut new_coeffs: BTreeMap<Word, ExtNat> = BTreeMap::new();
            for (u, cu) in self.iter() {
                if u.is_empty() || u.len() > len {
                    continue;
                }
                let suffix_len = len - u.len();
                let known: Vec<(Word, ExtNat)> = out
                    .coeffs
                    .iter()
                    .filter(|(w, _)| w.len() == suffix_len)
                    .map(|(w, &c)| (w.clone(), c))
                    .collect();
                for (v, cv) in known {
                    let w = u.concat(&v);
                    let add = cu * cv;
                    if add.is_zero() {
                        continue;
                    }
                    let entry = new_coeffs.entry(w).or_insert(ExtNat::zero_const());
                    *entry += add;
                }
            }
            for (w, c) in new_coeffs {
                out.insert_add(w, eps_star * c);
            }
        }
        out
    }
}

impl fmt::Debug for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Series(≤{}; ", self.max_len)?;
        let mut first = true;
        for (w, c) in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}·{w}")?;
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The semantics map `{{−}} : ExpΣ → N̄⟨⟨Σ*⟩⟩` of Definition A.4, truncated
/// to words of length ≤ `max_len`.
///
/// The `alphabet` is only used to document the intended Σ; atoms outside it
/// are still handled (they simply contribute their own letters).
pub fn eval(expr: &Expr, _alphabet: &[Symbol], max_len: usize) -> Series {
    match expr.node() {
        ExprNode::Zero => Series::zero(max_len),
        ExprNode::One => Series::one(max_len),
        ExprNode::Atom(s) => Series::atom(s, max_len),
        ExprNode::Add(l, r) => eval(&l, _alphabet, max_len).add(&eval(&r, _alphabet, max_len)),
        ExprNode::Mul(l, r) => eval(&l, _alphabet, max_len).mul(&eval(&r, _alphabet, max_len)),
        ExprNode::Star(e) => eval(&e, _alphabet, max_len).star(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn ev(src: &str, len: usize) -> Series {
        let e: Expr = src.parse().unwrap();
        eval(&e, &[], len)
    }

    fn w(names: &[&str]) -> Word {
        Word::from_symbols(names.iter().map(|n| sym(n)))
    }

    #[test]
    fn unit_series() {
        let one = ev("1", 3);
        assert_eq!(one.coeff(&Word::epsilon()), ExtNat::from(1u64));
        assert_eq!(one.coeff(&w(&["a"])), ExtNat::zero_const());
        let zero = ev("0", 3);
        assert_eq!(zero.support_len(), 0);
    }

    #[test]
    fn non_idempotent_addition() {
        // {{a + a}}[a] = 2 — the load-bearing difference from KA.
        let s = ev("a + a", 2);
        assert_eq!(s.coeff(&w(&["a"])), ExtNat::from(2u64));
    }

    #[test]
    fn cauchy_product_counts_splits() {
        let s = ev("a* a*", 4);
        for n in 0..=4usize {
            let word = Word::from_symbols(std::iter::repeat_n(sym("a"), n));
            assert_eq!(s.coeff(&word), ExtNat::from(n as u64 + 1));
        }
    }

    #[test]
    fn star_of_one_is_infinite() {
        let s = ev("1*", 2);
        assert_eq!(s.coeff(&Word::epsilon()), ExtNat::INFINITY);
    }

    #[test]
    fn star_of_one_plus_atom() {
        // {{(1 + a)*}}[w] = ∞ for every w ∈ a*.
        let s = ev("(1 + a)*", 3);
        for n in 0..=3usize {
            let word = Word::from_symbols(std::iter::repeat_n(sym("a"), n));
            assert_eq!(s.coeff(&word), ExtNat::INFINITY, "length {n}");
        }
        assert_eq!(s.coeff(&w(&["b"])), ExtNat::zero_const());
    }

    #[test]
    fn fixed_point_law_holds() {
        // a* = 1 + a a*  as truncated series.
        let lhs = ev("a*", 5);
        let rhs = ev("1 + a a*", 5);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn denesting_law_holds() {
        let lhs = ev("(a + b)*", 4);
        let rhs = ev("(a* b)* a*", 4);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sliding_law_holds() {
        let lhs = ev("(a b)* a", 5);
        let rhs = ev("a (b a)*", 5);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn idempotence_fails() {
        assert_ne!(ev("a + a", 3), ev("a", 3));
        // ... but every theorem of NKA relates them monotonically; not checked here.
    }

    #[test]
    fn star_weights_count_decompositions() {
        // {{(a a)* (1 + a)}}[a^n] = 1 — unrolling (Fig. 2b) target shape.
        let lhs = ev("(a a)* (1 + a)", 6);
        let rhs = ev("a*", 6);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn infinite_coefficient_propagates_through_product() {
        // {{1* a}}[a] = ∞, and {{1* a b}} gives ∞ on "ab".
        let s = ev("1* a", 2);
        assert_eq!(s.coeff(&w(&["a"])), ExtNat::INFINITY);
        // ∞ · 0 = 0: {{1* 0}} is the zero series.
        let z = ev("1* 0", 2);
        assert_eq!(z.support_len(), 0);
    }

    #[test]
    fn all_words_enumeration() {
        let alphabet = [sym("a"), sym("b")];
        let words = all_words(&alphabet, 2);
        assert_eq!(words.len(), 1 + 2 + 4);
        assert_eq!(words[0], Word::epsilon());
    }

    #[test]
    fn star_handles_infinite_entry_coefficients() {
        // f = 1* a has f[a] = ∞; (f)*[a] must be ∞, coefficient on ε is 1.
        let s = ev("(1* a)*", 2);
        assert_eq!(s.coeff(&Word::epsilon()), ExtNat::from(1u64));
        assert_eq!(s.coeff(&w(&["a"])), ExtNat::INFINITY);
    }
}
