//! Formal power series over the extended naturals (Appendix A of the paper).
//!
//! A formal power series over an alphabet Σ is a function `f : Σ* → N̄`
//! (Definition A.2). Rational power series — those denoted by expressions
//! via the semantics map `{{−}}` (Definition A.4) — form a sound and
//! complete model of NKA (Theorem A.6):
//!
//! ```text
//! ⊢NKA e = f   ⇔   {{e}} = {{f}}
//! ```
//!
//! Full series are infinite objects; this crate represents their
//! **truncations to words of length ≤ L** ([`Series`]), which is exactly
//! what is needed to use them as a brute-force oracle: two rational series
//! differ iff they differ on some finite word, so the truncated semantics
//! refutes equality, and the `nka-wfa` decision procedure confirms it. The
//! two are cross-validated against each other in the integration tests.
//!
//! # Examples
//!
//! ```
//! use nka_series::{Series, eval};
//! use nka_syntax::{Expr, Symbol, Word};
//! use nka_semiring::ExtNat;
//!
//! let a = Symbol::intern("a");
//! let e: Expr = "a* a*".parse()?;
//! let s = eval(&e, &[a], 3);
//! // (a* a*)[a^n] = n + 1: the number of ways to split a^n in two.
//! let aa = Word::from_symbols([a, a]);
//! assert_eq!(s.coeff(&aa), ExtNat::from(3u64));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod series;

pub use series::{all_words, eval, Series};
