//! The quantum substrate: density operators, superoperators, measurements,
//! gates, and composite registers.
//!
//! This crate implements the quantum preliminaries of Section 3.1 of
//! Peng–Ying–Wu (PLDI 2022):
//!
//! * [`Superoperator`] — completely positive, trace-non-increasing maps in
//!   Kraus form, with composition, sums, duals (the Schrödinger–Heisenberg
//!   dual `E†`), and the Liouville (matrix) representation used for
//!   fixed-point computations;
//! * [`Measurement`] — general quantum measurements `{Mᵢ}` with
//!   `Σ Mᵢ†Mᵢ = I`, their branch superoperators `Mᵢ(ρ) = Mᵢ ρ Mᵢ†`, and
//!   projectivity checks;
//! * [`gates`] — the standard unitary gate library;
//! * [`RegisterSpace`] — composite Hilbert spaces with named registers and
//!   operator embedding (how `q := U[q̄]` acts on a subsystem);
//! * [`states`] — density-operator constructors.
//!
//! # Examples
//!
//! A measurement in the computational basis collapses the plus state:
//!
//! ```
//! use qsim_quantum::{states, Measurement};
//!
//! let plus = states::pure_state(&states::plus_amplitudes(1));
//! let meas = Measurement::computational_basis(2);
//! let (p0, post0) = meas.outcome(&plus, 0);
//! assert!((p0 - 0.5).abs() < 1e-10);
//! assert!(post0.approx_eq(&states::basis_density(2, 0), 1e-10));
//! ```

pub mod gates;
pub mod measurement;
pub mod registers;
pub mod states;
pub mod superop;

pub use measurement::Measurement;
pub use registers::RegisterSpace;
pub use superop::Superoperator;
