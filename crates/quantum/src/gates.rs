//! The standard unitary gate library.

use qsim_linalg::{CMatrix, Complex};

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Pauli X.
pub fn pauli_x() -> CMatrix {
    CMatrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]])
}

/// Pauli Y.
pub fn pauli_y() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex::ZERO, -Complex::I],
        vec![Complex::I, Complex::ZERO],
    ])
}

/// Pauli Z.
pub fn pauli_z() -> CMatrix {
    CMatrix::from_real(&[&[1.0, 0.0], &[0.0, -1.0]])
}

/// Hadamard.
pub fn hadamard() -> CMatrix {
    CMatrix::from_real(&[
        &[FRAC_1_SQRT_2, FRAC_1_SQRT_2],
        &[FRAC_1_SQRT_2, -FRAC_1_SQRT_2],
    ])
}

/// Phase gate S = diag(1, i).
pub fn s_gate() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex::ONE, Complex::ZERO],
        vec![Complex::ZERO, Complex::I],
    ])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t_gate() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex::ONE, Complex::ZERO],
        vec![Complex::ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)],
    ])
}

/// Z-rotation `RZ(θ) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex::cis(-theta / 2.0), Complex::ZERO],
        vec![Complex::ZERO, Complex::cis(theta / 2.0)],
    ])
}

/// Y-rotation.
pub fn ry(theta: f64) -> CMatrix {
    let (s, c) = (theta / 2.0).sin_cos();
    CMatrix::from_real(&[&[c, -s], &[s, c]])
}

/// X-rotation.
pub fn rx(theta: f64) -> CMatrix {
    let (s, c) = (theta / 2.0).sin_cos();
    CMatrix::from_rows(&[
        vec![Complex::from(c), -Complex::I * s],
        vec![-Complex::I * s, Complex::from(c)],
    ])
}

/// CNOT on two qubits (control = first tensor factor).
pub fn cnot() -> CMatrix {
    CMatrix::from_real(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, 0.0, 1.0, 0.0],
    ])
}

/// Controlled-Z on two qubits.
pub fn cz() -> CMatrix {
    CMatrix::from_real(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 0.0, 0.0, -1.0],
    ])
}

/// SWAP on two qubits.
pub fn swap() -> CMatrix {
    CMatrix::from_real(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// The controlled version of a `d × d` unitary: `|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ U`
/// (control = first tensor factor, a qubit).
///
/// # Panics
///
/// Panics if `u` is not square.
pub fn controlled(u: &CMatrix) -> CMatrix {
    assert!(u.is_square(), "controlled() needs a square matrix");
    let d = u.rows();
    let mut out = CMatrix::zeros(2 * d, 2 * d);
    for i in 0..d {
        out[(i, i)] = Complex::ONE;
        for j in 0..d {
            out[(d + i, d + j)] = u[(i, j)];
        }
    }
    out
}

/// The cyclic decrement unitary `Dec = |n−1⟩⟨0| + Σ_{j≥1} |j−1⟩⟨j|` on a
/// dimension-`n` register (`j ↦ (j − 1) mod n`), used by the QSP
/// construction of Appendix B.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn decrement(n: usize) -> CMatrix {
    assert!(n > 0);
    let mut m = CMatrix::zeros(n, n);
    for j in 0..n {
        let target = (j + n - 1) % n;
        m[(target, j)] = Complex::ONE;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_unitary(m: &CMatrix) {
        assert!(m.is_unitary(1e-12), "not unitary:\n{m}");
    }

    #[test]
    fn all_gates_are_unitary() {
        for g in [
            pauli_x(),
            pauli_y(),
            pauli_z(),
            hadamard(),
            s_gate(),
            t_gate(),
            rz(0.7),
            ry(1.3),
            rx(2.1),
            cnot(),
            cz(),
            swap(),
            controlled(&hadamard()),
            decrement(5),
        ] {
            assert_unitary(&g);
        }
    }

    #[test]
    fn algebraic_identities() {
        // HZH = X.
        let h = hadamard();
        let hzh = &(&h * &pauli_z()) * &h;
        assert!(hzh.approx_eq(&pauli_x(), 1e-12));
        // S² = Z.
        assert!((&s_gate() * &s_gate()).approx_eq(&pauli_z(), 1e-12));
        // T² = S.
        assert!((&t_gate() * &t_gate()).approx_eq(&s_gate(), 1e-12));
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let v = cnot().mul_vec(&[
            Complex::ZERO,
            Complex::ZERO,
            Complex::ONE, // |10⟩
            Complex::ZERO,
        ]);
        assert!(v[3].approx_eq(Complex::ONE, 1e-12)); // |11⟩
    }

    #[test]
    fn controlled_blocks() {
        let cu = controlled(&pauli_x());
        assert!(cu.approx_eq(&cnot(), 1e-12));
    }

    #[test]
    fn decrement_cycles() {
        let dec = decrement(3);
        // |0⟩ ↦ |2⟩, |1⟩ ↦ |0⟩, |2⟩ ↦ |1⟩.
        let v = dec.mul_vec(&[Complex::ONE, Complex::ZERO, Complex::ZERO]);
        assert!(v[2].approx_eq(Complex::ONE, 1e-12));
        let w = dec.mul_vec(&[Complex::ZERO, Complex::ONE, Complex::ZERO]);
        assert!(w[0].approx_eq(Complex::ONE, 1e-12));
    }
}
