//! Composite Hilbert spaces with named registers.
//!
//! Quantum while-programs act on registers (`q := U[q̄]` applies a unitary
//! to a *subset* of the variables); this module embeds operators on a
//! subset of registers into the full tensor-product space, for registers of
//! arbitrary (not necessarily qubit) dimensions — the QSP construction of
//! Appendix B uses a counter register of dimension `n + 1` and a term
//! register of dimension `L`.

use qsim_linalg::CMatrix;

/// A composite Hilbert space `H = H₀ ⊗ H₁ ⊗ …` of named registers.
///
/// # Examples
///
/// ```
/// use qsim_quantum::{gates, RegisterSpace};
///
/// let mut space = RegisterSpace::new();
/// let c = space.add_register("c", 3); // a qutrit counter
/// let q = space.add_register("q", 2); // a qubit
/// assert_eq!(space.dim(), 6);
/// let x_on_q = space.embed(&gates::pauli_x(), &[q]);
/// assert_eq!(x_on_q.rows(), 6);
/// assert!(x_on_q.is_unitary(1e-12));
/// # let _ = c;
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegisterSpace {
    names: Vec<String>,
    dims: Vec<usize>,
}

/// A handle to a register inside a [`RegisterSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterId(usize);

impl RegisterSpace {
    /// An empty space (dimension 1).
    pub fn new() -> RegisterSpace {
        RegisterSpace::default()
    }

    /// Appends a register of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn add_register(&mut self, name: &str, dim: usize) -> RegisterId {
        assert!(dim > 0, "register dimension must be positive");
        self.names.push(name.to_owned());
        self.dims.push(dim);
        RegisterId(self.names.len() - 1)
    }

    /// Total dimension (product of register dimensions).
    pub fn dim(&self) -> usize {
        self.dims.iter().product()
    }

    /// The dimension of one register.
    pub fn register_dim(&self, id: RegisterId) -> usize {
        self.dims[id.0]
    }

    /// The name of one register.
    pub fn register_name(&self, id: RegisterId) -> &str {
        &self.names[id.0]
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.dims.len()
    }

    /// Decomposes a full-space basis index into per-register digits.
    fn digits(&self, mut index: usize) -> Vec<usize> {
        let mut out = vec![0; self.dims.len()];
        for (k, &d) in self.dims.iter().enumerate().rev() {
            out[k] = index % d;
            index /= d;
        }
        out
    }

    /// Recomposes per-register digits into a full-space index.
    fn index(&self, digits: &[usize]) -> usize {
        let mut idx = 0;
        for (k, &d) in self.dims.iter().enumerate() {
            idx = idx * d + digits[k];
        }
        idx
    }

    /// Embeds an operator acting on the listed registers (in the given
    /// order) into the full space, acting as the identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `op`'s dimension differs from the product of the target
    /// register dimensions, or if a register is listed twice.
    pub fn embed(&self, op: &CMatrix, targets: &[RegisterId]) -> CMatrix {
        let target_dim: usize = targets.iter().map(|t| self.dims[t.0]).product();
        assert_eq!(op.rows(), target_dim, "operator/target dimension mismatch");
        assert_eq!(op.cols(), target_dim, "operator must be square");
        let mut seen = vec![false; self.dims.len()];
        for t in targets {
            assert!(!seen[t.0], "register listed twice in embed()");
            seen[t.0] = true;
        }

        let full = self.dim();
        let mut out = CMatrix::zeros(full, full);
        // Index of the target-subspace basis element selected by digits.
        let sub_index = |digits: &[usize]| -> usize {
            let mut idx = 0;
            for t in targets {
                idx = idx * self.dims[t.0] + digits[t.0];
            }
            idx
        };
        for col in 0..full {
            let col_digits = self.digits(col);
            let sub_col = sub_index(&col_digits);
            for sub_row in 0..target_dim {
                let entry = op[(sub_row, sub_col)];
                if entry.abs() == 0.0 {
                    continue;
                }
                // Rebuild the full row index: non-target digits unchanged,
                // target digits taken from sub_row.
                let mut row_digits = col_digits.clone();
                let mut rem = sub_row;
                for t in targets.iter().rev() {
                    row_digits[t.0] = rem % self.dims[t.0];
                    rem /= self.dims[t.0];
                }
                out[(self.index(&row_digits), col)] = entry;
            }
        }
        out
    }

    /// The projector `|k⟩⟨k|` on one register, embedded in the full space.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range for the register.
    pub fn basis_projector(&self, reg: RegisterId, k: usize) -> CMatrix {
        let d = self.dims[reg.0];
        assert!(k < d, "basis index out of range");
        let mut p = CMatrix::zeros(d, d);
        p[(k, k)] = qsim_linalg::Complex::ONE;
        self.embed(&p, &[reg])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use qsim_linalg::Complex;

    #[test]
    fn embedding_on_first_of_two_qubits() {
        let mut space = RegisterSpace::new();
        let a = space.add_register("a", 2);
        let _b = space.add_register("b", 2);
        let x_on_a = space.embed(&gates::pauli_x(), &[a]);
        let expected = gates::pauli_x().kron(&CMatrix::identity(2));
        assert!(x_on_a.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn embedding_on_second_of_two_qubits() {
        let mut space = RegisterSpace::new();
        let _a = space.add_register("a", 2);
        let b = space.add_register("b", 2);
        let x_on_b = space.embed(&gates::pauli_x(), &[b]);
        let expected = CMatrix::identity(2).kron(&gates::pauli_x());
        assert!(x_on_b.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn two_register_embedding_with_reordered_targets() {
        let mut space = RegisterSpace::new();
        let a = space.add_register("a", 2);
        let b = space.add_register("b", 2);
        // CNOT with control b, target a: embed with targets [b, a].
        let cx_ba = space.embed(&gates::cnot(), &[b, a]);
        // |a b⟩ = |0 1⟩ (index 1) ↦ |1 1⟩ (index 3).
        let v = cx_ba.mul_vec(&[Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO]);
        assert!(v[3].approx_eq(Complex::ONE, 1e-12));
        assert!(cx_ba.is_unitary(1e-12));
    }

    #[test]
    fn mixed_dimension_registers() {
        let mut space = RegisterSpace::new();
        let c = space.add_register("c", 3);
        let q = space.add_register("q", 2);
        assert_eq!(space.dim(), 6);
        let dec = space.embed(&gates::decrement(3), &[c]);
        assert!(dec.is_unitary(1e-12));
        // |c=0, q=1⟩ (index 1) ↦ |c=2, q=1⟩ (index 5).
        let mut v = vec![Complex::ZERO; 6];
        v[1] = Complex::ONE;
        let w = dec.mul_vec(&v);
        assert!(w[5].approx_eq(Complex::ONE, 1e-12));
        let _ = q;
    }

    #[test]
    fn basis_projectors_resolve_identity() {
        let mut space = RegisterSpace::new();
        let c = space.add_register("c", 3);
        let _q = space.add_register("q", 2);
        let sum = (0..3)
            .map(|k| space.basis_projector(c, k))
            .fold(CMatrix::zeros(6, 6), |acc, p| &acc + &p);
        assert!(sum.approx_eq(&CMatrix::identity(6), 1e-12));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_targets_rejected() {
        let mut space = RegisterSpace::new();
        let a = space.add_register("a", 2);
        let _ = space.embed(&gates::cnot(), &[a, a]);
    }
}
