//! Density-operator constructors.

use qsim_linalg::{CMatrix, Complex};

/// The density operator `|ψ⟩⟨ψ|` of a pure state given by amplitudes.
///
/// The amplitudes are normalized first.
///
/// # Panics
///
/// Panics if all amplitudes are (numerically) zero.
///
/// # Examples
///
/// ```
/// use qsim_quantum::states::pure_state;
/// use qsim_linalg::Complex;
/// let rho = pure_state(&[Complex::ONE, Complex::ONE]);
/// assert!((rho.trace().re - 1.0).abs() < 1e-12);
/// ```
pub fn pure_state(amplitudes: &[Complex]) -> CMatrix {
    let norm: f64 = amplitudes.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    assert!(norm > 1e-12, "cannot normalize the zero vector");
    let normalized: Vec<Complex> = amplitudes.iter().map(|&z| z * (1.0 / norm)).collect();
    CMatrix::outer(&normalized, &normalized)
}

/// The basis density operator `|k⟩⟨k|` in dimension `dim`.
///
/// # Panics
///
/// Panics if `k >= dim`.
pub fn basis_density(dim: usize, k: usize) -> CMatrix {
    assert!(k < dim, "basis index out of range");
    let mut amplitudes = vec![Complex::ZERO; dim];
    amplitudes[k] = Complex::ONE;
    pure_state(&amplitudes)
}

/// The maximally mixed state `I/dim`.
pub fn maximally_mixed(dim: usize) -> CMatrix {
    CMatrix::identity(dim).scale(Complex::from(1.0 / dim as f64))
}

/// Amplitudes of the `n`-qubit plus state `|+⟩^{⊗n}` (uniform).
pub fn plus_amplitudes(n: usize) -> Vec<Complex> {
    let dim = 1usize << n;
    vec![Complex::from(1.0); dim]
}

/// A deterministic pseudo-random density operator (full rank with
/// probability one), driven by a xorshift `seed` advanced in place.
///
/// Constructed as `A A† / tr(A A†)` for a random complex matrix `A`, which
/// is PSD with unit trace by construction.
pub fn random_density(dim: usize, seed: &mut u64) -> CMatrix {
    let mut next = || {
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = if x == 0 { 0x9E3779B97F4A7C15 } else { x };
        (*seed as f64 / u64::MAX as f64) - 0.5
    };
    let mut a = CMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            a[(i, j)] = Complex::new(next(), next());
        }
    }
    let psd = &a * &a.adjoint();
    let tr = psd.trace().re;
    psd.scale(Complex::from(1.0 / tr))
}

/// A deterministic pseudo-random *pure* density operator.
pub fn random_pure(dim: usize, seed: &mut u64) -> CMatrix {
    let mut next = || {
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = if x == 0 { 0x9E3779B97F4A7C15 } else { x };
        (*seed as f64 / u64::MAX as f64) - 0.5
    };
    let amplitudes: Vec<Complex> = (0..dim).map(|_| Complex::new(next(), next())).collect();
    pure_state(&amplitudes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_linalg::is_psd;

    #[test]
    fn pure_states_are_rank_one_projectors() {
        let rho = pure_state(&[Complex::ONE, Complex::I]);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((&rho * &rho).approx_eq(&rho, 1e-12));
        assert!(is_psd(&rho, 1e-10));
    }

    #[test]
    fn maximally_mixed_trace() {
        let rho = maximally_mixed(4);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_densities_are_states() {
        let mut seed = 42;
        for dim in [2usize, 3, 4, 8] {
            let rho = random_density(dim, &mut seed);
            assert!((rho.trace().re - 1.0).abs() < 1e-10);
            assert!(rho.is_hermitian(1e-10));
            assert!(is_psd(&rho, 1e-9));
        }
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let mut s1 = 7;
        let mut s2 = 7;
        assert!(random_density(3, &mut s1).approx_eq(&random_density(3, &mut s2), 0.0));
    }
}
