//! Completely positive, trace-non-increasing superoperators in Kraus form.

use qsim_linalg::{lowner_le, CMatrix};

/// A superoperator `E(ρ) = Σₖ Eₖ ρ Eₖ†` between Hilbert spaces of
/// dimensions `dim_in` and `dim_out` (Section 3.1; Kraus form by reference 43 of
/// the paper).
///
/// Superoperators compose with [`Superoperator::compose`] (note the
/// paper's convention `(E₁ ∘ E₂)(ρ) = E₂(E₁(ρ))` — left-to-right), sum
/// with [`Superoperator::sum`], and dualize with [`Superoperator::dual`].
///
/// # Examples
///
/// ```
/// use qsim_quantum::{gates, states, Superoperator};
///
/// let h = Superoperator::from_unitary(&gates::hadamard());
/// let rho = states::basis_density(2, 0);
/// let plus = h.apply(&rho);
/// assert!((plus[(0, 1)].re - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Superoperator {
    dim_in: usize,
    dim_out: usize,
    kraus: Vec<CMatrix>,
}

impl Superoperator {
    /// Builds a superoperator from Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators have inconsistent shapes.
    pub fn from_kraus(dim_in: usize, dim_out: usize, kraus: Vec<CMatrix>) -> Superoperator {
        for k in &kraus {
            assert_eq!(k.rows(), dim_out, "Kraus operator row mismatch");
            assert_eq!(k.cols(), dim_in, "Kraus operator column mismatch");
        }
        Superoperator {
            dim_in,
            dim_out,
            kraus,
        }
    }

    /// The identity superoperator on dimension `dim`.
    pub fn identity(dim: usize) -> Superoperator {
        Superoperator::from_kraus(dim, dim, vec![CMatrix::identity(dim)])
    }

    /// The zero superoperator on dimension `dim`.
    pub fn zero(dim: usize) -> Superoperator {
        Superoperator::from_kraus(dim, dim, Vec::new())
    }

    /// The unitary superoperator `ρ ↦ U ρ U†`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not square.
    pub fn from_unitary(u: &CMatrix) -> Superoperator {
        assert!(u.is_square(), "unitary must be square");
        Superoperator::from_kraus(u.rows(), u.rows(), vec![u.clone()])
    }

    /// The constant superoperator `C_A(ρ) = tr(ρ)·A` for a PSD `A`
    /// (Definition 7.2 of the paper — the semantic carrier of quantum
    /// predicates in the path model).
    ///
    /// Kraus operators: `{√λₖ |vₖ⟩⟨i|}` over the spectral decomposition
    /// `A = Σ λₖ|vₖ⟩⟨vₖ|` and the computational basis `|i⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square, Hermitian, and PSD within `1e-7`.
    pub fn constant(a: &CMatrix) -> Superoperator {
        assert!(a.is_square(), "constant superoperator needs a square A");
        assert!(a.is_hermitian(1e-7), "constant superoperator needs A = A†");
        let dim = a.rows();
        let eig = qsim_linalg::eigen::hermitian_eigen(a);
        let mut kraus = Vec::new();
        for (k, &val) in eig.values.iter().enumerate() {
            assert!(val > -1e-7, "constant superoperator needs a PSD A");
            if val <= 1e-12 {
                continue;
            }
            let v = eig.vector(k);
            for i in 0..dim {
                let mut basis = vec![qsim_linalg::Complex::ZERO; dim];
                basis[i] = qsim_linalg::Complex::ONE;
                kraus
                    .push(CMatrix::outer(&v, &basis).scale(qsim_linalg::Complex::from(val.sqrt())));
            }
        }
        Superoperator::from_kraus(dim, dim, kraus)
    }

    /// Input dimension.
    pub fn dim_in(&self) -> usize {
        self.dim_in
    }

    /// Output dimension.
    pub fn dim_out(&self) -> usize {
        self.dim_out
    }

    /// The Kraus operators.
    pub fn kraus(&self) -> &[CMatrix] {
        &self.kraus
    }

    /// Applies the superoperator to a (partial) density operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &CMatrix) -> CMatrix {
        assert_eq!(rho.rows(), self.dim_in);
        assert_eq!(rho.cols(), self.dim_in);
        let mut out = CMatrix::zeros(self.dim_out, self.dim_out);
        for k in &self.kraus {
            out = &out + &(&(k * rho) * &k.adjoint());
        }
        out
    }

    /// Sequential composition in the paper's convention:
    /// `(self ∘ then)(ρ) = then(self(ρ))`.
    ///
    /// # Panics
    ///
    /// Panics if `self.dim_out() != then.dim_in()`.
    pub fn compose(&self, then: &Superoperator) -> Superoperator {
        assert_eq!(self.dim_out, then.dim_in, "composition dimension mismatch");
        let mut kraus = Vec::with_capacity(self.kraus.len() * then.kraus.len());
        for k2 in &then.kraus {
            for k1 in &self.kraus {
                kraus.push(k2 * k1);
            }
        }
        Superoperator::from_kraus(self.dim_in, then.dim_out, kraus)
    }

    /// The sum `E₁ + E₂` (defined when the result is still
    /// trace-non-increasing; this constructor does not enforce that —
    /// use [`Superoperator::is_trace_nonincreasing`] to check).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sum(&self, other: &Superoperator) -> Superoperator {
        assert_eq!(self.dim_in, other.dim_in);
        assert_eq!(self.dim_out, other.dim_out);
        let mut kraus = self.kraus.clone();
        kraus.extend(other.kraus.iter().cloned());
        Superoperator::from_kraus(self.dim_in, self.dim_out, kraus)
    }

    /// The Schrödinger–Heisenberg dual `E†(ρ) = Σ Eₖ† ρ Eₖ`.
    pub fn dual(&self) -> Superoperator {
        Superoperator::from_kraus(
            self.dim_out,
            self.dim_in,
            self.kraus.iter().map(CMatrix::adjoint).collect(),
        )
    }

    /// `Σ Eₖ† Eₖ` — equals `I` for trace-preserving maps.
    pub fn kraus_sum(&self) -> CMatrix {
        let mut s = CMatrix::zeros(self.dim_in, self.dim_in);
        for k in &self.kraus {
            s = &s + &(&k.adjoint() * k);
        }
        s
    }

    /// Whether `Σ Eₖ†Eₖ ⊑ I` within `tol`.
    pub fn is_trace_nonincreasing(&self, tol: f64) -> bool {
        lowner_le(&self.kraus_sum(), &CMatrix::identity(self.dim_in), tol)
    }

    /// Whether `Σ Eₖ†Eₖ = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        self.kraus_sum()
            .approx_eq(&CMatrix::identity(self.dim_in), tol)
    }

    /// The Liouville (natural) representation: the
    /// `dim_out² × dim_in²` matrix `L = Σ Eₖ ⊗ Ēₖ` acting on
    /// column-vectorized densities, `vec(E(ρ)) = L·vec(ρ)` with
    /// row-major vectorization.
    pub fn liouville(&self) -> CMatrix {
        let mut l = CMatrix::zeros(self.dim_out * self.dim_out, self.dim_in * self.dim_in);
        for k in &self.kraus {
            l = &l + &k.kron(&k.conj());
        }
        l
    }

    /// Functional equality on a spanning set of inputs, within `tol`.
    ///
    /// Two Kraus decompositions can look completely different and still
    /// denote the same map; this compares the Liouville matrices.
    pub fn approx_eq(&self, other: &Superoperator, tol: f64) -> bool {
        self.dim_in == other.dim_in
            && self.dim_out == other.dim_out
            && self.liouville().approx_eq(&other.liouville(), tol)
    }

    /// Reconstructs a Kraus form from a Liouville matrix (row-major
    /// vectorization convention, endomorphisms only) via the Choi matrix:
    /// `J[(i·d+k), (j·d+m)] = ⟨k|E(|i⟩⟨j|)|m⟩`, whose spectral
    /// decomposition yields Kraus operators `K[k][i] = √λ · v[i·d+k]`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not `d² × d²` or does not describe a completely
    /// positive map (non-Hermitian or non-PSD Choi matrix, within `1e-7`).
    pub fn from_liouville(dim: usize, l: &CMatrix) -> Superoperator {
        assert_eq!(l.rows(), dim * dim, "Liouville matrix dimension mismatch");
        assert_eq!(l.cols(), dim * dim, "Liouville matrix dimension mismatch");
        // Choi: E(|i⟩⟨j|) = unvec(L · vec(|i⟩⟨j|)); vec(|i⟩⟨j|) is the unit
        // vector at index i·d + j (row-major).
        let mut choi = CMatrix::zeros(dim * dim, dim * dim);
        for i in 0..dim {
            for j in 0..dim {
                for k in 0..dim {
                    for m in 0..dim {
                        // E(|i⟩⟨j|)[k][m] = L[(k·d+m), (i·d+j)].
                        choi[(i * dim + k, j * dim + m)] = l[(k * dim + m, i * dim + j)];
                    }
                }
            }
        }
        assert!(
            choi.is_hermitian(1e-7),
            "Liouville matrix is not Hermiticity-preserving"
        );
        let eig = qsim_linalg::eigen::hermitian_eigen(&choi);
        let mut kraus = Vec::new();
        for (idx, &val) in eig.values.iter().enumerate() {
            assert!(val > -1e-7, "Liouville matrix is not completely positive");
            if val <= 1e-10 {
                continue;
            }
            let v = eig.vector(idx);
            let mut k = CMatrix::zeros(dim, dim);
            for i in 0..dim {
                for row in 0..dim {
                    k[(row, i)] = v[i * dim + row] * val.sqrt();
                }
            }
            kraus.push(k);
        }
        Superoperator::from_kraus(dim, dim, kraus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::states;

    #[test]
    fn unitary_superoperator_is_trace_preserving() {
        let h = Superoperator::from_unitary(&gates::hadamard());
        assert!(h.is_trace_preserving(1e-12));
        assert!(h.is_trace_nonincreasing(1e-12));
        let rho = states::basis_density(2, 0);
        let out = h.apply(&rho);
        assert!((out.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn composition_convention_is_left_to_right() {
        // Paper: (E1 ∘ E2)(ρ) = E2(E1(ρ)).
        let x = Superoperator::from_unitary(&gates::pauli_x());
        let h = Superoperator::from_unitary(&gates::hadamard());
        let xh = x.compose(&h);
        let rho = states::basis_density(2, 0);
        let direct = h.apply(&x.apply(&rho));
        assert!(xh.apply(&rho).approx_eq(&direct, 1e-12));
    }

    #[test]
    fn dual_is_adjoint_with_respect_to_trace_pairing() {
        // tr(A · E(ρ)) = tr(E†(A) · ρ) for all A, ρ.
        let mut seed = 3;
        let e = Superoperator::from_unitary(&gates::hadamard()).sum(&Superoperator::zero(2));
        for _ in 0..5 {
            let rho = states::random_density(2, &mut seed);
            let a = states::random_density(2, &mut seed); // any PSD works
            let lhs = (&a * &e.apply(&rho)).trace();
            let rhs = (&e.dual().apply(&a) * &rho).trace();
            assert!(lhs.approx_eq(rhs, 1e-10));
        }
    }

    #[test]
    fn liouville_representation_acts_as_the_map() {
        let e = Superoperator::from_unitary(&gates::hadamard());
        let l = e.liouville();
        let rho = states::basis_density(2, 1);
        // Row-major vectorization.
        let mut vec_rho = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                vec_rho.push(rho[(i, j)]);
            }
        }
        let out_vec = l.mul_vec(&vec_rho);
        let out = e.apply(&rho);
        let mut k = 0;
        for i in 0..2 {
            for j in 0..2 {
                assert!(out_vec[k].approx_eq(out[(i, j)], 1e-12));
                k += 1;
            }
        }
    }

    #[test]
    fn measurement_branch_sum_is_trace_preserving() {
        let m = crate::Measurement::computational_basis(2);
        let total = m.branch(0).sum(&m.branch(1));
        assert!(total.is_trace_preserving(1e-12));
        assert!(!m.branch(0).is_trace_preserving(1e-12));
        assert!(m.branch(0).is_trace_nonincreasing(1e-12));
    }

    #[test]
    fn liouville_kraus_roundtrip() {
        // Round-trip a mixed map through its Liouville matrix.
        let m = crate::Measurement::computational_basis(2);
        let h = Superoperator::from_unitary(&gates::hadamard());
        let e = m.branch(0).compose(&h).sum(&m.branch(1));
        let back = Superoperator::from_liouville(2, &e.liouville());
        assert!(back.approx_eq(&e, 1e-8));
        let mut seed = 17;
        let rho = states::random_density(2, &mut seed);
        assert!(back.apply(&rho).approx_eq(&e.apply(&rho), 1e-8));
    }

    #[test]
    fn functional_equality_ignores_kraus_presentation() {
        // ρ ↦ ρ with Kraus {I} equals Kraus {I/√2, I/√2}·? No — that's a
        // different map; instead compare {X}·{X} with identity.
        let x = Superoperator::from_unitary(&gates::pauli_x());
        let xx = x.compose(&x);
        assert!(xx.approx_eq(&Superoperator::identity(2), 1e-12));
        assert!(!x.approx_eq(&Superoperator::identity(2), 1e-12));
    }
}
