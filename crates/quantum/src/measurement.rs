//! Quantum measurements.

use crate::Superoperator;
use qsim_linalg::CMatrix;

/// A quantum measurement `{Mᵢ}` with `Σᵢ Mᵢ†Mᵢ = I` (Section 3.1).
///
/// Outcome `i` occurs with probability `tr(Mᵢ ρ Mᵢ†)` and collapses the
/// state to `Mᵢ ρ Mᵢ† / pᵢ`. The *branch superoperator*
/// `Mᵢ(ρ) = Mᵢ ρ Mᵢ†` (unnormalized) is what the paper's denotational
/// semantics composes with.
///
/// # Examples
///
/// ```
/// use qsim_quantum::{states, Measurement};
/// let meas = Measurement::computational_basis(2);
/// assert!(meas.is_projective(1e-12));
/// let rho = states::maximally_mixed(2);
/// let (p, _) = meas.outcome(&rho, 1);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Measurement {
    dim: usize,
    ops: Vec<CMatrix>,
}

impl Measurement {
    /// Builds a measurement from its operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators are not square matrices of equal dimension,
    /// or if `Σ Mᵢ†Mᵢ ≠ I` within `1e-8`.
    pub fn new(ops: Vec<CMatrix>) -> Measurement {
        assert!(!ops.is_empty(), "measurement needs at least one operator");
        let dim = ops[0].rows();
        let mut sum = CMatrix::zeros(dim, dim);
        for m in &ops {
            assert!(m.is_square() && m.rows() == dim, "inconsistent operators");
            sum = &sum + &(&m.adjoint() * m);
        }
        assert!(
            sum.approx_eq(&CMatrix::identity(dim), 1e-8),
            "measurement operators do not satisfy the completeness relation"
        );
        Measurement { dim, ops }
    }

    /// The computational-basis measurement `{|k⟩⟨k|}` in dimension `dim`.
    pub fn computational_basis(dim: usize) -> Measurement {
        let ops = (0..dim)
            .map(|k| {
                let ket = CMatrix::basis_ket(dim, k);
                &ket * &ket.adjoint()
            })
            .collect();
        Measurement::new(ops)
    }

    /// The two-outcome measurement `{P, I − P}` for a projector `P`
    /// (outcome 0 = `P`, outcome 1 = `I − P`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a projector within `1e-8`.
    pub fn from_projector(p: &CMatrix) -> Measurement {
        assert!(
            (p * p).approx_eq(p, 1e-8),
            "from_projector needs an idempotent Hermitian matrix"
        );
        let complement = &CMatrix::identity(p.rows()) - p;
        Measurement::new(vec![p.clone(), complement])
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of outcomes.
    pub fn outcome_count(&self) -> usize {
        self.ops.len()
    }

    /// The measurement operator of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn operator(&self, i: usize) -> &CMatrix {
        &self.ops[i]
    }

    /// The branch superoperator `ρ ↦ Mᵢ ρ Mᵢ†`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn branch(&self, i: usize) -> Superoperator {
        Superoperator::from_kraus(self.dim, self.dim, vec![self.ops[i].clone()])
    }

    /// `(pᵢ, ρᵢ)` — the probability of outcome `i` on `rho` and the
    /// *normalized* post-measurement state (the zero matrix if `pᵢ = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or dimensions mismatch.
    pub fn outcome(&self, rho: &CMatrix, i: usize) -> (f64, CMatrix) {
        let unnorm = self.branch(i).apply(rho);
        let p = unnorm.trace().re;
        if p <= 1e-14 {
            (0.0, CMatrix::zeros(self.dim, self.dim))
        } else {
            (p, unnorm.scale(qsim_linalg::Complex::from(1.0 / p)))
        }
    }

    /// Whether the measurement is projective: `Mᵢ Mⱼ = δᵢⱼ Mᵢ`.
    pub fn is_projective(&self, tol: f64) -> bool {
        for (i, mi) in self.ops.iter().enumerate() {
            for (j, mj) in self.ops.iter().enumerate() {
                let prod = mi * mj;
                let expected = if i == j {
                    mi.clone()
                } else {
                    CMatrix::zeros(self.dim, self.dim)
                };
                if !prod.approx_eq(&expected, tol) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::states;
    use qsim_linalg::Complex;

    #[test]
    fn computational_basis_is_projective_and_complete() {
        let m = Measurement::computational_basis(3);
        assert_eq!(m.outcome_count(), 3);
        assert!(m.is_projective(1e-12));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut seed = 5;
        let rho = states::random_density(4, &mut seed);
        let m = Measurement::computational_basis(4);
        let total: f64 = (0..4).map(|i| m.outcome(&rho, i).0).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn plus_state_measurement_collapse() {
        let plus = states::pure_state(&[Complex::ONE, Complex::ONE]);
        let m = Measurement::computational_basis(2);
        let (p0, post) = m.outcome(&plus, 0);
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!(post.approx_eq(&states::basis_density(2, 0), 1e-12));
    }

    #[test]
    fn projector_measurement() {
        // Measure in the Hadamard basis via P = |+⟩⟨+|.
        let h = gates::hadamard();
        let plus_proj = &(&h * &states::basis_density(2, 0)) * &h.adjoint();
        let m = Measurement::from_projector(&plus_proj);
        assert!(m.is_projective(1e-10));
        let (p, _) = m.outcome(&states::basis_density(2, 0), 0);
        assert!((p - 0.5).abs() < 1e-10);
    }

    #[test]
    fn non_projective_povm_detected() {
        // A trine-style POVM: Mᵢ = |0⟩⟨vᵢ| with the vᵢ scaled trine
        // vectors, so Σ Mᵢ†Mᵢ = Σ |vᵢ⟩⟨vᵢ| = I but no Mᵢ is a projector.
        let f = (2.0 / 3.0_f64).sqrt();
        let vecs = [
            vec![Complex::from(f), Complex::ZERO],
            vec![
                Complex::from(-f / 2.0),
                Complex::from(f * 3.0_f64.sqrt() / 2.0),
            ],
            vec![
                Complex::from(-f / 2.0),
                Complex::from(-f * 3.0_f64.sqrt() / 2.0),
            ],
        ];
        let zero_ket = [Complex::ONE, Complex::ZERO];
        let ops: Vec<CMatrix> = vecs.iter().map(|v| CMatrix::outer(&zero_ket, v)).collect();
        let m = Measurement::new(ops);
        assert!(!m.is_projective(1e-10));
        // Probabilities still sum to one.
        let mut seed = 9;
        let rho = states::random_density(2, &mut seed);
        let total: f64 = (0..3).map(|i| m.outcome(&rho, i).0).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn incomplete_measurement_rejected() {
        let p = states::basis_density(2, 0);
        let _ = Measurement::new(vec![p]);
    }
}
