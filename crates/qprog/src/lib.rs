//! Quantum while-programs (Section 4.2 of Peng–Ying–Wu, PLDI 2022).
//!
//! The syntax
//!
//! ```text
//! P ::= skip | abort | q := |0⟩ | q̄ := U[q̄] | P₁; P₂
//!     | case M[q̄] →ᵢ Pᵢ end | while M[q̄] = 1 do P done
//! ```
//!
//! with its denotational semantics `⟦P⟧` (Ying's equations, reproduced in
//! [`Program::run`] and [`Program::denotation`]), the encoder `Enc` into
//! NKA expressions with [`EncoderSetting`] (Definition 4.4), the
//! normal-form transformation of **Theorem 6.1** — every quantum while-
//! program is equivalent (up to a classical-guard reset) to a single-loop
//! program `P₀; while M do P₁ done` ([`normal_form::normalize`]) — plus
//! the two front-end layers the Query API serves quantum workloads
//! through: the textual [`surface`] language (programs and effects as
//! source text with byte-span caret diagnostics) and the semantic half
//! of quantum Hoare logic ([`hoare`]: triples and the wlp
//! characterization, re-exported by `nkat::qhl`).
//!
//! # Examples
//!
//! Build, run and encode a measure-and-flip loop:
//!
//! ```
//! use nka_qprog::{Program, EncoderSetting};
//! use qsim_quantum::{gates, states, Measurement, Superoperator};
//!
//! let meas = Measurement::computational_basis(2);
//! let flip = Program::unitary("h", &gates::hadamard());
//! let w = Program::while_loop(["m0", "m1"], &meas, flip);
//! // Semantics: the loop almost surely exits into |0⟩.
//! let out = w.run(&states::basis_density(2, 1));
//! assert!((out[(0, 0)].re - 1.0).abs() < 1e-9);
//! // Encoding: Enc(while) = (m1 h)* m0.
//! let mut setting = EncoderSetting::new(2);
//! let expr = setting.encode(&w).unwrap();
//! assert_eq!(expr.to_string(), "(m1 h)* m0");
//! ```

pub mod analysis;
pub mod encode;
pub mod hoare;
pub mod normal_form;
pub mod optimize;
pub mod program;
pub mod semantics;
pub mod surface;

pub use analysis::{Certificate, CertificateStats, Finding, RuleMeta, SemanticCheck, Severity};
pub use encode::{EncodeError, EncoderSetting};
pub use hoare::{wlp, HoareTriple};
pub use optimize::{Candidate, OptimizeStep, RuleSet};
pub use program::Program;
pub use semantics::Denotation;
pub use surface::{ParseProgError, SurfaceEffect, SurfaceProgram};

/// The program AST and its building blocks are shared across threads by
/// the parallel batch path; keep that contract compile-checked.
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Program>();
    check::<SurfaceProgram>();
    check::<SurfaceEffect>();
    check::<HoareTriple>();
    check::<Finding>();
    check::<SemanticCheck>();
    check::<Candidate>();
    check::<OptimizeStep>();
    check::<RuleSet>();
}
