//! The program AST.

use qsim_linalg::CMatrix;
use qsim_quantum::{Measurement, Superoperator};
use std::fmt;
use std::sync::Arc;

/// A measurement whose outcomes carry encoder names (the symbols the
/// branches will receive under `Enc`, Definition 4.4).
#[derive(Debug, Clone)]
pub struct NamedMeasurement {
    names: Vec<String>,
    meas: Measurement,
}

impl NamedMeasurement {
    /// Pairs a measurement with one name per outcome.
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the outcome count.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        names: I,
        meas: &Measurement,
    ) -> NamedMeasurement {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(
            names.len(),
            meas.outcome_count(),
            "one name per measurement outcome"
        );
        NamedMeasurement {
            names,
            meas: meas.clone(),
        }
    }

    /// The underlying measurement.
    pub fn measurement(&self) -> &Measurement {
        &self.meas
    }

    /// The encoder name of outcome `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Number of outcomes.
    pub fn outcome_count(&self) -> usize {
        self.names.len()
    }
}

/// A quantum while-program over a fixed Hilbert space (operators are
/// stored already embedded in the full space; use
/// [`qsim_quantum::RegisterSpace::embed`] to build them).
///
/// Cloning is cheap: subprograms are reference-counted.
#[derive(Debug, Clone)]
pub enum Program {
    /// `skip` — does nothing.
    Skip(usize),
    /// `abort` — halts without a result (the zero superoperator).
    Abort(usize),
    /// An elementary statement (`q := |0⟩` or `q̄ := U[q̄]`) with its
    /// encoder name.
    Elementary(String, Arc<Superoperator>),
    /// `P₁; P₂`.
    Seq(Arc<Program>, Arc<Program>),
    /// `case M[q̄] →ᵢ Pᵢ end`.
    Case(NamedMeasurement, Vec<Program>),
    /// `while M[q̄] = 1 do P done` — outcome 1 continues, outcome 0 exits.
    While(NamedMeasurement, Arc<Program>),
}

impl Program {
    /// `skip` on a `dim`-dimensional space.
    pub fn skip(dim: usize) -> Program {
        Program::Skip(dim)
    }

    /// `abort` on a `dim`-dimensional space.
    pub fn abort(dim: usize) -> Program {
        Program::Abort(dim)
    }

    /// An elementary unitary statement `q̄ := U[q̄]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not unitary within `1e-8`.
    pub fn unitary(name: &str, u: &CMatrix) -> Program {
        assert!(u.is_unitary(1e-8), "Program::unitary needs a unitary");
        Program::Elementary(name.to_owned(), Arc::new(Superoperator::from_unitary(u)))
    }

    /// An elementary statement from an arbitrary superoperator — used for
    /// initializations `q := |0⟩` (and, in the normal-form construction,
    /// classical-guard assignments).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an endomorphism or not trace-non-increasing.
    pub fn elementary(name: &str, op: Superoperator) -> Program {
        assert_eq!(op.dim_in(), op.dim_out(), "program operators are endo");
        assert!(
            op.is_trace_nonincreasing(1e-7),
            "elementary superoperators must be trace-non-increasing"
        );
        Program::Elementary(name.to_owned(), Arc::new(op))
    }

    /// The initialization `q := |0⟩` on a register of dimension `reg_dim`
    /// embedded by the caller — convenience for the common whole-space
    /// case: `Σᵢ |0⟩⟨i| ρ |i⟩⟨0|`.
    pub fn init_whole_space(name: &str, dim: usize) -> Program {
        let kraus = (0..dim)
            .map(|i| {
                let ket0 = CMatrix::basis_ket(dim, 0);
                let keti = CMatrix::basis_ket(dim, i);
                &ket0 * &keti.adjoint()
            })
            .collect();
        Program::Elementary(
            name.to_owned(),
            Arc::new(Superoperator::from_kraus(dim, dim, kraus)),
        )
    }

    /// `self; then`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn then(&self, then: &Program) -> Program {
        assert_eq!(self.dim(), then.dim(), "sequencing dimension mismatch");
        Program::Seq(Arc::new(self.clone()), Arc::new(then.clone()))
    }

    /// `case M[q̄] →ᵢ branches[i] end` with outcome names.
    ///
    /// # Panics
    ///
    /// Panics if branch count ≠ outcome count or dimensions mismatch.
    pub fn case<S: Into<String>, I: IntoIterator<Item = S>>(
        names: I,
        meas: &Measurement,
        branches: Vec<Program>,
    ) -> Program {
        let named = NamedMeasurement::new(names, meas);
        assert_eq!(
            named.outcome_count(),
            branches.len(),
            "one branch per outcome"
        );
        for b in &branches {
            assert_eq!(b.dim(), meas.dim(), "branch dimension mismatch");
        }
        Program::Case(named, branches)
    }

    /// `while M[q̄] = 1 do body done` — `names` are the encoder names of
    /// outcomes (0 = exit, 1 = continue).
    ///
    /// # Panics
    ///
    /// Panics unless the measurement has exactly two outcomes of the
    /// body's dimension.
    pub fn while_loop<S: Into<String>, I: IntoIterator<Item = S>>(
        names: I,
        meas: &Measurement,
        body: Program,
    ) -> Program {
        let named = NamedMeasurement::new(names, meas);
        assert_eq!(named.outcome_count(), 2, "while needs a 2-outcome test");
        assert_eq!(body.dim(), meas.dim(), "body dimension mismatch");
        Program::While(named, Arc::new(body))
    }

    /// `if M[q̄] = 1 then p1 else p2` — syntax sugar for a two-branch case
    /// (footnote 3 of the paper).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Program::case`].
    pub fn if_then_else<S: Into<String>, I: IntoIterator<Item = S>>(
        names: I,
        meas: &Measurement,
        p1: Program,
        p0: Program,
    ) -> Program {
        // case order matches outcome order: branch 0 = else, branch 1 = then.
        Program::case(names, meas, vec![p0, p1])
    }

    /// The Hilbert-space dimension the program acts on.
    pub fn dim(&self) -> usize {
        match self {
            Program::Skip(d) | Program::Abort(d) => *d,
            Program::Elementary(_, op) => op.dim_in(),
            Program::Seq(a, _) => a.dim(),
            Program::Case(m, _) => m.measurement().dim(),
            Program::While(m, _) => m.measurement().dim(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Program::Skip(_) | Program::Abort(_) | Program::Elementary(..) => 1,
            Program::Seq(a, b) => 1 + a.size() + b.size(),
            Program::Case(_, branches) => 1 + branches.iter().map(Program::size).sum::<usize>(),
            Program::While(_, body) => 1 + body.size(),
        }
    }

    /// Whether the program contains no `while` loop.
    pub fn is_while_free(&self) -> bool {
        match self {
            Program::Skip(_) | Program::Abort(_) | Program::Elementary(..) => true,
            Program::Seq(a, b) => a.is_while_free() && b.is_while_free(),
            Program::Case(_, branches) => branches.iter().all(Program::is_while_free),
            Program::While(..) => false,
        }
    }

    /// Number of `while` loops in the program.
    pub fn loop_count(&self) -> usize {
        match self {
            Program::Skip(_) | Program::Abort(_) | Program::Elementary(..) => 0,
            Program::Seq(a, b) => a.loop_count() + b.loop_count(),
            Program::Case(_, branches) => branches.iter().map(Program::loop_count).sum(),
            Program::While(_, body) => 1 + body.loop_count(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Program::Skip(_) => write!(f, "skip"),
            Program::Abort(_) => write!(f, "abort"),
            Program::Elementary(name, _) => write!(f, "{name}"),
            Program::Seq(a, b) => write!(f, "{a}; {b}"),
            Program::Case(m, branches) => {
                write!(f, "case ")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{} → {b}", m.name(i))?;
                }
                write!(f, " end")
            }
            Program::While(m, body) => {
                write!(f, "while {} do {body} done", m.name(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::gates;

    #[test]
    fn structure_metrics() {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        let w = Program::while_loop(["m0", "m1"], &meas, h.clone());
        let seq = w.then(&h);
        assert_eq!(seq.size(), 4);
        assert_eq!(seq.loop_count(), 1);
        assert!(!seq.is_while_free());
        assert!(h.is_while_free());
        assert_eq!(seq.dim(), 2);
    }

    #[test]
    fn display_reads_like_the_paper() {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        let w = Program::while_loop(["m0", "m1"], &meas, h);
        assert_eq!(w.to_string(), "while m1 do h done");
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn non_unitary_rejected() {
        let not_unitary = CMatrix::from_real(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let _ = Program::unitary("bad", &not_unitary);
    }

    #[test]
    fn init_whole_space_resets() {
        let init = Program::init_whole_space("reset", 3);
        let rho = qsim_quantum::states::maximally_mixed(3);
        let out = init.run(&rho);
        assert!(out.approx_eq(&qsim_quantum::states::basis_density(3, 0), 1e-10));
    }
}
