//! Static analysis of surface programs: certificate-backed semantic
//! lints over the span-carrying AST ([`crate::surface::Stmt`]).
//!
//! The analyzer has two tiers:
//!
//! * **Tier A (syntactic/dataflow, engine-free)** — implemented here in
//!   full: unused qubits, unreachable code after `abort`, adjacent
//!   self-inverse gate pairs, trivially-constant guards, and program
//!   metrics ([`syntactic_findings`]).
//! * **Tier B (semantic, engine-backed)** — *generated* here as
//!   [`SemanticCheck`]s ([`semantic_checks`]) and *decided* by the
//!   Query API layer on its warm engine: dead branches are zeroness
//!   questions (`Enc(guard·body) = 0`, Definition 4.4 — dead code ⇔
//!   zeroness), redundant fragments are `prog_eq`-to-`skip`, and
//!   peephole opportunities cite the Section 5 rule catalog
//!   ([`RULE_METADATA`]). Every check carries the exact `prog_eq`
//!   query (`p`/`q` program sources) a client can replay to re-verify
//!   the resulting [`Finding`]'s [`Certificate`] independently.
//!
//! This split keeps the analyzer engine-free (qprog does not depend on
//! the decision engine): the checks are data, and whoever owns a warm
//! `Decider` turns them into findings. By construction every `p`/`q`
//! pair re-parses under [`SurfaceProgram::parse`] and the expected
//! verdict of a *reported* finding is always `holds`.
//!
//! Soundness note (Theorem 4.5): the algebraic direction is one-way.
//! A `holds` certificate *proves* the semantic fact; the absence of a
//! finding proves nothing — e.g. `h q0; h q0` is semantically `skip`
//! but algebraically distinct from `1`, which is exactly why the
//! adjacent self-inverse pair lint is Tier A (syntactic) and
//! informational rather than a certified rewrite.

use crate::surface::{Stmt, StmtKind, SurfaceProgram};
use std::collections::BTreeSet;
use std::fmt;

/// Every analysis pass, in reporting order. The wire `passes` filter
/// and the `--stats` per-pass counters both index into this list.
pub const PASS_NAMES: [&str; 8] = [
    "unused_qubit",
    "unreachable_code",
    "self_inverse_pair",
    "constant_guard",
    "metrics",
    "dead_branch",
    "redundant_fragment",
    "peephole",
];

/// The index of a pass in [`PASS_NAMES`], or `None` for an unknown
/// name (used both for request validation and stats bucketing).
#[must_use]
pub fn pass_index(name: &str) -> Option<usize> {
    PASS_NAMES.iter().position(|&p| p == name)
}

/// Validates a requested pass filter (empty = all passes).
///
/// # Errors
///
/// The first unknown pass name, for the API layer to wrap into its
/// malformed-request error.
pub fn validate_passes(passes: &[String]) -> Result<(), String> {
    match passes.iter().find(|p| pass_index(p).is_none()) {
        None => Ok(()),
        Some(unknown) => Err(unknown.clone()),
    }
}

/// Whether `name` is enabled under the filter (empty = all).
#[must_use]
pub fn pass_enabled(passes: &[String], name: &str) -> bool {
    passes.is_empty() || passes.iter().any(|p| p == name)
}

/// Finding severity. `Warning` findings make the analysis verdict
/// negative (CLI exit 1); `Info` findings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Likely-unintended code: dead branches, unreachable statements,
    /// unused qubits, constant guards.
    Warning,
    /// Opportunities and measurements: peephole rewrites, metrics,
    /// self-inverse pairs, redundant fragments.
    Info,
}

impl Severity {
    /// The wire name (`"warning"` / `"info"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The engine-attribution slice of a certificate: which tiered-
/// equivalence counters the deciding query moved, copied from the
/// engine's stats delta by the API layer when the check is decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertificateStats {
    /// Star-free word-multiset tier answered the query.
    pub starfree_hits: u64,
    /// Prefix-normalization tier answered the query.
    pub prefix_hits: u64,
    /// Both tiers declined; the generic automata pipeline ran.
    pub fastpath_fallbacks: u64,
}

/// A replayable certificate: the exact `prog_eq` query whose `holds`
/// verdict establishes the finding. Replaying
/// `prog_eq(p, q)` on *any* fresh session must yield `holds` again —
/// the differential suite gates on exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Left program source of the certifying `prog_eq` query.
    pub p: String,
    /// Right program source of the certifying `prog_eq` query.
    pub q: String,
    /// The expected (and, for an emitted finding, obtained) verdict —
    /// always `"holds"`.
    pub expect: &'static str,
    /// The Section 5 catalog rule the finding instantiates, if any
    /// (see [`RULE_METADATA`]).
    pub rule: Option<&'static str>,
    /// Engine fast-path attribution of the deciding query.
    pub stats: CertificateStats,
}

/// One diagnostic: which pass produced it, how severe, where in the
/// source, and — for Tier B findings — the replayable [`Certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The producing pass (an element of [`PASS_NAMES`]).
    pub pass: &'static str,
    /// Warning or info.
    pub severity: Severity,
    /// Half-open byte span in the analyzed source.
    pub span: (usize, usize),
    /// Human-readable description.
    pub message: String,
    /// The replayable certificate (Tier B findings only).
    pub certificate: Option<Certificate>,
}

/// A Tier B check the API layer must decide: a `prog_eq` query plus the
/// finding to emit *if the verdict is `holds`*. A refuted check emits
/// nothing — refutation only means the algebra could not certify the
/// fact, not that the fact is false (Theorem 4.5 is one-way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticCheck {
    /// The pass that generated the check.
    pub pass: &'static str,
    /// Severity of the finding if the check holds.
    pub severity: Severity,
    /// Span of the implicated source region.
    pub span: (usize, usize),
    /// Message of the finding if the check holds.
    pub message: String,
    /// Left program source; parses under [`SurfaceProgram::parse`].
    pub p: String,
    /// Right program source; parses under [`SurfaceProgram::parse`].
    pub q: String,
    /// The catalog rule the check instantiates, if any.
    pub rule: Option<&'static str>,
}

/// Catalog metadata for one Section 5 rewrite rule: the algebraic
/// shapes and the paper hook, shared between the analyzer, the
/// `nka_apps::rule_library` Horn proofs, and any future `optimize`
/// query — one source of truth for rule identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMeta {
    /// Short rule name (matches `nka_apps::rule_library::catalog`).
    pub name: &'static str,
    /// Left-hand algebraic shape.
    pub lhs: &'static str,
    /// Right-hand algebraic shape.
    pub rhs: &'static str,
    /// Horn hypotheses (empty string = unconditional).
    pub hyps: &'static str,
    /// Where in the paper the rule is grounded.
    pub citation: &'static str,
}

/// The nine-rule catalog, in `nka_apps::rule_library::catalog` order.
pub const RULE_METADATA: [RuleMeta; 9] = [
    RuleMeta {
        name: "dead-branch",
        lhs: "m0 p0 + m1 p1",
        rhs: "m0 p0",
        hyps: "m1 = 0",
        citation: "§5 via Cor. 4.3; dead code ⇔ zeroness (Def. 4.4)",
    },
    RuleMeta {
        name: "branch-fusion",
        lhs: "m0 p + m1 p",
        rhs: "m p",
        hyps: "m0 + m1 = m",
        citation: "§5 via Cor. 4.3",
    },
    RuleMeta {
        name: "gate-fusion",
        lhs: "(m1 (u1 u2 p))* m0",
        rhs: "(m1 (u12 p))* m0",
        hyps: "u1 u2 = u12",
        citation: "§5 via Cor. 4.3",
    },
    RuleMeta {
        name: "dead-loop",
        lhs: "(m1 p)* m0",
        rhs: "m0",
        hyps: "m1 = 0",
        citation: "§5 via Cor. 4.3; 0* = 1 from the fixed point (Fig. 3)",
    },
    RuleMeta {
        name: "loop-peeling",
        lhs: "(m1 p)* m0",
        rhs: "m0 + m1 (p ((m1 p)* m0))",
        hyps: "",
        citation: "§5.2 loop unrolling; fixed-point law (Fig. 3)",
    },
    RuleMeta {
        name: "double-reset",
        lhs: "r (r p)",
        rhs: "r p",
        hyps: "r r = r",
        citation: "§5 via Cor. 4.3",
    },
    RuleMeta {
        name: "double-measure",
        lhs: "m0 (m0 p)",
        rhs: "m0 p",
        hyps: "m0 m0 = m0",
        citation: "§5 via Cor. 4.3 (projective measurements, cf. §7 tests)",
    },
    RuleMeta {
        name: "abort-sink",
        lhs: "0 p",
        rhs: "0",
        hyps: "",
        citation: "Def. 4.4 (abort ↦ 0); semiring annihilation",
    },
    RuleMeta {
        name: "uncompute",
        lhs: "u1 u2 (u2_inv u1_inv)",
        rhs: "1",
        hyps: "ui ui_inv = ui_inv ui = 1",
        citation: "§8 Future Directions; unitary-group embedding",
    },
];

/// Iterates the rule catalog metadata in catalog order.
pub fn rule_metadata() -> impl Iterator<Item = &'static RuleMeta> {
    RULE_METADATA.iter()
}

/// Looks one rule up by name.
#[must_use]
pub fn rule_meta(name: &str) -> Option<&'static RuleMeta> {
    RULE_METADATA.iter().find(|m| m.name == name)
}

/// Gates that are their own inverse — an adjacent identical pair is
/// semantically `skip` (but *not* algebraically `1`; see the module
/// docs on Theorem 4.5 incompleteness).
const SELF_INVERSE: [&str; 7] = ["h", "x", "y", "z", "cnot", "cz", "swap"];

/// Runs every enabled Tier A pass. Findings come back in source order
/// (sorted by span start; generation is deterministic).
#[must_use]
pub fn syntactic_findings(prog: &SurfaceProgram, passes: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    let ast = prog.ast();
    if pass_enabled(passes, "unused_qubit") {
        unused_qubits(prog, &mut out);
    }
    if pass_enabled(passes, "unreachable_code") {
        for_each_seq(ast, &mut |seq| unreachable_code(seq, &mut out));
    }
    if pass_enabled(passes, "self_inverse_pair") {
        for_each_seq(ast, &mut |seq| self_inverse_pairs(seq, &mut out));
    }
    if pass_enabled(passes, "constant_guard") {
        constant_guards(ast, &mut BTreeSet::new(), &mut out);
    }
    if pass_enabled(passes, "peephole") {
        for_each_seq(ast, &mut |seq| advisory_peepholes(seq, prog, &mut out));
    }
    if pass_enabled(passes, "metrics") {
        out.push(metrics(prog));
    }
    out.sort_by_key(|f| f.span.0);
    out
}

/// Generates every enabled Tier B check, in deterministic order. The
/// caller decides each `prog_eq(p, q)` and emits the finding only on
/// `holds`.
#[must_use]
pub fn semantic_checks(prog: &SurfaceProgram, passes: &[String]) -> Vec<SemanticCheck> {
    let mut out = Vec::new();
    let n = prog.qubits();
    let src = prog.source();
    if pass_enabled(passes, "dead_branch") {
        for_each_stmt(prog.ast(), &mut |stmt| {
            dead_branch_checks(stmt, n, src, &mut out);
        });
    }
    if pass_enabled(passes, "redundant_fragment") {
        if let Some(check) = redundant_fragment_check(prog) {
            out.push(check);
        }
    }
    if pass_enabled(passes, "peephole") {
        for_each_seq(prog.ast(), &mut |seq| {
            abort_sink_checks(seq, n, src, &mut out)
        });
        for_each_stmt(prog.ast(), &mut |stmt| {
            loop_peel_check(stmt, n, src, &mut out);
        });
    }
    out
}

/// Calls `f` on every statement sequence of the AST — the top level and
/// every nested block, outer-first.
fn for_each_seq<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a [Stmt])) {
    f(stmts);
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                for_each_seq(then_branch, f);
                for_each_seq(else_branch, f);
            }
            StmtKind::While { body, .. } => for_each_seq(body, f),
            _ => {}
        }
    }
}

/// Calls `f` on every statement of the AST, outer-first, source order.
fn for_each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in stmts {
        f(stmt);
        match &stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                for_each_stmt(then_branch, f);
                for_each_stmt(else_branch, f);
            }
            StmtKind::While { body, .. } => for_each_stmt(body, f),
            _ => {}
        }
    }
}

/// Whether a statement sequence contains an `abort` anywhere — the
/// pre-filter for zeroness checks: an abort-free program's encoding is
/// a nonzero series, so deciding it against `0` would be wasted work.
fn contains_abort(stmts: &[Stmt]) -> bool {
    let mut found = false;
    for_each_stmt(stmts, &mut |stmt| {
        found |= matches!(stmt.kind, StmtKind::Abort);
    });
    found
}

/// Whether the sequence is *syntactically* `skip` (empty or all-skip),
/// i.e. its encoding is literally `1` with no engine needed.
fn is_syntactic_skip(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| matches!(s.kind, StmtKind::Skip))
}

/// The source slice covering a non-empty statement sequence, or
/// `"skip"` for an empty one. Statement spans cover whole statements,
/// so the slice is always balanced and re-parses in block position.
fn seq_src(src: &str, stmts: &[Stmt]) -> String {
    match (stmts.first(), stmts.last()) {
        (Some(first), Some(last)) => src[first.span.0..last.span.1].to_owned(),
        _ => "skip".to_owned(),
    }
}

/// Tier A: qubits declared but never referenced by any statement.
fn unused_qubits(prog: &SurfaceProgram, out: &mut Vec<Finding>) {
    let mut used = BTreeSet::new();
    for_each_stmt(prog.ast(), &mut |stmt| match &stmt.kind {
        StmtKind::Init(q) => {
            used.insert(*q);
        }
        StmtKind::Gate { targets, .. } => used.extend(targets.iter().copied()),
        StmtKind::If { qubit, .. } | StmtKind::While { qubit, .. } => {
            used.insert(*qubit);
        }
        StmtKind::Skip | StmtKind::Abort => {}
    });
    for q in 0..prog.qubits() {
        if !used.contains(&q) {
            out.push(Finding {
                pass: "unused_qubit",
                severity: Severity::Warning,
                span: prog.header_span(),
                message: format!("qubit q{q} is declared but never used"),
                certificate: None,
            });
        }
    }
}

/// Tier A: statements after an `abort` in the same sequence never run.
fn unreachable_code(seq: &[Stmt], out: &mut Vec<Finding>) {
    let Some(i) = seq.iter().position(|s| matches!(s.kind, StmtKind::Abort)) else {
        return;
    };
    if i + 1 < seq.len() {
        let span = (seq[i + 1].span.0, seq[seq.len() - 1].span.1);
        out.push(Finding {
            pass: "unreachable_code",
            severity: Severity::Warning,
            span,
            message: format!(
                "unreachable: {} statement(s) after 'abort' never run",
                seq.len() - 1 - i
            ),
            certificate: None,
        });
    }
}

/// Tier A: adjacent identical self-inverse gates compose to the
/// identity *semantically* — informational because ⊢NKA cannot derive
/// it (the encoder names are free symbols; Theorem 4.5 is one-way).
fn self_inverse_pairs(seq: &[Stmt], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 1 < seq.len() {
        let pair = match (&seq[i].kind, &seq[i + 1].kind) {
            (
                StmtKind::Gate {
                    name: a,
                    targets: ta,
                },
                StmtKind::Gate {
                    name: b,
                    targets: tb,
                },
            ) => a == b && ta == tb && SELF_INVERSE.contains(&a.as_str()),
            _ => false,
        };
        if pair {
            let StmtKind::Gate { name, targets } = &seq[i].kind else {
                unreachable!("matched a gate pair above");
            };
            let qs: Vec<String> = targets.iter().map(|q| format!("q{q}")).collect();
            out.push(Finding {
                pass: "self_inverse_pair",
                severity: Severity::Info,
                span: (seq[i].span.0, seq[i + 1].span.1),
                message: format!(
                    "adjacent '{name} {qs}; {name} {qs}' is semantically skip — \
                     not algebraically derivable (Thm 4.5 soundness is one-way)",
                    qs = qs.join(" "),
                ),
                certificate: None,
            });
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// Every qubit a sequence can touch (gate targets and init targets,
/// recursively) — the conservative invalidation set for the
/// constant-guard dataflow.
fn touched_qubits(stmts: &[Stmt], acc: &mut BTreeSet<usize>) {
    for_each_stmt(stmts, &mut |stmt| match &stmt.kind {
        StmtKind::Init(q) => {
            acc.insert(*q);
        }
        StmtKind::Gate { targets, .. } => acc.extend(targets.iter().copied()),
        _ => {}
    });
}

/// Tier A dataflow: a guard qubit known to be `|0⟩` (straight-line
/// after `init qK` with nothing touching `qK` since) makes its
/// measurement outcome constant 0 — the then-branch / loop body never
/// runs. Nested blocks restart with the empty (conservative) fact set.
fn constant_guards(seq: &[Stmt], known_zero: &mut BTreeSet<usize>, out: &mut Vec<Finding>) {
    for stmt in seq {
        match &stmt.kind {
            StmtKind::Skip | StmtKind::Abort => {}
            StmtKind::Init(q) => {
                known_zero.insert(*q);
            }
            StmtKind::Gate { targets, .. } => {
                for t in targets {
                    known_zero.remove(t);
                }
            }
            StmtKind::If {
                qubit,
                then_branch,
                else_branch,
            } => {
                if known_zero.contains(qubit) {
                    out.push(Finding {
                        pass: "constant_guard",
                        severity: Severity::Warning,
                        span: stmt.span,
                        message: format!(
                            "guard qubit q{qubit} is |0⟩ here: the measurement yields \
                             outcome 0 with certainty, so the then-branch never runs"
                        ),
                        certificate: None,
                    });
                }
                constant_guards(then_branch, &mut BTreeSet::new(), out);
                constant_guards(else_branch, &mut BTreeSet::new(), out);
                let mut dirty = BTreeSet::new();
                touched_qubits(then_branch, &mut dirty);
                touched_qubits(else_branch, &mut dirty);
                for q in dirty {
                    known_zero.remove(&q);
                }
            }
            StmtKind::While { qubit, body } => {
                if known_zero.contains(qubit) {
                    out.push(Finding {
                        pass: "constant_guard",
                        severity: Severity::Warning,
                        span: stmt.span,
                        message: format!(
                            "guard qubit q{qubit} is |0⟩ here: the measurement yields \
                             outcome 0 with certainty, so the loop body never runs"
                        ),
                        certificate: None,
                    });
                }
                constant_guards(body, &mut BTreeSet::new(), out);
                let mut dirty = BTreeSet::new();
                touched_qubits(body, &mut dirty);
                for q in dirty {
                    known_zero.remove(&q);
                }
            }
        }
    }
}

/// Tier A advisory peepholes: syntactic matches of catalog rules that
/// would need hypothesis discharge (or symbol-level rewriting) to
/// certify — reported as uncertified opportunities citing the rule.
fn advisory_peepholes(seq: &[Stmt], prog: &SurfaceProgram, out: &mut Vec<Finding>) {
    let src = prog.source();
    let mut i = 0;
    while i + 1 < seq.len() {
        let (a, b) = (&seq[i], &seq[i + 1]);
        let span = (a.span.0, b.span.1);
        match (&a.kind, &b.kind) {
            // Two adjacent resets of the same qubit are one reset.
            (StmtKind::Init(p), StmtKind::Init(q)) if p == q => {
                out.push(Finding {
                    pass: "peephole",
                    severity: Severity::Info,
                    span,
                    message: format!(
                        "resetting q{p} twice in a row is one reset (rule \"double-reset\")"
                    ),
                    certificate: None,
                });
                i += 2;
                continue;
            }
            // Adjacent gates on the same targets fuse into one unitary
            // — unless they are an identical self-inverse pair, which
            // the dedicated pass already reports.
            (
                StmtKind::Gate {
                    name: na,
                    targets: ta,
                },
                StmtKind::Gate {
                    name: nb,
                    targets: tb,
                },
            ) if ta == tb && !(na == nb && SELF_INVERSE.contains(&na.as_str())) => {
                out.push(Finding {
                    pass: "peephole",
                    severity: Severity::Info,
                    span,
                    message: format!(
                        "adjacent gates '{na}' and '{nb}' act on the same qubits and \
                         can fuse into one unitary (rule \"gate-fusion\")"
                    ),
                    certificate: None,
                });
                i += 2;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    // Identical branches: measure, then run the common code once.
    for stmt in seq {
        if let StmtKind::If {
            then_branch,
            else_branch,
            ..
        } = &stmt.kind
        {
            let (t, e) = (seq_src(src, then_branch), seq_src(src, else_branch));
            if t == e && !is_syntactic_skip(then_branch) {
                out.push(Finding {
                    pass: "peephole",
                    severity: Severity::Info,
                    span: stmt.span,
                    message: "both branches are identical: measure, then run the common \
                              code once (rule \"branch-fusion\")"
                        .to_owned(),
                    certificate: None,
                });
            }
        }
    }
}

/// Tier A: one always-emitted metrics finding per program.
fn metrics(prog: &SurfaceProgram) -> Finding {
    let mut stmts = 0usize;
    let mut gates = 0usize;
    let mut measurements = 0usize;
    for_each_stmt(prog.ast(), &mut |stmt| {
        stmts += 1;
        match &stmt.kind {
            StmtKind::Gate { .. } => gates += 1,
            StmtKind::If { .. } | StmtKind::While { .. } => measurements += 1,
            _ => {}
        }
    });
    fn depth(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => 1 + depth(then_branch).max(depth(else_branch)),
                StmtKind::While { body, .. } => 1 + depth(body),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
    Finding {
        pass: "metrics",
        severity: Severity::Info,
        span: prog.header_span(),
        message: format!(
            "{} qubit(s), {stmts} statement(s), {gates} gate(s), \
             {measurements} measurement(s), max nesting {}, encoding size {}",
            prog.qubits(),
            depth(prog.ast()),
            prog.program().size(),
        ),
        certificate: None,
    }
}

/// Builds the zeroness certificate `prog_eq(if qK { body } else
/// { abort }, abort)`: with the else-arm pinned to `abort` (= `0`),
/// the encoding is `m1_qK · Enc(body)`, which is the zero series iff
/// `Enc(body) = 0` — Definition 4.4's dead code ⇔ zeroness, stated as
/// a decidable program equivalence.
fn zeroness_query(n: usize, qubit: usize, body_src: &str) -> (String, String) {
    (
        format!("qubits {n}; if q{qubit} {{ {body_src} }} else {{ abort }}"),
        format!("qubits {n}; abort"),
    )
}

/// Tier B: dead measurement arms. Pre-filtered on `contains_abort` —
/// only an aborting arm can encode to zero.
fn dead_branch_checks(stmt: &Stmt, n: usize, src: &str, out: &mut Vec<SemanticCheck>) {
    match &stmt.kind {
        StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } => {
            if !then_branch.is_empty() && contains_abort(then_branch) {
                let (p, q) = zeroness_query(n, *qubit, &seq_src(src, then_branch));
                out.push(SemanticCheck {
                    pass: "dead_branch",
                    severity: Severity::Warning,
                    span: stmt.span,
                    message: format!(
                        "then-branch (outcome 1) of 'if q{qubit}' is dead: \
                         Enc(branch) = 0, so the branch contributes nothing"
                    ),
                    p,
                    q,
                    rule: Some("dead-branch"),
                });
            }
            if !else_branch.is_empty() && contains_abort(else_branch) {
                let (p, q) = zeroness_query(n, *qubit, &seq_src(src, else_branch));
                out.push(SemanticCheck {
                    pass: "dead_branch",
                    severity: Severity::Warning,
                    span: stmt.span,
                    message: format!(
                        "else-branch (outcome 0) of 'if q{qubit}' is dead: \
                         Enc(branch) = 0, so the branch contributes nothing"
                    ),
                    p,
                    q,
                    rule: Some("dead-branch"),
                });
            }
        }
        StmtKind::While { qubit, body } if !body.is_empty() && contains_abort(body) => {
            let (p, q) = zeroness_query(n, *qubit, &seq_src(src, body));
            out.push(SemanticCheck {
                pass: "dead_branch",
                severity: Severity::Warning,
                span: stmt.span,
                message: format!(
                    "body of 'while q{qubit}' is dead: Enc(body) = 0, so the \
                     loop reduces to its exit measurement"
                ),
                p,
                q,
                rule: Some("dead-loop"),
            });
        }
        _ => {}
    }
}

/// Tier B: is the whole program semantically `skip`? Always checked
/// (unless the body is *syntactically* skip), so every analysis of a
/// non-trivial program exercises at least one engine decide — the
/// star-free fast path answers loop-free programs in microseconds, and
/// a refuted check retires its scratch encodings without growing the
/// persistent arena.
fn redundant_fragment_check(prog: &SurfaceProgram) -> Option<SemanticCheck> {
    let ast = prog.ast();
    if is_syntactic_skip(ast) {
        return None;
    }
    let span = (ast[0].span.0, ast[ast.len() - 1].span.1);
    Some(SemanticCheck {
        pass: "redundant_fragment",
        severity: Severity::Info,
        span,
        message: "program body is semantically skip: ⊢NKA Enc(P) = 1".to_owned(),
        p: prog.source().to_owned(),
        q: format!("qubits {}; skip", prog.qubits()),
        rule: None,
    })
}

/// Tier B: `abort` absorbs its trailing code — the certified companion
/// of the Tier A unreachable-code warning (rule "abort-sink", which
/// always holds: `0 · t = 0`).
fn abort_sink_checks(seq: &[Stmt], n: usize, src: &str, out: &mut Vec<SemanticCheck>) {
    let Some(i) = seq.iter().position(|s| matches!(s.kind, StmtKind::Abort)) else {
        return;
    };
    if i + 1 >= seq.len() {
        return;
    }
    let tail = &src[seq[i + 1].span.0..seq[seq.len() - 1].span.1];
    out.push(SemanticCheck {
        pass: "peephole",
        severity: Severity::Info,
        span: (seq[i].span.0, seq[seq.len() - 1].span.1),
        message: "'abort' absorbs the trailing code (rule \"abort-sink\")".to_owned(),
        p: format!("qubits {n}; abort; {tail}"),
        q: format!("qubits {n}; abort"),
        rule: Some("abort-sink"),
    });
}

/// Tier B: every loop equals its one-step unfolding (rule
/// "loop-peeling" — the fixed-point law as a program transformation).
fn loop_peel_check(stmt: &Stmt, n: usize, src: &str, out: &mut Vec<SemanticCheck>) {
    let StmtKind::While { qubit, body } = &stmt.kind else {
        return;
    };
    let while_src = &src[stmt.span.0..stmt.span.1];
    let body_src = seq_src(src, body);
    out.push(SemanticCheck {
        pass: "peephole",
        severity: Severity::Info,
        span: stmt.span,
        message: format!(
            "loop can be peeled: 'while q{qubit}' equals its one-step \
             unfolding (rule \"loop-peeling\")"
        ),
        p: format!("qubits {n}; {while_src}"),
        q: format!("qubits {n}; if q{qubit} {{ {body_src}; {while_src} }} else {{ skip }}"),
        rule: Some("loop-peeling"),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SurfaceProgram {
        SurfaceProgram::parse(src).expect("test program parses")
    }

    fn all(prog: &SurfaceProgram) -> Vec<Finding> {
        syntactic_findings(prog, &[])
    }

    #[test]
    fn pass_names_are_distinct_and_indexable() {
        for (i, name) in PASS_NAMES.iter().enumerate() {
            assert_eq!(pass_index(name), Some(i));
        }
        assert_eq!(pass_index("no_such_pass"), None);
        assert!(validate_passes(&["metrics".to_owned()]).is_ok());
        assert_eq!(
            validate_passes(&["metrics".to_owned(), "frob".to_owned()]),
            Err("frob".to_owned())
        );
    }

    #[test]
    fn unused_qubit_and_metrics_anchor_at_the_header() {
        let prog = parse("qubits 3; h q0");
        let findings = all(&prog);
        let unused: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.pass == "unused_qubit")
            .collect();
        assert_eq!(unused.len(), 2, "{findings:?}");
        for f in &unused {
            assert_eq!(f.span, prog.header_span());
            assert_eq!(f.severity, Severity::Warning);
        }
        assert!(unused[0].message.contains("q1"));
        assert!(unused[1].message.contains("q2"));
        let metric = findings.iter().find(|f| f.pass == "metrics").unwrap();
        assert!(metric.message.contains("1 gate(s)"), "{}", metric.message);
    }

    #[test]
    fn unreachable_code_spans_the_dead_tail() {
        let src = "qubits 1; abort; h q0; x q0";
        let prog = parse(src);
        let f = all(&prog)
            .into_iter()
            .find(|f| f.pass == "unreachable_code")
            .expect("dead tail found");
        assert_eq!(&src[f.span.0..f.span.1], "h q0; x q0");
        assert!(f.message.contains("2 statement(s)"));
    }

    #[test]
    fn self_inverse_pairs_are_info_and_skip_nonmembers() {
        let src = "qubits 2; h q0; h q0; s q0; s q0; cnot q0 q1; cnot q0 q1";
        let prog = parse(src);
        let pairs: Vec<Finding> = all(&prog)
            .into_iter()
            .filter(|f| f.pass == "self_inverse_pair")
            .collect();
        // h h and cnot cnot match; s s does not (s is not self-inverse).
        assert_eq!(pairs.len(), 2, "{pairs:?}");
        assert_eq!(&src[pairs[0].span.0..pairs[0].span.1], "h q0; h q0");
        assert!(pairs[1].message.contains("cnot"));
        assert!(pairs.iter().all(|f| f.severity == Severity::Info));
    }

    #[test]
    fn constant_guard_sees_init_and_invalidation() {
        // After init q0 the guard is |0⟩; the h q0 in between clears it.
        let flagged = parse("qubits 1; init q0; if q0 { x q0 } else { skip }");
        assert_eq!(
            all(&flagged)
                .iter()
                .filter(|f| f.pass == "constant_guard")
                .count(),
            1
        );
        let cleared = parse("qubits 1; init q0; h q0; while q0 { x q0 }");
        assert_eq!(
            all(&cleared)
                .iter()
                .filter(|f| f.pass == "constant_guard")
                .count(),
            0
        );
    }

    #[test]
    fn advisory_peepholes_match_fusion_and_double_reset() {
        let prog = parse("qubits 2; s q0; t q0; init q1; init q1; if q0 { x q1 } else { x q1 }");
        let msgs: Vec<String> = all(&prog)
            .into_iter()
            .filter(|f| f.pass == "peephole")
            .map(|f| f.message)
            .collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("gate-fusion")));
        assert!(msgs.iter().any(|m| m.contains("double-reset")));
        assert!(msgs.iter().any(|m| m.contains("branch-fusion")));
    }

    #[test]
    fn dead_branch_checks_are_prefiltered_on_abort() {
        let none = parse("qubits 1; if q0 { x q0 } else { skip }");
        assert!(semantic_checks(&none, &["dead_branch".to_owned()]).is_empty());

        let prog = parse("qubits 1; if q0 { abort } else { h q0 }; while q0 { abort }");
        let checks = semantic_checks(&prog, &["dead_branch".to_owned()]);
        assert_eq!(checks.len(), 2, "{checks:?}");
        assert_eq!(checks[0].p, "qubits 1; if q0 { abort } else { abort }");
        assert_eq!(checks[0].q, "qubits 1; abort");
        assert_eq!(checks[1].rule, Some("dead-loop"));
        // Every generated side re-parses.
        for c in &checks {
            SurfaceProgram::parse(&c.p).unwrap();
            SurfaceProgram::parse(&c.q).unwrap();
        }
    }

    #[test]
    fn redundant_fragment_skips_syntactic_skip() {
        assert!(redundant_fragment_check(&parse("qubits 1; skip")).is_none());
        assert!(redundant_fragment_check(&parse("qubits 1;")).is_none());
        let check = redundant_fragment_check(&parse("qubits 1; h q0; h q0")).unwrap();
        assert_eq!(check.p, "qubits 1; h q0; h q0");
        assert_eq!(check.q, "qubits 1; skip");
    }

    #[test]
    fn peel_and_sink_checks_reparse() {
        let prog = parse("qubits 2; while q0 { h q1; x q0 }; abort; h q0");
        let checks = semantic_checks(&prog, &["peephole".to_owned()]);
        assert_eq!(checks.len(), 2, "{checks:?}");
        for c in &checks {
            SurfaceProgram::parse(&c.p).unwrap_or_else(|e| panic!("{}: {e}", c.p));
            SurfaceProgram::parse(&c.q).unwrap_or_else(|e| panic!("{}: {e}", c.q));
        }
        let peel = checks
            .iter()
            .find(|c| c.rule == Some("loop-peeling"))
            .unwrap();
        assert_eq!(
            peel.q,
            "qubits 2; if q0 { h q1; x q0; while q0 { h q1; x q0 } } else { skip }"
        );
    }

    #[test]
    fn rule_metadata_is_complete_and_unique() {
        assert_eq!(RULE_METADATA.len(), 9);
        let names: BTreeSet<&str> = rule_metadata().map(|m| m.name).collect();
        assert_eq!(names.len(), 9, "duplicate rule names");
        assert!(rule_meta("loop-peeling").unwrap().hyps.is_empty());
        assert!(rule_meta("dead-branch").unwrap().citation.contains("4.4"));
        assert!(rule_meta("nope").is_none());
    }
}
