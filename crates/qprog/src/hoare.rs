//! Quantum Hoare triples and the weakest liberal precondition
//! (Section 7.3 of the paper — the *semantic* half).
//!
//! A quantum Hoare triple `{A} P {B}` asserts partial correctness
//! (eq. 7.3.1): `tr(Aρ) ≤ tr(B⟦P⟧ρ) + tr(ρ) − tr(⟦P⟧ρ)`, equivalently
//! `A ⊑ wlp(P, B) = I − ⟦P⟧†(I − B)` ([`wlp`], [`HoareTriple`]).
//!
//! These used to live in `nkat::qhl`; they moved here because they are
//! facts about *programs and their denotations*, not about the NKAT
//! algebra — which lets the Query API (which cannot depend on `nkat`
//! without a crate cycle) answer `hoare` wire queries through the same
//! machinery Theorem 7.8's derivation compiler uses. `nkat::qhl`
//! re-exports both names, so existing call sites are unaffected.

use crate::program::Program;
use qsim_linalg::{is_psd, lowner_le, CMatrix};

/// Whether `a` is an effect (quantum predicate): square, Hermitian,
/// PSD, and `a ⊑ I`, all within `tol`. The same validation
/// `nkat::Effect::new` performs, restated here so the semantic layer
/// does not need the effect-algebra crate.
#[must_use]
pub fn is_effect(a: &CMatrix, tol: f64) -> bool {
    a.is_square()
        && a.is_hermitian(tol)
        && is_psd(a, tol)
        && lowner_le(a, &CMatrix::identity(a.rows()), tol)
}

/// The weakest liberal precondition `wlp(P, B) = I − ⟦P⟧†(I − B)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
///
/// # Examples
///
/// ```
/// use nka_qprog::hoare::wlp;
/// use nka_qprog::Program;
/// use qsim_quantum::{gates, states};
///
/// // wlp(H, |0⟩⟨0|) = |+⟩⟨+|.
/// let h = Program::unitary("h", &gates::hadamard());
/// let pre = wlp(&h, &states::basis_density(2, 0));
/// let plus = h.run(&states::basis_density(2, 0));
/// assert!(pre.approx_eq(&plus, 1e-9));
/// ```
pub fn wlp(p: &Program, post: &CMatrix) -> CMatrix {
    let dim = p.dim();
    assert_eq!(post.rows(), dim, "postcondition dimension mismatch");
    let dual = p.denotation().dual();
    let id = CMatrix::identity(dim);
    &id - &dual.apply(&(&id - post))
}

/// A quantum Hoare triple `{A} P {B}`.
#[derive(Debug, Clone)]
pub struct HoareTriple {
    pre: CMatrix,
    prog: Program,
    post: CMatrix,
}

impl HoareTriple {
    /// Builds `{pre} prog {post}`.
    ///
    /// # Panics
    ///
    /// Panics if `pre`/`post` are not effects of the program's dimension.
    pub fn new(pre: &CMatrix, prog: &Program, post: &CMatrix) -> HoareTriple {
        assert!(is_effect(pre, 1e-8), "precondition must be an effect");
        assert!(is_effect(post, 1e-8), "postcondition must be an effect");
        assert_eq!(pre.rows(), prog.dim());
        assert_eq!(post.rows(), prog.dim());
        HoareTriple {
            pre: pre.clone(),
            prog: prog.clone(),
            post: post.clone(),
        }
    }

    /// The precondition `A`.
    pub fn pre(&self) -> &CMatrix {
        &self.pre
    }

    /// The program `P`.
    pub fn prog(&self) -> &Program {
        &self.prog
    }

    /// The postcondition `B`.
    pub fn post(&self) -> &CMatrix {
        &self.post
    }

    /// Partial correctness `⊨par {A} P {B}` via the wlp characterization.
    pub fn holds_partial(&self, tol: f64) -> bool {
        lowner_le(&self.pre, &wlp(&self.prog, &self.post), tol)
    }

    /// Checks eq. (7.3.1) directly on random density probes (a redundancy
    /// check on the wlp route, used in tests).
    pub fn holds_on_probes(&self, probes: usize, seed: &mut u64, tol: f64) -> bool {
        let dim = self.prog.dim();
        (0..probes).all(|_| {
            let rho = qsim_quantum::states::random_density(dim, seed);
            let out = self.prog.run(&rho);
            let lhs = (&self.pre * &rho).trace().re;
            let rhs = (&self.post * &out).trace().re + rho.trace().re - out.trace().re;
            lhs <= rhs + tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::{gates, states, Measurement};

    fn coin_flip_loop() -> Program {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        Program::while_loop(["m0", "m1"], &meas, h)
    }

    #[test]
    fn wlp_of_structures() {
        let h = Program::unitary("h", &gates::hadamard());
        let x = Program::unitary("x", &gates::pauli_x());
        // wlp(X, |1⟩⟨1|) = |0⟩⟨0|.
        let pre = wlp(&x, &states::basis_density(2, 1));
        assert!(pre.approx_eq(&states::basis_density(2, 0), 1e-9));
        // wlp is multiplicative over seq.
        let hx = h.then(&x);
        let direct = wlp(&hx, &states::basis_density(2, 1));
        let nested = wlp(&h, &wlp(&x, &states::basis_density(2, 1)));
        assert!(direct.approx_eq(&nested, 1e-9));
        // wlp(abort, B) = I (partial correctness ignores divergence).
        let ab = Program::abort(2);
        assert!(wlp(&ab, &states::basis_density(2, 0)).approx_eq(&CMatrix::identity(2), 1e-9));
    }

    #[test]
    fn triple_validity_routes_agree() {
        let mut seed = 5;
        let w = coin_flip_loop();
        // {I} while {|0⟩⟨0|}: the loop a.s. exits into |0⟩.
        let t = HoareTriple::new(&CMatrix::identity(2), &w, &states::basis_density(2, 0));
        assert!(t.holds_partial(1e-7));
        assert!(t.holds_on_probes(8, &mut seed, 1e-7));
        // A false triple: {I} while {|1⟩⟨1|}.
        let f = HoareTriple::new(&CMatrix::identity(2), &w, &states::basis_density(2, 1));
        assert!(!f.holds_partial(1e-7));
    }

    #[test]
    fn effect_validation() {
        assert!(is_effect(&CMatrix::identity(2), 1e-8));
        assert!(is_effect(&CMatrix::zeros(2, 2), 1e-8));
        assert!(is_effect(&states::basis_density(2, 1), 1e-8));
        // 2·I exceeds the identity.
        let two = CMatrix::identity(2).scale(qsim_linalg::Complex::from(2.0));
        assert!(!is_effect(&two, 1e-8));
        // A non-Hermitian matrix is not an effect.
        let nh = CMatrix::from_real(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(!is_effect(&nh, 1e-8));
    }
}
