//! Candidate generation for the certificate-carrying optimizer
//! (`Query::Optimize`, wire op `optimize`).
//!
//! This module is the *proposal* half of "apply what `analyze` reports,
//! then re-analyze until fixpoint": it pattern-matches the Section 5
//! rewrite catalog ([`crate::analysis::RULE_METADATA`]) against a parsed
//! surface program and produces [`Candidate`] rewrites — each a full
//! re-parseable program source plus the rule cite. Like
//! [`crate::analysis`], it is deliberately **engine-free**: the API
//! layer (`nka_core::api`) owns the fixpoint loop, validates every
//! candidate with a `prog_eq` decision on the warm engine, and only
//! applies candidates the algebra certifies.
//!
//! # One-way soundness shapes the candidate set
//!
//! Theorem 4.5 is one-way: `Enc(p) = Enc(q)` proves semantic equality,
//! but semantically true rewrites whose catalog entry carries *symbol
//! hypotheses* (gate fusion's `u1 u2 = u12`, double-reset's `r r = r`,
//! …) are not derivable for the free encoder symbols — `h q0; h q0` is
//! semantically `skip` but algebraically ≠ 1. Those rules still
//! generate candidates (marked [`Candidate::advisory`]); the engine
//! refutes them and the optimizer counts them as `candidates_refuted`
//! instead of applying them, so the output program is *always* covered
//! by an unconditional certificate. The unconditionally certifiable
//! rules — `abort-sink`, `dead-branch`, `dead-loop`, and the
//! fixed-point law behind `loop-peeling` — are the ones that actually
//! fire.
//!
//! `loop-peeling` is applied **right-to-left** by default (rolling an
//! unfolded iteration back into its loop, which shrinks the program);
//! the growing left-to-right direction only fires when the rule is
//! explicitly named in the rule filter, which is also what makes the
//! rule pair deliberately cyclic for the fixpoint-termination
//! regression tests.

use crate::analysis::{rule_meta, RULE_METADATA};
use crate::surface::{Stmt, StmtKind, SurfaceProgram};

/// Number of rules in the catalog ([`RULE_METADATA`]).
pub const RULE_COUNT: usize = RULE_METADATA.len();

/// Gates that are their own inverse (shared shape with the analyzer's
/// `self_inverse_pair` pass): an adjacent identical pair is
/// semantically `skip`, but only *advisorily* so — see the module docs.
const SELF_INVERSE: [&str; 7] = ["h", "x", "y", "z", "cnot", "cz", "swap"];

/// The position of `name` in [`RULE_METADATA`] (the index every
/// per-rule counter array uses).
#[must_use]
pub fn rule_index(name: &str) -> Option<usize> {
    RULE_METADATA.iter().position(|m| m.name == name)
}

/// Which catalog rules an optimize run may propose, plus whether the
/// growing (left-to-right) direction of `loop-peeling` is armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    enabled: [bool; RULE_COUNT],
    peel_forward: bool,
}

impl RuleSet {
    /// Builds the rule set from a user-supplied filter. An empty filter
    /// enables the whole catalog with `loop-peeling` in its shrinking
    /// (roll) direction only; naming rules restricts proposals to those
    /// rules, and naming `loop-peeling` explicitly *also* arms the
    /// growing peel direction.
    ///
    /// # Errors
    ///
    /// A message naming the first unknown rule and listing the catalog.
    pub fn from_names(rules: &[String]) -> Result<RuleSet, String> {
        let mut enabled = [rules.is_empty(); RULE_COUNT];
        for rule in rules {
            let Some(ix) = rule_index(rule) else {
                let known: Vec<&str> = RULE_METADATA.iter().map(|m| m.name).collect();
                return Err(format!(
                    "unknown optimizer rule {rule:?} (expected one of: {})",
                    known.join(", ")
                ));
            };
            enabled[ix] = true;
        }
        Ok(RuleSet {
            enabled,
            peel_forward: rules.iter().any(|r| r == "loop-peeling"),
        })
    }

    /// Whether `name` may propose candidates under this set.
    #[must_use]
    pub fn allows(&self, name: &str) -> bool {
        rule_index(name).is_some_and(|ix| self.enabled[ix])
    }

    /// Whether the growing peel direction is armed (only via an
    /// explicit `loop-peeling` in the filter).
    #[must_use]
    pub fn peel_forward(&self) -> bool {
        self.peel_forward
    }
}

/// One proposed rewrite: the rule, where it matched (byte span in the
/// *current* program's source), and the rewritten program as full
/// re-parseable source. `advisory` marks hypothesis-bearing rules the
/// engine is expected to refute (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The catalog rule that matched (an element of [`RULE_METADATA`]).
    pub rule: &'static str,
    /// Half-open byte span of the matched site in the current source.
    pub span: (usize, usize),
    /// Human-readable description of the rewrite.
    pub note: String,
    /// The rewritten program, rendered as re-parseable source.
    pub rewritten: String,
    /// Whether the rule carries symbol hypotheses that free encoder
    /// symbols cannot discharge (the engine will refute the step).
    pub advisory: bool,
}

/// One *applied* step of an optimize run, as reported in the verdict's
/// trace: the rule cite and where it fired. Spans refer to the program
/// source as it stood *before* this step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeStep {
    /// The catalog rule applied (an element of [`RULE_METADATA`]).
    pub rule: &'static str,
    /// Half-open byte span of the rewritten site in the pre-step source.
    pub span: (usize, usize),
    /// Human-readable description of the rewrite.
    pub note: String,
}

impl OptimizeStep {
    /// The paper citation of the applied rule.
    #[must_use]
    pub fn citation(&self) -> &'static str {
        rule_meta(self.rule).map_or("", |m| m.citation)
    }
}

/// Renders a statement sequence back to surface syntax that re-parses
/// to a structurally identical AST (there was previously no AST→source
/// direction; candidates need one to produce whole rewritten programs).
#[must_use]
pub fn render_program(qubits: usize, stmts: &[Stmt]) -> String {
    format!("qubits {qubits}; {}", render_seq(stmts))
}

fn render_seq(stmts: &[Stmt]) -> String {
    if stmts.is_empty() {
        return "skip".to_owned();
    }
    let parts: Vec<String> = stmts.iter().map(render_stmt).collect();
    parts.join("; ")
}

fn render_stmt(stmt: &Stmt) -> String {
    match &stmt.kind {
        StmtKind::Skip => "skip".to_owned(),
        StmtKind::Abort => "abort".to_owned(),
        StmtKind::Init(q) => format!("init q{q}"),
        StmtKind::Gate { name, targets } => {
            let mut out = name.clone();
            for q in targets {
                out.push_str(&format!(" q{q}"));
            }
            out
        }
        StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } => format!(
            "if q{qubit} {{ {} }} else {{ {} }}",
            render_seq(then_branch),
            render_seq(else_branch)
        ),
        StmtKind::While { qubit, body } => {
            format!("while q{qubit} {{ {} }}", render_seq(body))
        }
    }
}

/// Structural statement equality, ignoring spans (the derived
/// `PartialEq` on [`Stmt`] compares spans, which differ between a
/// parsed program and a rendered-then-reparsed one).
fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    match (&a.kind, &b.kind) {
        (StmtKind::Skip, StmtKind::Skip) | (StmtKind::Abort, StmtKind::Abort) => true,
        (StmtKind::Init(x), StmtKind::Init(y)) => x == y,
        (
            StmtKind::Gate {
                name: na,
                targets: ta,
            },
            StmtKind::Gate {
                name: nb,
                targets: tb,
            },
        ) => na == nb && ta == tb,
        (
            StmtKind::If {
                qubit: qa,
                then_branch: ta,
                else_branch: ea,
            },
            StmtKind::If {
                qubit: qb,
                then_branch: tb,
                else_branch: eb,
            },
        ) => qa == qb && seq_eq(ta, tb) && seq_eq(ea, eb),
        (
            StmtKind::While {
                qubit: qa,
                body: ba,
            },
            StmtKind::While {
                qubit: qb,
                body: bb,
            },
        ) => qa == qb && seq_eq(ba, bb),
        _ => false,
    }
}

fn seq_eq(a: &[Stmt], b: &[Stmt]) -> bool {
    // A missing else-branch, `{ }` and `{ skip }` all mean skip; the
    // renderer always emits `skip`, so all-skip sequences are equal.
    (seq_is_skip(a) && seq_is_skip(b))
        || (a.len() == b.len() && a.iter().zip(b).all(|(x, y)| stmt_eq(x, y)))
}

fn seq_is_skip(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| matches!(s.kind, StmtKind::Skip))
}

fn contains_abort(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Abort => true,
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => contains_abort(then_branch) || contains_abort(else_branch),
        StmtKind::While { body, .. } => contains_abort(body),
        _ => false,
    })
}

/// A candidate still in AST form (before rendering), with the ordering
/// hints the greedy loop relies on.
struct SeqCand {
    rule: &'static str,
    span: (usize, usize),
    note: String,
    stmts: Vec<Stmt>,
    advisory: bool,
    grows: bool,
}

/// Every candidate rewrite of `prog` under `rules`, ordered for the
/// greedy loop: certifiable shrinking rewrites first, the growing peel
/// direction after them, advisory (hypothesis-bearing) proposals last.
/// The order within each class follows source order, so greedy
/// application is deterministic.
#[must_use]
pub fn candidates(prog: &SurfaceProgram, rules: &RuleSet) -> Vec<Candidate> {
    let mut cands: Vec<SeqCand> = Vec::new();
    collect_seq(prog.ast(), rules, &mut cands);
    cands.sort_by_key(|c| (c.advisory, c.grows));
    cands
        .into_iter()
        .map(|c| Candidate {
            rule: c.rule,
            span: c.span,
            note: c.note,
            rewritten: render_program(prog.qubits(), &c.stmts),
            advisory: c.advisory,
        })
        .collect()
}

/// Replaces `stmts[i]` with `replacement` (splicing, so a statement can
/// become several or vanish), keeping everything else.
fn splice_at(stmts: &[Stmt], i: usize, replacement: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len() + replacement.len());
    out.extend_from_slice(&stmts[..i]);
    out.extend(replacement);
    out.extend_from_slice(&stmts[i + 1..]);
    out
}

fn stmt_at(span: (usize, usize), kind: StmtKind) -> Stmt {
    Stmt { kind, span }
}

fn collect_seq(stmts: &[Stmt], rules: &RuleSet, out: &mut Vec<SeqCand>) {
    // abort-sink: everything after a top-level abort is unreachable.
    if rules.allows("abort-sink") {
        if let Some(i) = stmts.iter().position(|s| matches!(s.kind, StmtKind::Abort)) {
            if i + 1 < stmts.len() {
                let dropped = stmts.len() - 1 - i;
                out.push(SeqCand {
                    rule: "abort-sink",
                    span: (stmts[i + 1].span.0, stmts[stmts.len() - 1].span.1),
                    note: format!("dropped {dropped} unreachable statement(s) after abort"),
                    stmts: stmts[..=i].to_vec(),
                    advisory: false,
                    grows: false,
                });
            }
        }
    }
    for i in 0..stmts.len() {
        adjacent_rules(stmts, i, rules, out);
        stmt_rules(stmts, i, rules, out);
        recurse(stmts, i, rules, out);
    }
}

/// Advisory rules over adjacent statements starting at `i`.
fn adjacent_rules(stmts: &[Stmt], i: usize, rules: &RuleSet, out: &mut Vec<SeqCand>) {
    let Some(next) = stmts.get(i + 1) else {
        return;
    };
    let cur = &stmts[i];
    // gate-fusion (advisory): an adjacent identical self-inverse pair
    // would fuse to the identity — needs the `u1 u2 = u12` hypothesis.
    if rules.allows("gate-fusion") {
        if let (
            StmtKind::Gate {
                name: na,
                targets: ta,
            },
            StmtKind::Gate {
                name: nb,
                targets: tb,
            },
        ) = (&cur.kind, &next.kind)
        {
            if na == nb && ta == tb && SELF_INVERSE.contains(&na.as_str()) {
                out.push(SeqCand {
                    rule: "gate-fusion",
                    span: (cur.span.0, next.span.1),
                    note: format!("adjacent self-inverse {na} pair would fuse to the identity"),
                    stmts: splice_at(&splice_at(stmts, i + 1, Vec::new()), i, Vec::new()),
                    advisory: true,
                    grows: false,
                });
            }
        }
    }
    // double-reset (advisory): init qK; init qK — needs `r r = r`.
    if rules.allows("double-reset") {
        if let (StmtKind::Init(a), StmtKind::Init(b)) = (&cur.kind, &next.kind) {
            if a == b {
                out.push(SeqCand {
                    rule: "double-reset",
                    span: (cur.span.0, next.span.1),
                    note: format!("repeated init q{a} would collapse to one reset"),
                    stmts: splice_at(stmts, i + 1, Vec::new()),
                    advisory: true,
                    grows: false,
                });
            }
        }
    }
    // uncompute (advisory): u1; u2; u2; u1 — needs the unitary-inverse
    // hypotheses.
    if rules.allows("uncompute") && i + 3 < stmts.len() {
        let quad = &stmts[i..i + 4];
        let gates: Vec<Option<(&str, &Vec<usize>)>> = quad
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Gate { name, targets } if SELF_INVERSE.contains(&name.as_str()) => {
                    Some((name.as_str(), targets))
                }
                _ => None,
            })
            .collect();
        if let [Some(g0), Some(g1), Some(g2), Some(g3)] = gates[..] {
            if g0 == g3 && g1 == g2 && g0 != g1 {
                let mut rest = stmts.to_vec();
                rest.drain(i..i + 4);
                out.push(SeqCand {
                    rule: "uncompute",
                    span: (quad[0].span.0, quad[3].span.1),
                    note: format!(
                        "{}; {} followed by its own inverse would uncompute to skip",
                        g0.0, g1.0
                    ),
                    stmts: rest,
                    advisory: true,
                    grows: false,
                });
            }
        }
    }
}

/// Rules matching a single statement at `i` (without recursing into it).
fn stmt_rules(stmts: &[Stmt], i: usize, rules: &RuleSet, out: &mut Vec<SeqCand>) {
    let stmt = &stmts[i];
    match &stmt.kind {
        StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } => {
            // dead-branch (certifiable): an arm containing abort may
            // encode to zero; collapsing it to plain `abort` is then
            // certified by the engine.
            if rules.allows("dead-branch") {
                for (arm, branch) in [("then", then_branch), ("else", else_branch)] {
                    let already_bare =
                        branch.len() == 1 && matches!(branch[0].kind, StmtKind::Abort);
                    if contains_abort(branch) && !already_bare {
                        let collapsed = vec![stmt_at(stmt.span, StmtKind::Abort)];
                        let (tb, eb) = if arm == "then" {
                            (collapsed, else_branch.clone())
                        } else {
                            (then_branch.clone(), collapsed)
                        };
                        out.push(SeqCand {
                            rule: "dead-branch",
                            span: stmt.span,
                            note: format!("aborting {arm}-branch collapses to abort (Enc = 0)"),
                            stmts: splice_at(
                                stmts,
                                i,
                                vec![stmt_at(
                                    stmt.span,
                                    StmtKind::If {
                                        qubit: *qubit,
                                        then_branch: tb,
                                        else_branch: eb,
                                    },
                                )],
                            ),
                            advisory: false,
                            grows: false,
                        });
                    }
                }
            }
            // branch-fusion (advisory): identical arms — needs
            // `m0 + m1 = 1` for the free measurement symbols.
            if rules.allows("branch-fusion")
                && seq_eq(then_branch, else_branch)
                && !seq_is_skip(then_branch)
            {
                out.push(SeqCand {
                    rule: "branch-fusion",
                    span: stmt.span,
                    note: format!("identical branches of the q{qubit} measurement would fuse"),
                    stmts: splice_at(stmts, i, then_branch.clone()),
                    advisory: true,
                    grows: false,
                });
            }
            // double-measure (advisory): re-measuring the same qubit at
            // the head of an arm — needs `m1 m1 = m1`, `m1 m0 = 0`.
            if rules.allows("double-measure") {
                for (arm, branch, take_then) in
                    [("then", then_branch, true), ("else", else_branch, false)]
                {
                    let Some(first) = branch.first() else {
                        continue;
                    };
                    let StmtKind::If {
                        qubit: q2,
                        then_branch: inner_then,
                        else_branch: inner_else,
                    } = &first.kind
                    else {
                        continue;
                    };
                    if q2 != qubit {
                        continue;
                    }
                    let kept = if take_then { inner_then } else { inner_else };
                    let mut new_branch = kept.clone();
                    new_branch.extend_from_slice(&branch[1..]);
                    let (tb, eb) = if arm == "then" {
                        (new_branch, else_branch.clone())
                    } else {
                        (then_branch.clone(), new_branch)
                    };
                    out.push(SeqCand {
                        rule: "double-measure",
                        span: first.span,
                        note: format!(
                            "re-measuring q{qubit} in the {arm}-branch would collapse (projective measurement)"
                        ),
                        stmts: splice_at(
                            stmts,
                            i,
                            vec![stmt_at(
                                stmt.span,
                                StmtKind::If {
                                    qubit: *qubit,
                                    then_branch: tb,
                                    else_branch: eb,
                                },
                            )],
                        ),
                        advisory: true,
                        grows: false,
                    });
                }
            }
            // loop-peeling applied right-to-left (certifiable): an
            // `if` whose then-branch is one unfolded iteration rolls
            // back into the loop — the Fig. 3 fixed-point law.
            if rules.allows("loop-peeling") && seq_is_skip(else_branch) {
                if let Some(StmtKind::While { qubit: q2, body }) =
                    then_branch.last().map(|s| &s.kind)
                {
                    if q2 == qubit && seq_eq(&then_branch[..then_branch.len() - 1], body) {
                        out.push(SeqCand {
                            rule: "loop-peeling",
                            span: stmt.span,
                            note: "rolled one unfolded iteration back into the loop (fixed-point law, right-to-left)".to_owned(),
                            stmts: splice_at(
                                stmts,
                                i,
                                vec![stmt_at(
                                    stmt.span,
                                    StmtKind::While {
                                        qubit: *qubit,
                                        body: body.clone(),
                                    },
                                )],
                            ),
                            advisory: false,
                            grows: false,
                        });
                    }
                }
            }
        }
        StmtKind::While { qubit, body } => {
            // dead-loop (certifiable): an aborting body means no
            // iteration ever completes — `(m1·0)*·m0 = m0`.
            if rules.allows("dead-loop") && contains_abort(body) {
                out.push(SeqCand {
                    rule: "dead-loop",
                    span: stmt.span,
                    note: "aborting loop body: the loop reduces to its exit measurement (0* = 1)"
                        .to_owned(),
                    stmts: splice_at(
                        stmts,
                        i,
                        vec![stmt_at(
                            stmt.span,
                            StmtKind::If {
                                qubit: *qubit,
                                then_branch: vec![stmt_at(stmt.span, StmtKind::Abort)],
                                else_branch: Vec::new(),
                            },
                        )],
                    ),
                    advisory: false,
                    grows: false,
                });
            }
            // loop-peeling left-to-right (certifiable but growing):
            // only armed when the rule is explicitly requested.
            if rules.allows("loop-peeling") && rules.peel_forward() {
                let mut unfolded = body.clone();
                unfolded.push(stmt_at(
                    stmt.span,
                    StmtKind::While {
                        qubit: *qubit,
                        body: body.clone(),
                    },
                ));
                out.push(SeqCand {
                    rule: "loop-peeling",
                    span: stmt.span,
                    note: "peeled one iteration off the loop (fixed-point law, left-to-right)"
                        .to_owned(),
                    stmts: splice_at(
                        stmts,
                        i,
                        vec![stmt_at(
                            stmt.span,
                            StmtKind::If {
                                qubit: *qubit,
                                then_branch: unfolded,
                                else_branch: Vec::new(),
                            },
                        )],
                    ),
                    advisory: false,
                    grows: true,
                });
            }
        }
        _ => {}
    }
}

/// Recurses into block statements, wrapping inner candidates back into
/// the full sequence.
fn recurse(stmts: &[Stmt], i: usize, rules: &RuleSet, out: &mut Vec<SeqCand>) {
    let stmt = &stmts[i];
    match &stmt.kind {
        StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } => {
            let mut inner = Vec::new();
            collect_seq(then_branch, rules, &mut inner);
            for c in inner {
                let kind = StmtKind::If {
                    qubit: *qubit,
                    then_branch: c.stmts,
                    else_branch: else_branch.clone(),
                };
                out.push(SeqCand {
                    stmts: splice_at(stmts, i, vec![stmt_at(stmt.span, kind)]),
                    ..c
                });
            }
            let mut inner = Vec::new();
            collect_seq(else_branch, rules, &mut inner);
            for c in inner {
                let kind = StmtKind::If {
                    qubit: *qubit,
                    then_branch: then_branch.clone(),
                    else_branch: c.stmts,
                };
                out.push(SeqCand {
                    stmts: splice_at(stmts, i, vec![stmt_at(stmt.span, kind)]),
                    ..c
                });
            }
        }
        StmtKind::While { qubit, body } => {
            let mut inner = Vec::new();
            collect_seq(body, rules, &mut inner);
            for c in inner {
                let kind = StmtKind::While {
                    qubit: *qubit,
                    body: c.stmts,
                };
                out.push(SeqCand {
                    stmts: splice_at(stmts, i, vec![stmt_at(stmt.span, kind)]),
                    ..c
                });
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SurfaceProgram {
        SurfaceProgram::parse(src).expect("test program parses")
    }

    fn all_rules() -> RuleSet {
        RuleSet::from_names(&[]).unwrap()
    }

    #[test]
    fn rendered_programs_reparse_structurally_identical() {
        for src in [
            "qubits 1; skip",
            "qubits 2; h q0; cnot q0 q1",
            "qubits 2; init q1; if q0 { x q1 } else { }; while q1 { h q0 }",
            "qubits 3; if q2 { if q1 { abort } else { skip } } else { while q0 { s q2 } }",
        ] {
            let prog = parse(src);
            let rendered = render_program(prog.qubits(), prog.ast());
            let back = parse(&rendered);
            assert_eq!(back.qubits(), prog.qubits(), "{src}");
            assert!(seq_eq(back.ast(), prog.ast()), "{src} vs {rendered}");
            // Rendering is a normal form: re-rendering is a fixpoint.
            assert_eq!(render_program(back.qubits(), back.ast()), rendered);
        }
    }

    #[test]
    fn rule_set_validates_names_against_the_catalog() {
        assert!(RuleSet::from_names(&["dead-branch".to_owned()]).is_ok());
        let err = RuleSet::from_names(&["dead-brunch".to_owned()]).unwrap_err();
        assert!(err.contains("unknown optimizer rule"), "{err}");
        assert!(err.contains("abort-sink"), "{err}");
        // Defaults: everything on, peel direction off.
        let rs = all_rules();
        for meta in RULE_METADATA {
            assert!(rs.allows(meta.name), "{}", meta.name);
        }
        assert!(!rs.peel_forward());
        // Restricting arms only the named rules.
        let rs = RuleSet::from_names(&["loop-peeling".to_owned()]).unwrap();
        assert!(rs.allows("loop-peeling") && rs.peel_forward());
        assert!(!rs.allows("abort-sink"));
    }

    #[test]
    fn abort_sink_drops_unreachable_tails_at_every_depth() {
        let prog = parse("qubits 1; abort; h q0; x q0");
        let cands = candidates(&prog, &all_rules());
        let sink = cands.iter().find(|c| c.rule == "abort-sink").unwrap();
        assert_eq!(sink.rewritten, "qubits 1; abort");
        assert!(!sink.advisory);
        // Nested in a branch.
        let prog = parse("qubits 2; if q0 { abort; h q1 } else { x q1 }");
        let cands = candidates(&prog, &all_rules());
        let sink = cands.iter().find(|c| c.rule == "abort-sink").unwrap();
        assert_eq!(sink.rewritten, "qubits 2; if q0 { abort } else { x q1 }");
    }

    #[test]
    fn dead_branch_and_dead_loop_collapse_aborting_regions() {
        let prog = parse("qubits 2; if q0 { x q1; abort } else { h q1 }");
        let cands = candidates(&prog, &all_rules());
        let dead = cands.iter().find(|c| c.rule == "dead-branch").unwrap();
        assert_eq!(dead.rewritten, "qubits 2; if q0 { abort } else { h q1 }");
        let prog = parse("qubits 1; while q0 { abort }");
        let cands = candidates(&prog, &all_rules());
        let dead = cands.iter().find(|c| c.rule == "dead-loop").unwrap();
        assert_eq!(dead.rewritten, "qubits 1; if q0 { abort } else { skip }");
    }

    #[test]
    fn loop_rolling_matches_the_exact_unfolding_only() {
        let prog = parse("qubits 1; if q0 { x q0; while q0 { x q0 } } else { skip }");
        let cands = candidates(&prog, &all_rules());
        let roll = cands.iter().find(|c| c.rule == "loop-peeling").unwrap();
        assert_eq!(roll.rewritten, "qubits 1; while q0 { x q0 }");
        assert!(!roll.advisory);
        // Guard mismatch: no roll.
        let prog = parse("qubits 2; if q0 { x q0; while q1 { x q0 } } else { skip }");
        assert!(candidates(&prog, &all_rules())
            .iter()
            .all(|c| c.rule != "loop-peeling"));
        // Body mismatch: no roll.
        let prog = parse("qubits 1; if q0 { z q0; while q0 { x q0 } } else { skip }");
        assert!(candidates(&prog, &all_rules())
            .iter()
            .all(|c| c.rule != "loop-peeling"));
    }

    #[test]
    fn peel_direction_is_opt_in_and_inverts_rolling() {
        let prog = parse("qubits 1; while q0 { x q0 }");
        // Default set: the growing direction stays dark.
        assert!(candidates(&prog, &all_rules()).is_empty());
        let rs = RuleSet::from_names(&["loop-peeling".to_owned()]).unwrap();
        let cands = candidates(&prog, &rs);
        let peel = cands.iter().find(|c| c.rule == "loop-peeling").unwrap();
        assert_eq!(
            peel.rewritten,
            "qubits 1; if q0 { x q0; while q0 { x q0 } } else { skip }"
        );
        // Rolling the peeled form yields the original source again —
        // the deliberately cycling pair of the termination regression.
        let peeled = parse(&peel.rewritten);
        let back = candidates(&peeled, &rs);
        let roll = back
            .iter()
            .find(|c| c.rule == "loop-peeling" && c.rewritten == "qubits 1; while q0 { x q0 }")
            .unwrap();
        assert!(!roll.advisory);
    }

    #[test]
    fn hypothesis_bearing_rules_propose_advisory_candidates() {
        let prog = parse("qubits 2; h q0; h q0; init q1; init q1");
        let cands = candidates(&prog, &all_rules());
        let fusion = cands.iter().find(|c| c.rule == "gate-fusion").unwrap();
        assert!(fusion.advisory);
        assert_eq!(fusion.rewritten, "qubits 2; init q1; init q1");
        let reset = cands.iter().find(|c| c.rule == "double-reset").unwrap();
        assert!(reset.advisory);
        assert_eq!(reset.rewritten, "qubits 2; h q0; h q0; init q1");
        // Advisory candidates sort after certifiable ones.
        let prog = parse("qubits 2; h q0; h q0; abort; x q1");
        let cands = candidates(&prog, &all_rules());
        assert_eq!(cands[0].rule, "abort-sink");
        assert!(cands.iter().any(|c| c.rule == "gate-fusion"));
    }

    #[test]
    fn uncompute_and_double_measure_and_branch_fusion_propose() {
        let prog = parse("qubits 2; h q0; x q1; x q1; h q0");
        let cands = candidates(&prog, &all_rules());
        let un = cands.iter().find(|c| c.rule == "uncompute").unwrap();
        assert!(un.advisory);
        assert_eq!(un.rewritten, "qubits 2; skip");
        let prog = parse("qubits 2; if q0 { if q0 { x q1 } else { z q1 } } else { h q1 }");
        let cands = candidates(&prog, &all_rules());
        let dm = cands.iter().find(|c| c.rule == "double-measure").unwrap();
        assert!(dm.advisory);
        assert_eq!(dm.rewritten, "qubits 2; if q0 { x q1 } else { h q1 }");
        let prog = parse("qubits 2; if q0 { h q1 } else { h q1 }");
        let cands = candidates(&prog, &all_rules());
        let bf = cands.iter().find(|c| c.rule == "branch-fusion").unwrap();
        assert!(bf.advisory);
        assert_eq!(bf.rewritten, "qubits 2; h q1");
    }

    #[test]
    fn every_candidate_of_a_generated_program_reparses() {
        let prog = parse(
            "qubits 3; if q0 { h q1; abort; x q1 } else { skip }; h q2; h q2; \
             while q1 { init q0; init q0 }",
        );
        let rs = RuleSet::from_names(&["loop-peeling".to_owned()]).unwrap();
        for set in [all_rules(), rs] {
            for cand in candidates(&prog, &set) {
                let back = SurfaceProgram::parse(&cand.rewritten);
                assert!(back.is_ok(), "{} => {:?}", cand.rewritten, back.err());
            }
        }
    }

    #[test]
    fn steps_carry_their_catalog_citation() {
        let step = OptimizeStep {
            rule: "abort-sink",
            span: (0, 1),
            note: "x".to_owned(),
        };
        assert!(step.citation().contains("Def. 4.4"));
        assert_eq!(rule_index("dead-branch"), Some(0));
        assert_eq!(rule_index("uncompute"), Some(8));
        assert_eq!(rule_index("nope"), None);
    }
}
