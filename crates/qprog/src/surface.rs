//! The textual surface language for quantum while-programs and effects.
//!
//! This is the front end of the quantum workload API: `prog_eq` and
//! `hoare` wire queries carry programs (and pre/postconditions) as
//! source text in this language, hand-parsed with the same byte-span
//! caret diagnostics as `nka_syntax::ParseExprError`.
//!
//! # Program grammar
//!
//! ```text
//! program := 'qubits' NAT ';' seq?
//! seq     := stmt (';' stmt)* ';'?
//! stmt    := 'skip' | 'abort'
//!          | 'init' QUBIT              -- q := |0⟩ on one qubit
//!          | GATE QUBIT+               -- h q0 | cnot q0 q1 | …
//!          | 'if' QUBIT block ('else' block)?
//!          | 'while' QUBIT block       -- while M[q] = 1 do … done
//! block   := '{' seq? '}'
//! QUBIT   := 'q' NAT                   -- q0, q1, …
//! GATE    := h | x | y | z | s | t | cnot | cz | swap
//! ```
//!
//! `if`/`while` measure one qubit in the computational basis; outcome 1
//! selects the `if` branch / continues the loop, outcome 0 selects
//! `else` / exits — exactly the paper's `while M[q̄] = 1 do P done`.
//! A missing `else` block and an empty `{}` both mean `skip`.
//!
//! Encoder names (Definition 4.4) are derived deterministically, so two
//! programs parsed for one comparison share symbols exactly when they
//! share elementary operations: gate `h q0` ↦ `h_q0`, `cnot q0 q1` ↦
//! `cnot_q0_q1`, `init q2` ↦ `init_q2`, and measuring qubit `k` names
//! its outcomes `m0_qk` / `m1_qk`. The derivation is injective (one
//! name, one superoperator), so [`crate::EncoderSetting`] never sees a
//! collision on surface programs.
//!
//! # Effect grammar
//!
//! Pre/postconditions of `hoare` queries are diagonal-friendly effect
//! expressions over the same qubit count:
//!
//! ```text
//! effect := term ('+' term)*
//! term   := factor ('*'? factor)*     -- '*' optional: 0.5 I ≡ 0.5 * I
//! factor := NUMBER                    -- scalar (alone: NUMBER · I)
//!         | 'I'                       -- identity
//!         | 'ket' '(' BITS ')'        -- |bits⟩⟨bits|, one bit per qubit
//!         | QUBIT '=' (0|1)           -- projector on one qubit's value
//! ```
//!
//! The parsed matrix must be an effect (`0 ⊑ E ⊑ I`, [`crate::hoare::is_effect`]);
//! `0.7 ket(01) + 0.3 q0=1` parses, `2 I` is rejected with a span.
//!
//! # Examples
//!
//! ```
//! use nka_qprog::surface::SurfaceProgram;
//!
//! let p = SurfaceProgram::parse("qubits 1; h q0; while q0 { h q0 }")?;
//! assert_eq!(p.qubits(), 1);
//! // The coin-flip loop almost surely exits into |0⟩.
//! let out = p.program().run(&qsim_quantum::states::basis_density(2, 1));
//! assert!(out.trace().re > 0.0);
//! # Ok::<(), nka_qprog::surface::ParseProgError>(())
//! ```

use crate::program::Program;
use qsim_linalg::{CMatrix, Complex};
use qsim_quantum::{gates, Measurement, RegisterSpace, Superoperator};
use std::fmt;

/// Hard cap on the declared qubit count. Programs act on a
/// `2^n`-dimensional space and `hoare` queries materialize the
/// `4^n × 4^n` Liouville matrix of the denotation, so this bounds the
/// memory any single wire request can demand (n = 5 ⇒ 1024² complex
/// entries ≈ 16 MiB, answered in well under a second).
pub const MAX_QUBITS: usize = 5;

/// Error raised when parsing a surface program or effect fails.
///
/// Mirrors `nka_syntax::ParseExprError`: carries the half-open byte
/// span `[start, end)` of the offending input and renders a `^^^`
/// caret line — the wire layer surfaces both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgError {
    message: String,
    start: usize,
    end: usize,
}

impl ParseProgError {
    fn new(message: impl Into<String>, start: usize, end: usize) -> ParseProgError {
        ParseProgError {
            message: message.into(),
            start,
            end,
        }
    }

    /// Byte offset in the input at which the error occurred.
    #[must_use]
    pub fn position(&self) -> usize {
        self.start
    }

    /// The half-open byte span `[start, end)` of the offending token.
    /// An empty span (`start == end`) means the error is *at* that
    /// point — typically an unexpected end of input.
    #[must_use]
    pub fn span(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// The bare message, without the byte-offset suffix of `Display`.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders the source with a `^^^` caret line under the offending
    /// span — the same renderer as `ParseExprError::caret`
    /// ([`nka_syntax::render_caret`]), so the two error surfaces cannot
    /// drift apart:
    ///
    /// ```text
    /// qubits 1; frob q0
    ///           ^^^^ unknown gate or statement "frob"
    /// ```
    #[must_use]
    pub fn caret(&self, src: &str) -> String {
        nka_syntax::render_caret(src, self.start, self.end, &self.message)
    }
}

impl fmt::Display for ParseProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.start)
    }
}

impl std::error::Error for ParseProgError {}

/// One surface statement together with its half-open byte span in the
/// source — the unit the static analyzer (`crate::analysis`) reports
/// findings against. Spans cover the whole statement, from its head
/// keyword through its last token (including nested blocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Half-open byte span `[start, end)` in the source text.
    pub span: (usize, usize),
}

/// The statement alternatives of the surface grammar, in parsed (not
/// lowered) form: qubit indices are range-checked, gate names are
/// validated against the gate table, but nothing is embedded into
/// matrices yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `skip` — the identity program.
    Skip,
    /// `abort` — the zero program.
    Abort,
    /// `init qK` — reset one qubit to `|0⟩`.
    Init(usize),
    /// A gate application: surface name (`h`, `cnot`, …) plus its
    /// target qubits in argument order.
    Gate {
        /// The surface gate name, validated against the gate table.
        name: String,
        /// Target qubit indices, in argument order (no repeats).
        targets: Vec<usize>,
    },
    /// `if qK { … } else { … }` — outcome 1 selects the then-branch.
    If {
        /// The measured qubit.
        qubit: usize,
        /// Statements of the then-branch (outcome 1); empty = `skip`.
        then_branch: Vec<Stmt>,
        /// Statements of the else-branch (outcome 0); empty = `skip`.
        else_branch: Vec<Stmt>,
    },
    /// `while qK { … }` — loop while the measurement yields 1.
    While {
        /// The measured qubit.
        qubit: usize,
        /// Statements of the loop body; empty = `skip`.
        body: Vec<Stmt>,
    },
}

/// A parsed program plus the exact source it came from.
///
/// Equality (and the wire round-trip `decode(encode(q)) == q`) is *by
/// source text*: two different spellings of the same program compare
/// unequal, which is what a request/response protocol wants.
#[derive(Debug, Clone)]
pub struct SurfaceProgram {
    src: String,
    qubits: usize,
    header_span: (usize, usize),
    ast: Vec<Stmt>,
    prog: Program,
}

impl PartialEq for SurfaceProgram {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src
    }
}

impl Eq for SurfaceProgram {}

impl fmt::Display for SurfaceProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.src)
    }
}

impl SurfaceProgram {
    /// Parses a program from surface syntax.
    ///
    /// # Errors
    ///
    /// A span-bearing [`ParseProgError`] on any lexical, syntactic, or
    /// arity/range error (unknown gate, out-of-range qubit, …).
    pub fn parse(src: &str) -> Result<SurfaceProgram, ParseProgError> {
        let tokens = tokenize(src)?;
        let mut p = Parser::new(tokens, src.len());
        let (qubits, header_span, ast) = p.parse_program()?;
        let space = qubit_space(qubits);
        let prog = lower_seq(&space, qubits, &ast);
        Ok(SurfaceProgram {
            src: src.to_owned(),
            qubits,
            header_span,
            ast,
            prog,
        })
    }

    /// The source text, verbatim.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The declared qubit count.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The Hilbert-space dimension `2^qubits`.
    #[must_use]
    pub fn dim(&self) -> usize {
        1 << self.qubits
    }

    /// The parsed program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// The span-carrying statement AST the program was lowered from —
    /// the surface the static analyzer (`crate::analysis`) walks. An
    /// empty slice means the program body is `skip`.
    #[must_use]
    pub fn ast(&self) -> &[Stmt] {
        &self.ast
    }

    /// The byte span of the `qubits N` header — where whole-program
    /// findings (unused qubits, metrics) anchor.
    #[must_use]
    pub fn header_span(&self) -> (usize, usize) {
        self.header_span
    }
}

/// A parsed effect (pre/postcondition) plus its exact source. Equality
/// is by source text and qubit count, like [`SurfaceProgram`].
#[derive(Debug, Clone)]
pub struct SurfaceEffect {
    src: String,
    qubits: usize,
    matrix: CMatrix,
}

impl PartialEq for SurfaceEffect {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.qubits == other.qubits
    }
}

impl Eq for SurfaceEffect {}

impl fmt::Display for SurfaceEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.src)
    }
}

impl SurfaceEffect {
    /// Parses an effect over `qubits` qubits and validates it
    /// ([`crate::hoare::is_effect`] within `1e-8`).
    ///
    /// # Errors
    ///
    /// A span-bearing [`ParseProgError`] on syntax errors or when the
    /// parsed matrix is not an effect (e.g. `2 I`).
    pub fn parse(src: &str, qubits: usize) -> Result<SurfaceEffect, ParseProgError> {
        if qubits == 0 || qubits > MAX_QUBITS {
            return Err(ParseProgError::new(
                format!("effects need a qubit count in 1..={MAX_QUBITS}, got {qubits}"),
                0,
                src.len(),
            ));
        }
        let tokens = tokenize(src)?;
        let mut p = Parser::new(tokens, src.len());
        let matrix = p.parse_effect(qubits)?;
        if !crate::hoare::is_effect(&matrix, 1e-8) {
            return Err(ParseProgError::new(
                "not an effect: the matrix must satisfy 0 \u{2291} E \u{2291} I",
                0,
                src.len(),
            ));
        }
        Ok(SurfaceEffect {
            src: src.to_owned(),
            qubits,
            matrix,
        })
    }

    /// The source text, verbatim.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The qubit count this effect was parsed against.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The validated effect matrix (`2^qubits` square).
    #[must_use]
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    /// A number, raw text preserved (`ket(010)` needs the leading zero).
    Num(String),
    Semi,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Eq,
    Plus,
    Star,
}

/// A token plus its half-open byte span in the source.
type Spanned = (Token, usize, usize);

/// What `parse_program` yields: the qubit count, the `qubits N`
/// header's byte span, and the span-carrying statement AST.
type ParsedProgram = (usize, (usize, usize), Vec<Stmt>);

fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseProgError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let single = |t| (t, i, i + 1);
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b';' => {
                tokens.push(single(Token::Semi));
                i += 1;
            }
            b'{' => {
                tokens.push(single(Token::LBrace));
                i += 1;
            }
            b'}' => {
                tokens.push(single(Token::RBrace));
                i += 1;
            }
            b'(' => {
                tokens.push(single(Token::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(single(Token::RParen));
                i += 1;
            }
            b'=' => {
                tokens.push(single(Token::Eq));
                i += 1;
            }
            b'+' => {
                tokens.push(single(Token::Plus));
                i += 1;
            }
            b'*' => {
                tokens.push(single(Token::Star));
                i += 1;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                tokens.push((Token::Num(input[start..i].to_owned()), start, i));
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_owned()), start, i));
            }
            _ => {
                let ch = input[i..].chars().next().expect("non-empty remainder");
                return Err(ParseProgError::new(
                    format!("unexpected character {ch:?}"),
                    i,
                    i + ch.len_utf8(),
                ));
            }
        }
    }
    Ok(tokens)
}

/// The gate table: surface name ↦ (matrix, qubit arity).
fn gate_table(name: &str) -> Option<(CMatrix, usize)> {
    match name {
        "h" => Some((gates::hadamard(), 1)),
        "x" => Some((gates::pauli_x(), 1)),
        "y" => Some((gates::pauli_y(), 1)),
        "z" => Some((gates::pauli_z(), 1)),
        "s" => Some((gates::s_gate(), 1)),
        "t" => Some((gates::t_gate(), 1)),
        "cnot" => Some((gates::cnot(), 2)),
        "cz" => Some((gates::cz(), 2)),
        "swap" => Some((gates::swap(), 2)),
        _ => None,
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>, input_len: usize) -> Parser {
        Parser {
            tokens,
            pos: 0,
            input_len,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    /// The span of the current token, or the empty end-of-input span.
    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .map_or((self.input_len, self.input_len), |&(_, s, e)| (s, e))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseProgError {
        let (s, e) = self.here();
        ParseProgError::new(msg, s, e)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseProgError> {
        if self.peek() == Some(want) {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    /// `'q' NAT` — a qubit reference, range-checked against `qubits`.
    fn parse_qubit(&mut self, qubits: usize) -> Result<usize, ParseProgError> {
        let (s, e) = self.here();
        match self.bump() {
            Some(Token::Ident(name)) => {
                let idx = name
                    .strip_prefix('q')
                    .and_then(|d| {
                        (!d.is_empty() && d.bytes().all(|b| b.is_ascii_digit())).then_some(d)
                    })
                    .and_then(|d| d.parse::<usize>().ok())
                    .ok_or_else(|| {
                        ParseProgError::new(format!("expected a qubit like q0, got {name:?}"), s, e)
                    })?;
                if idx >= qubits {
                    return Err(ParseProgError::new(
                        format!(
                            "qubit q{idx} out of range: the program declares {qubits} qubit(s)"
                        ),
                        s,
                        e,
                    ));
                }
                Ok(idx)
            }
            _ => Err(ParseProgError::new("expected a qubit like q0", s, e)),
        }
    }

    /// The end of the most recently consumed token (0 before any).
    fn prev_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map_or(0, |&(_, _, e)| e)
    }

    /// `program := 'qubits' NAT ';' seq?` — returns the qubit count,
    /// the header's byte span, and the span-carrying statement AST.
    fn parse_program(&mut self) -> Result<ParsedProgram, ParseProgError> {
        let (s, e) = self.here();
        match self.bump() {
            Some(Token::Ident(kw)) if kw == "qubits" => {}
            _ => {
                return Err(ParseProgError::new(
                    "a program starts with 'qubits N;'",
                    s,
                    e,
                ))
            }
        }
        let (ns, ne) = self.here();
        let qubits = match self.bump() {
            Some(Token::Num(raw)) if !raw.contains('.') => raw
                .parse::<usize>()
                .map_err(|_| ParseProgError::new(format!("bad qubit count {raw:?}"), ns, ne))?,
            _ => return Err(ParseProgError::new("expected the qubit count", ns, ne)),
        };
        if qubits == 0 || qubits > MAX_QUBITS {
            return Err(ParseProgError::new(
                format!("qubit count must be in 1..={MAX_QUBITS}, got {qubits}"),
                ns,
                ne,
            ));
        }
        let header_span = (s, ne);
        self.expect(&Token::Semi, "';' after the qubit count")?;
        let stmts = self.parse_seq(qubits, /* in_block: */ false)?;
        if self.pos != self.tokens.len() {
            return Err(self.err_here("trailing input"));
        }
        Ok((qubits, header_span, stmts))
    }

    /// `seq := stmt (';' stmt)* ';'?` — empty means `skip`. When
    /// `in_block`, the sequence ends at `}` (not consumed here).
    fn parse_seq(&mut self, qubits: usize, in_block: bool) -> Result<Vec<Stmt>, ParseProgError> {
        let mut stmts = Vec::new();
        loop {
            // Skip stray separators, stop at the closer / end.
            while self.peek() == Some(&Token::Semi) {
                self.bump();
            }
            match self.peek() {
                None => break,
                Some(Token::RBrace) if in_block => break,
                _ => {}
            }
            stmts.push(self.parse_stmt(qubits)?);
            // Statements are ';'-separated; a block closer or EOF may
            // follow the last one directly.
            match self.peek() {
                Some(Token::Semi) => {}
                None => break,
                Some(Token::RBrace) if in_block => break,
                _ => return Err(self.err_here("expected ';' between statements")),
            }
        }
        Ok(stmts)
    }

    /// `block := '{' seq? '}'`
    fn parse_block(&mut self, qubits: usize) -> Result<Vec<Stmt>, ParseProgError> {
        self.expect(&Token::LBrace, "'{'")?;
        let body = self.parse_seq(qubits, true)?;
        self.expect(&Token::RBrace, "'}'")?;
        Ok(body)
    }

    fn parse_stmt(&mut self, qubits: usize) -> Result<Stmt, ParseProgError> {
        let (s, e) = self.here();
        let Some(Token::Ident(head)) = self.bump() else {
            return Err(ParseProgError::new("expected a statement", s, e));
        };
        let kind = match head.as_str() {
            "skip" => StmtKind::Skip,
            "abort" => StmtKind::Abort,
            "init" => StmtKind::Init(self.parse_qubit(qubits)?),
            "if" => {
                let q = self.parse_qubit(qubits)?;
                let then_branch = self.parse_block(qubits)?;
                let has_else = matches!(self.peek(), Some(Token::Ident(k)) if k == "else");
                let else_branch = if has_else {
                    self.bump();
                    self.parse_block(qubits)?
                } else {
                    Vec::new()
                };
                StmtKind::If {
                    qubit: q,
                    then_branch,
                    else_branch,
                }
            }
            "while" => {
                let q = self.parse_qubit(qubits)?;
                let body = self.parse_block(qubits)?;
                StmtKind::While { qubit: q, body }
            }
            gate => {
                let Some((_, arity)) = gate_table(gate) else {
                    return Err(ParseProgError::new(
                        format!("unknown gate or statement {gate:?}"),
                        s,
                        e,
                    ));
                };
                let mut targets = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let (qs, qe) = self.here();
                    let q = self.parse_qubit(qubits)?;
                    if targets.contains(&q) {
                        return Err(ParseProgError::new(
                            format!("gate {gate:?} lists qubit q{q} twice"),
                            qs,
                            qe,
                        ));
                    }
                    targets.push(q);
                }
                StmtKind::Gate {
                    name: gate.to_owned(),
                    targets,
                }
            }
        };
        Ok(Stmt {
            kind,
            span: (s, self.prev_end()),
        })
    }

    /// `effect := term ('+' term)*`
    fn parse_effect(&mut self, qubits: usize) -> Result<CMatrix, ParseProgError> {
        let mut acc = self.parse_effect_term(qubits)?;
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            let rhs = self.parse_effect_term(qubits)?;
            acc = &acc + &rhs;
        }
        if self.pos != self.tokens.len() {
            return Err(self.err_here("trailing input"));
        }
        Ok(acc)
    }

    /// `term := factor ('*'? factor)*` — scalars multiply, matrix
    /// factors compose; a pure-scalar term means `scalar · I`.
    fn parse_effect_term(&mut self, qubits: usize) -> Result<CMatrix, ParseProgError> {
        let dim = 1usize << qubits;
        let mut scalar = 1.0f64;
        let mut matrix: Option<CMatrix> = None;
        let mut first = true;
        loop {
            match self.peek() {
                Some(Token::Star) if !first => {
                    self.bump();
                }
                Some(Token::Num(_) | Token::Ident(_)) if !first => {}
                _ if first => {}
                _ => break,
            }
            let (s, e) = self.here();
            match self.bump() {
                Some(Token::Num(raw)) => {
                    let v: f64 = raw
                        .parse()
                        .map_err(|_| ParseProgError::new(format!("bad number {raw:?}"), s, e))?;
                    scalar *= v;
                }
                Some(Token::Ident(name)) if name == "I" => {
                    let m = CMatrix::identity(dim);
                    matrix = Some(matrix.map_or(m.clone(), |prev| &prev * &m));
                }
                Some(Token::Ident(name)) if name == "ket" => {
                    self.expect(&Token::LParen, "'(' after ket")?;
                    let (bs, be) = self.here();
                    let bits = match self.bump() {
                        Some(Token::Num(raw)) => raw,
                        _ => {
                            return Err(ParseProgError::new("expected a bitstring like 01", bs, be))
                        }
                    };
                    if bits.len() != qubits || !bits.bytes().all(|b| b == b'0' || b == b'1') {
                        return Err(ParseProgError::new(
                            format!("ket needs one bit per qubit ({qubits} here), got {bits:?}"),
                            bs,
                            be,
                        ));
                    }
                    self.expect(&Token::RParen, "')'")?;
                    // Qubit 0 is the first tensor factor, i.e. the most
                    // significant bit of the basis index.
                    let index = bits
                        .bytes()
                        .fold(0usize, |acc, b| (acc << 1) | usize::from(b == b'1'));
                    let mut m = CMatrix::zeros(dim, dim);
                    m[(index, index)] = Complex::ONE;
                    matrix = Some(matrix.map_or(m.clone(), |prev| &prev * &m));
                }
                Some(Token::Ident(name)) => {
                    // `qK = B`: projector on one qubit's value.
                    self.pos -= 1; // re-read as a qubit reference
                    let q = self.parse_qubit(qubits)?;
                    self.expect(&Token::Eq, "'=' after the qubit")?;
                    let (vs, ve) = self.here();
                    let bit = match self.bump() {
                        Some(Token::Num(raw)) if raw == "0" => 0usize,
                        Some(Token::Num(raw)) if raw == "1" => 1usize,
                        _ => {
                            return Err(ParseProgError::new(
                                format!("expected 0 or 1 after {name}="),
                                vs,
                                ve,
                            ))
                        }
                    };
                    let m = qubit_space(qubits).projector(q, bit);
                    matrix = Some(matrix.map_or(m.clone(), |prev| &prev * &m));
                }
                _ => {
                    return Err(ParseProgError::new(
                        "expected a number, I, ket(bits), or qK=b",
                        s,
                        e,
                    ))
                }
            }
            first = false;
        }
        let base = matrix.unwrap_or_else(|| CMatrix::identity(dim));
        Ok(base.scale(Complex::from(scalar)))
    }
}

/// Lowers a statement sequence to the semantic [`Program`]: statements
/// fold left with `then`, and an empty sequence is `skip` — exactly the
/// shape the pre-AST parser built, so encodings are unchanged.
fn lower_seq(space: &QubitSpace, qubits: usize, stmts: &[Stmt]) -> Program {
    let dim = 1usize << qubits;
    let mut acc: Option<Program> = None;
    for stmt in stmts {
        let prog = lower_stmt(space, qubits, stmt);
        acc = Some(match acc {
            None => prog,
            Some(prev) => prev.then(&prog),
        });
    }
    acc.unwrap_or_else(|| Program::skip(dim))
}

/// Lowers one statement, deriving the Definition 4.4 encoder names
/// (`h q0 ↦ h_q0`, measurement of `qK` ↦ `m0_qK`/`m1_qK`).
fn lower_stmt(space: &QubitSpace, qubits: usize, stmt: &Stmt) -> Program {
    let dim = 1usize << qubits;
    match &stmt.kind {
        StmtKind::Skip => Program::skip(dim),
        StmtKind::Abort => Program::abort(dim),
        StmtKind::Init(q) => Program::elementary(&format!("init_q{q}"), space.reset(*q)),
        StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } => Program::if_then_else(
            [format!("m0_q{qubit}"), format!("m1_q{qubit}")],
            &space.measure(*qubit),
            lower_seq(space, qubits, then_branch),
            lower_seq(space, qubits, else_branch),
        ),
        StmtKind::While { qubit, body } => Program::while_loop(
            [format!("m0_q{qubit}"), format!("m1_q{qubit}")],
            &space.measure(*qubit),
            lower_seq(space, qubits, body),
        ),
        StmtKind::Gate { name, targets } => {
            let (matrix, _) = gate_table(name).expect("parser validated the gate name");
            let enc_name = std::iter::once(name.clone())
                .chain(targets.iter().map(|q| format!("q{q}")))
                .collect::<Vec<_>>()
                .join("_");
            Program::unitary(&enc_name, &space.embed_gate(&matrix, targets))
        }
    }
}

/// The `n`-qubit register space with its embedding helpers, built once
/// per parse.
struct QubitSpace {
    space: RegisterSpace,
    regs: Vec<qsim_quantum::registers::RegisterId>,
}

fn qubit_space(qubits: usize) -> QubitSpace {
    let mut space = RegisterSpace::new();
    let regs = (0..qubits)
        .map(|k| space.add_register(&format!("q{k}"), 2))
        .collect();
    QubitSpace { space, regs }
}

impl QubitSpace {
    /// A gate on the listed qubits, identity elsewhere.
    fn embed_gate(&self, gate: &CMatrix, targets: &[usize]) -> CMatrix {
        let ids: Vec<_> = targets.iter().map(|&q| self.regs[q]).collect();
        self.space.embed(gate, &ids)
    }

    /// The computational-basis measurement of one qubit, embedded.
    fn measure(&self, q: usize) -> Measurement {
        Measurement::new(vec![self.projector(q, 0), self.projector(q, 1)])
    }

    /// `|b⟩⟨b|` on one qubit, embedded.
    fn projector(&self, q: usize, b: usize) -> CMatrix {
        self.space.basis_projector(self.regs[q], b)
    }

    /// The reset channel `q := |0⟩` on one qubit, embedded: Kraus
    /// operators `|0⟩⟨i|` on the target qubit tensor identity.
    fn reset(&self, q: usize) -> Superoperator {
        let dim = self.space.dim();
        let kraus = (0..2)
            .map(|i| {
                let ket0 = CMatrix::basis_ket(2, 0);
                let keti = CMatrix::basis_ket(2, i);
                let local = &ket0 * &keti.adjoint();
                self.space.embed(&local, &[self.regs[q]])
            })
            .collect();
        Superoperator::from_kraus(dim, dim, kraus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncoderSetting;
    use qsim_quantum::states;

    #[test]
    fn parses_and_encodes_like_the_handbuilt_program() {
        let p = SurfaceProgram::parse("qubits 1; while q0 { h q0 }").unwrap();
        let mut setting = EncoderSetting::new(2);
        let enc = setting.encode(p.program()).unwrap();
        assert_eq!(enc.to_string(), "(m1_q0 h_q0)* m0_q0");
        // Semantics: the coin-flip loop a.s. exits into |0⟩.
        let out = p.program().run(&states::basis_density(2, 1));
        assert!(out.approx_eq(&states::basis_density(2, 0), 1e-9));
    }

    #[test]
    fn sequencing_and_two_qubit_gates() {
        let p = SurfaceProgram::parse("qubits 2; h q0; cnot q0 q1").unwrap();
        assert_eq!(p.dim(), 4);
        // |00⟩ ↦ the Bell state: ρ has ¼ mass on each corner.
        let out = p.program().run(&states::basis_density(4, 0));
        assert!((out[(0, 0)].re - 0.5).abs() < 1e-9);
        assert!((out[(3, 3)].re - 0.5).abs() < 1e-9);
        assert!((out[(0, 3)].re - 0.5).abs() < 1e-9);
    }

    #[test]
    fn if_else_and_init() {
        let p = SurfaceProgram::parse("qubits 1; if q0 { x q0 } else { skip }; init q0").unwrap();
        let mut setting = EncoderSetting::new(2);
        let enc = setting.encode(p.program()).unwrap();
        // case order is outcome order: m0 (else) first.
        assert_eq!(enc.to_string(), "(m0_q0 1 + m1_q0 x_q0) init_q0");
        // Whatever the input, the trailing init lands in |0⟩.
        let mut seed = 11;
        let rho = states::random_density(2, &mut seed);
        let out = p.program().run(&rho);
        assert!(out.approx_eq(&states::basis_density(2, 0), 1e-9));
    }

    #[test]
    fn empty_blocks_and_missing_else_mean_skip() {
        let a = SurfaceProgram::parse("qubits 1; if q0 { x q0 }").unwrap();
        let b = SurfaceProgram::parse("qubits 1; if q0 { x q0 } else { }").unwrap();
        let mut setting = EncoderSetting::new(2);
        assert_eq!(
            setting.encode(a.program()).unwrap(),
            setting.encode(b.program()).unwrap()
        );
        // An empty program is skip.
        let e = SurfaceProgram::parse("qubits 2;").unwrap();
        assert_eq!(setting.encode(e.program()).unwrap().to_string(), "1");
    }

    #[test]
    fn error_spans_point_at_the_offence() {
        let src = "qubits 1; frob q0";
        let err = SurfaceProgram::parse(src).unwrap_err();
        assert_eq!(err.span(), (10, 14));
        assert!(
            err.caret(src).contains("^^^^ unknown gate"),
            "{}",
            err.caret(src)
        );

        let err = SurfaceProgram::parse("qubits 1; h q3").unwrap_err();
        assert_eq!(err.span(), (12, 14));
        assert!(err.message().contains("out of range"));

        let err = SurfaceProgram::parse("qubits 1; while q0 { h q0").unwrap_err();
        assert_eq!(err.span(), (25, 25)); // empty span at end of input

        let err = SurfaceProgram::parse("qubits 9; skip").unwrap_err();
        assert!(err.message().contains("1..=5"), "{}", err.message());

        let err = SurfaceProgram::parse("qubits 2; swap q1 q1").unwrap_err();
        assert!(err.message().contains("twice"));

        let err = SurfaceProgram::parse("qubits 1; h q0 x q0").unwrap_err();
        assert!(err.message().contains("';'"), "{}", err.message());
    }

    #[test]
    fn effects_parse_scale_and_project() {
        let id = SurfaceEffect::parse("I", 1).unwrap();
        assert!(id.matrix().approx_eq(&CMatrix::identity(2), 1e-12));
        let half = SurfaceEffect::parse("0.5 I", 1).unwrap();
        assert!(half.matrix().approx_eq(&states::maximally_mixed(2), 1e-12));
        let k = SurfaceEffect::parse("ket(10)", 2).unwrap();
        assert!(k.matrix().approx_eq(&states::basis_density(4, 2), 1e-12));
        let q = SurfaceEffect::parse("q1=1", 2).unwrap();
        // q1 = 1 holds on indices 1 and 3 (q0 is the high bit).
        assert!((q.matrix()[(1, 1)].re - 1.0).abs() < 1e-12);
        assert!((q.matrix()[(3, 3)].re - 1.0).abs() < 1e-12);
        assert!(q.matrix()[(0, 0)].abs() < 1e-12);
        // Mixed sum with explicit star.
        let m = SurfaceEffect::parse("0.5 * ket(0) + 0.25 ket(1)", 1).unwrap();
        assert!((m.matrix()[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((m.matrix()[(1, 1)].re - 0.25).abs() < 1e-12);
        // Product of commuting projectors.
        let p = SurfaceEffect::parse("q0=1 q1=0", 2).unwrap();
        assert!(p.matrix().approx_eq(&states::basis_density(4, 2), 1e-12));
        // The zero effect.
        let z = SurfaceEffect::parse("0", 1).unwrap();
        assert!(z.matrix().max_abs() < 1e-12);
    }

    #[test]
    fn non_effects_are_rejected_with_spans() {
        let err = SurfaceEffect::parse("2 I", 1).unwrap_err();
        assert!(err.message().contains("not an effect"), "{}", err.message());
        let err = SurfaceEffect::parse("ket(01)", 1).unwrap_err();
        assert!(err.message().contains("one bit per qubit"));
        assert_eq!(err.span(), (4, 6));
        let err = SurfaceEffect::parse("q0=2", 1).unwrap_err();
        assert!(err.message().contains("0 or 1"));
        assert!(SurfaceEffect::parse("I +", 1).is_err());
        assert!(SurfaceEffect::parse("", 1).is_err());
    }

    #[test]
    fn ast_carries_statement_spans() {
        let src = "qubits 2; h q0; if q1 { x q0 } else { }; while q0 { cnot q0 q1 }";
        let p = SurfaceProgram::parse(src).unwrap();
        assert_eq!(p.header_span(), (0, 8));
        assert_eq!(&src[0..8], "qubits 2");
        let ast = p.ast();
        assert_eq!(ast.len(), 3);
        let slice = |stmt: &Stmt| &src[stmt.span.0..stmt.span.1];
        assert_eq!(slice(&ast[0]), "h q0");
        assert_eq!(slice(&ast[1]), "if q1 { x q0 } else { }");
        assert_eq!(slice(&ast[2]), "while q0 { cnot q0 q1 }");
        let StmtKind::If {
            qubit,
            then_branch,
            else_branch,
        } = &ast[1].kind
        else {
            panic!("expected an if, got {:?}", ast[1].kind);
        };
        assert_eq!(*qubit, 1);
        assert_eq!(slice(&then_branch[0]), "x q0");
        assert!(else_branch.is_empty());
        let StmtKind::While { body, .. } = &ast[2].kind else {
            panic!("expected a while, got {:?}", ast[2].kind);
        };
        assert_eq!(slice(&body[0]), "cnot q0 q1");
        assert_eq!(
            body[0].kind,
            StmtKind::Gate {
                name: "cnot".to_owned(),
                targets: vec![0, 1],
            }
        );
    }

    #[test]
    fn surface_equality_is_by_source() {
        let a = SurfaceProgram::parse("qubits 1; h q0").unwrap();
        let b = SurfaceProgram::parse("qubits 1; h q0").unwrap();
        let c = SurfaceProgram::parse("qubits 1;  h q0").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c); // different spelling, different wire value
    }
}
