//! The encoder `Enc` from programs to NKA expressions (Definition 4.4).

use crate::program::Program;
use nka_qpath::Interpretation;
use nka_syntax::{Expr, Symbol};
use qsim_quantum::Superoperator;
use std::collections::HashMap;
use std::fmt;

/// Error raised when an encoder setting would not be injective
/// (Definition 4.4 requires a *unique* symbol per elementary
/// superoperator).
#[derive(Debug, Clone)]
pub struct EncodeError {
    name: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "encoder name {:?} is already bound to a different superoperator",
            self.name
        )
    }
}

impl std::error::Error for EncodeError {}

/// An encoder setting `E`: the bijection between elementary superoperators
/// (including measurement branches) and alphabet symbols, built up while
/// encoding one or more programs (the paper defines `E` jointly for all
/// programs under comparison).
///
/// # Examples
///
/// See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct EncoderSetting {
    dim: usize,
    map: HashMap<Symbol, Superoperator>,
}

impl EncoderSetting {
    /// An empty setting for programs over a `dim`-dimensional space.
    pub fn new(dim: usize) -> EncoderSetting {
        EncoderSetting {
            dim,
            map: HashMap::new(),
        }
    }

    /// The symbols assigned so far.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.map.keys().copied()
    }

    /// The superoperator a symbol stands for (`E⁻¹`).
    pub fn superoperator(&self, sym: Symbol) -> Option<&Superoperator> {
        self.map.get(&sym)
    }

    fn bind(&mut self, name: &str, op: &Superoperator) -> Result<Symbol, EncodeError> {
        let sym = Symbol::intern(name);
        match self.map.get(&sym) {
            Some(existing) if existing.approx_eq(op, 1e-8) => Ok(sym),
            Some(_) => Err(EncodeError {
                name: name.to_owned(),
            }),
            None => {
                self.map.insert(sym, op.clone());
                Ok(sym)
            }
        }
    }

    /// `Enc(P)` — encodes a program, extending this setting.
    ///
    /// # Errors
    ///
    /// Fails if a name is reused for a different superoperator (the
    /// setting must stay injective).
    pub fn encode(&mut self, p: &Program) -> Result<Expr, EncodeError> {
        match p {
            Program::Skip(_) => Ok(Expr::one()),
            Program::Abort(_) => Ok(Expr::zero()),
            Program::Elementary(name, op) => {
                let sym = self.bind(name, op)?;
                Ok(Expr::atom(sym))
            }
            Program::Seq(a, b) => {
                let ea = self.encode(a)?;
                let eb = self.encode(b)?;
                Ok(ea.mul(&eb))
            }
            Program::Case(m, branches) => {
                let mut terms = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    let sym = self.bind(m.name(i), &m.measurement().branch(i))?;
                    let eb = self.encode(branch)?;
                    terms.push(Expr::atom(sym).mul(&eb));
                }
                Ok(Expr::sum(terms))
            }
            Program::While(m, body) => {
                let m0 = self.bind(m.name(0), &m.measurement().branch(0))?;
                let m1 = self.bind(m.name(1), &m.measurement().branch(1))?;
                let eb = self.encode(body)?;
                Ok(Expr::atom(m1).mul(&eb).star().mul(&Expr::atom(m0)))
            }
        }
    }

    /// The quantum interpretation `int = (H, E⁻¹)` of Theorem 4.5.
    pub fn interpretation(&self) -> Interpretation {
        let mut int = Interpretation::new(self.dim);
        for (&sym, op) in &self.map {
            int.assign(sym, op.clone());
        }
        int
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nka_qpath::{action::actions_approx_eq, Action, ExtPosOp};
    use qsim_quantum::{gates, states, Measurement};

    fn coin_flip_loop() -> Program {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        Program::while_loop(["m0", "m1"], &meas, h)
    }

    #[test]
    fn encoding_shapes_match_definition_4_4() {
        let mut setting = EncoderSetting::new(2);
        let meas = Measurement::computational_basis(2);
        let x = Program::unitary("x", &gates::pauli_x());
        let h = Program::unitary("h", &gates::hadamard());

        assert_eq!(setting.encode(&Program::skip(2)).unwrap(), Expr::one());
        assert_eq!(setting.encode(&Program::abort(2)).unwrap(), Expr::zero());
        let seq = x.then(&h);
        assert_eq!(setting.encode(&seq).unwrap().to_string(), "x h");
        let case = Program::case(["m0", "m1"], &meas, vec![x.clone(), h.clone()]);
        assert_eq!(setting.encode(&case).unwrap().to_string(), "m0 x + m1 h");
        let w = coin_flip_loop();
        assert_eq!(setting.encode(&w).unwrap().to_string(), "(m1 h)* m0");
    }

    #[test]
    fn setting_rejects_name_collisions() {
        let mut setting = EncoderSetting::new(2);
        let x = Program::unitary("gate", &gates::pauli_x());
        let h = Program::unitary("gate", &gates::hadamard());
        setting.encode(&x).unwrap();
        assert!(setting.encode(&h).is_err());
    }

    #[test]
    fn setting_shares_symbols_for_equal_superoperators() {
        let mut setting = EncoderSetting::new(2);
        let x1 = Program::unitary("x", &gates::pauli_x());
        let x2 = Program::unitary("x", &gates::pauli_x());
        let e1 = setting.encode(&x1).unwrap();
        let e2 = setting.encode(&x2).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(setting.symbols().count(), 1);
    }

    #[test]
    fn theorem_4_5_lifting_of_denotation() {
        // Qint(Enc(P)) = ⟨⟦P⟧⟩↑ — check on the probe family.
        let w = coin_flip_loop();
        let mut setting = EncoderSetting::new(2);
        let expr = setting.encode(&w).unwrap();
        let int = setting.interpretation();
        let encoded_action = int.action(&expr);
        let denot_action = Action::lift(w.denotation().to_superoperator());
        assert!(actions_approx_eq(&encoded_action, &denot_action));
    }

    #[test]
    fn theorem_4_5_on_branching_program() {
        let meas = Measurement::computational_basis(2);
        let x = Program::unitary("x", &gates::pauli_x());
        let h = Program::unitary("h", &gates::hadamard());
        let p = Program::case(["m0", "m1"], &meas, vec![x.then(&h), Program::abort(2)]);
        let mut setting = EncoderSetting::new(2);
        let expr = setting.encode(&p).unwrap();
        assert_eq!(expr.to_string(), "m0 (x h) + m1 0");
        let int = setting.interpretation();
        let lhs = int.action(&expr);
        let rhs = Action::lift(p.denotation().to_superoperator());
        assert!(actions_approx_eq(&lhs, &rhs));
        // And the action applied to a state matches run().
        let rho = states::maximally_mixed(2);
        let out = lhs.apply(&ExtPosOp::from_operator(&rho));
        assert!(out.finite_part().approx_eq(&p.run(&rho), 1e-8));
    }
}
