//! The normal form of quantum while-programs (Theorem 6.1).
//!
//! Every quantum while-program `P` over `H` is equivalent — up to a reset
//! of an auxiliary *classical guard* space `C` — to a program with exactly
//! one loop:
//!
//! ```text
//! P; p_C := |0⟩   ≡   P₀; while M do P₁ done; p_C := |0⟩
//! ```
//!
//! with `P₀, P₁` while-free. The construction is the induction of Appendix
//! C.7: sequencing, branching and looping each introduce one fresh guard
//! register that stores "where the control flow would have been", and the
//! single loop dispatches on the guard value. Quantum no-cloning is never
//! violated: only measurement *outcomes* are stored, in a classical
//! register (computational-basis states manipulated by reset-style
//! assignments).
//!
//! [`normalize`] implements the transformation; semantic equivalence is
//! verified in the tests (and benchmarked in `nka-bench`). The Section-6
//! worked example with its machine-checked NKA proof lives in `nka-apps`.

use crate::program::Program;
use qsim_linalg::CMatrix;
use qsim_quantum::{Measurement, RegisterSpace, Superoperator};

/// The result of [`normalize`]: a single-loop program over `H ⊗ C`.
#[derive(Debug, Clone)]
pub struct NormalForm {
    h_dim: usize,
    guard_dim: usize,
    /// While-free prefix `P₀`.
    p0: Program,
    /// While-free loop body `P₁`.
    p1: Program,
    /// The loop measurement (outcome 0 exits, outcome 1 continues).
    loop_meas: Measurement,
    /// Encoder names for the loop measurement outcomes.
    loop_names: [String; 2],
}

impl NormalForm {
    /// Dimension of the original space `H`.
    pub fn h_dim(&self) -> usize {
        self.h_dim
    }

    /// Dimension of the classical guard space `C`.
    pub fn guard_dim(&self) -> usize {
        self.guard_dim
    }

    /// Total dimension `dim(H ⊗ C)`.
    pub fn dim(&self) -> usize {
        self.h_dim * self.guard_dim
    }

    /// The while-free prefix `P₀`.
    pub fn prefix(&self) -> &Program {
        &self.p0
    }

    /// The while-free loop body `P₁`.
    pub fn body(&self) -> &Program {
        &self.p1
    }

    /// The normal-form program `P₀; while M do P₁ done` (no reset).
    pub fn program(&self) -> Program {
        let w = Program::while_loop(
            [self.loop_names[0].clone(), self.loop_names[1].clone()],
            &self.loop_meas,
            self.p1.clone(),
        );
        self.p0.then(&w)
    }

    /// The guard-reset statement `p_C := |0⟩` on `H ⊗ C`.
    pub fn guard_reset(&self) -> Program {
        guard_reset_program(self.h_dim, self.guard_dim)
    }

    /// The full right-hand side of Theorem 6.1:
    /// `P₀; while M do P₁ done; p_C := |0⟩`.
    pub fn program_with_reset(&self) -> Program {
        self.program().then(&self.guard_reset())
    }
}

/// `p_C := |0⟩` on `H ⊗ C` (`C` is the trailing tensor factor).
fn guard_reset_program(h_dim: usize, guard_dim: usize) -> Program {
    let mut space = RegisterSpace::new();
    let _h = space.add_register("H", h_dim);
    let c = space.add_register("C", guard_dim);
    let kraus: Vec<CMatrix> = (0..guard_dim)
        .map(|j| {
            let ket0 = CMatrix::basis_ket(guard_dim, 0);
            let ketj = CMatrix::basis_ket(guard_dim, j);
            space.embed(&(&ket0 * &ketj.adjoint()), &[c])
        })
        .collect();
    Program::elementary(
        "c_reset",
        Superoperator::from_kraus(h_dim * guard_dim, h_dim * guard_dim, kraus),
    )
}

/// Embeds the original program into `H ⊗ C` (acting as identity on `C`).
pub fn embed_original(p: &Program, guard_dim: usize) -> Program {
    let h_dim = p.dim();
    let mut space = RegisterSpace::new();
    let h = space.add_register("H", h_dim);
    let _c = space.add_register("C", guard_dim);
    embed_program(p, &space, &[h])
}

/// Embeds every operator of `p` (whose space is the ordered product of
/// `targets`) into `space`.
fn embed_program(
    p: &Program,
    space: &RegisterSpace,
    targets: &[qsim_quantum::registers::RegisterId],
) -> Program {
    let embed_superop = |op: &Superoperator| -> Superoperator {
        let kraus = op.kraus().iter().map(|k| space.embed(k, targets)).collect();
        Superoperator::from_kraus(space.dim(), space.dim(), kraus)
    };
    let embed_meas = |m: &Measurement| -> Measurement {
        Measurement::new(
            (0..m.outcome_count())
                .map(|i| space.embed(m.operator(i), targets))
                .collect(),
        )
    };
    match p {
        Program::Skip(_) => Program::skip(space.dim()),
        Program::Abort(_) => Program::abort(space.dim()),
        Program::Elementary(name, op) => Program::elementary(name, embed_superop(op)),
        Program::Seq(a, b) => {
            embed_program(a, space, targets).then(&embed_program(b, space, targets))
        }
        Program::Case(m, branches) => {
            let names: Vec<String> = (0..m.outcome_count())
                .map(|i| m.name(i).to_owned())
                .collect();
            Program::case(
                names,
                &embed_meas(m.measurement()),
                branches
                    .iter()
                    .map(|b| embed_program(b, space, targets))
                    .collect(),
            )
        }
        Program::While(m, body) => Program::while_loop(
            [m.name(0).to_owned(), m.name(1).to_owned()],
            &embed_meas(m.measurement()),
            embed_program(body, space, targets),
        ),
    }
}

/// `g := |v⟩` on guard register `g` of `space`.
fn guard_assign(
    space: &RegisterSpace,
    g: qsim_quantum::registers::RegisterId,
    value: usize,
    name: &str,
) -> Program {
    let d = space.register_dim(g);
    let kraus: Vec<CMatrix> = (0..d)
        .map(|j| {
            let ketv = CMatrix::basis_ket(d, value);
            let ketj = CMatrix::basis_ket(d, j);
            space.embed(&(&ketv * &ketj.adjoint()), &[g])
        })
        .collect();
    Program::elementary(
        name,
        Superoperator::from_kraus(space.dim(), space.dim(), kraus),
    )
}

/// The projective two-outcome test on guard `g`: outcome 1 iff the guard
/// value lies in `in_set`, outcome 0 otherwise.
fn guard_test(
    space: &RegisterSpace,
    g: qsim_quantum::registers::RegisterId,
    in_set: &[usize],
) -> Measurement {
    let d = space.register_dim(g);
    let mut p_in = CMatrix::zeros(d, d);
    for &v in in_set {
        p_in[(v, v)] = qsim_linalg::Complex::ONE;
    }
    let p_out = &CMatrix::identity(d) - &p_in;
    Measurement::new(vec![space.embed(&p_out, &[g]), space.embed(&p_in, &[g])])
}

/// The projective multi-outcome measurement reading the guard value
/// (`Meas[g]` of Section 6), with outcome `v` = projector on `|v⟩`.
fn guard_read(space: &RegisterSpace, g: qsim_quantum::registers::RegisterId) -> Measurement {
    let d = space.register_dim(g);
    Measurement::new(
        (0..d)
            .map(|v| {
                let mut p = CMatrix::zeros(d, d);
                p[(v, v)] = qsim_linalg::Complex::ONE;
                space.embed(&p, &[g])
            })
            .collect(),
    )
}

/// Normalizes a program into the single-loop form of Theorem 6.1.
///
/// The guard dimension grows with the loop structure of the program
/// (one factor of `|branches| + 1` or `3` per compound construct), so the
/// transformation is meant for programs of moderate nesting depth.
///
/// # Examples
///
/// ```
/// use nka_qprog::normal_form::normalize;
/// use nka_qprog::Program;
/// use qsim_quantum::{gates, Measurement};
///
/// let meas = Measurement::computational_basis(2);
/// let h = Program::unitary("h", &gates::hadamard());
/// let w = Program::while_loop(["m0", "m1"], &meas, h.clone());
/// let two_loops = w.then(&w);
/// let nf = normalize(&two_loops);
/// assert_eq!(nf.program().loop_count(), 1);
/// assert!(nf.prefix().is_while_free());
/// assert!(nf.body().is_while_free());
/// ```
pub fn normalize(p: &Program) -> NormalForm {
    let mut counter = 0usize;
    normalize_inner(p, &mut counter)
}

fn fresh(counter: &mut usize, stem: &str) -> String {
    *counter += 1;
    format!("{stem}_{counter}")
}

fn normalize_inner(p: &Program, counter: &mut usize) -> NormalForm {
    match p {
        // (a) While-free base: trivial guard C₁ (dimension 1); the loop
        // test {M₀ = I, M₁ = 0} never fires.
        _ if p.is_while_free() => {
            let dim = p.dim();
            let loop_meas =
                Measurement::new(vec![CMatrix::identity(dim), CMatrix::zeros(dim, dim)]);
            NormalForm {
                h_dim: dim,
                guard_dim: 1,
                p0: p.clone(),
                p1: Program::skip(dim),
                loop_meas,
                loop_names: [fresh(counter, "gbase_exit"), fresh(counter, "gbase_loop")],
            }
        }
        // (b) Sequencing.
        Program::Seq(s1, s2) => {
            let n1 = normalize_inner(s1, counter);
            let n2 = normalize_inner(s2, counter);
            let h_dim = n1.h_dim;
            let mut space = RegisterSpace::new();
            let h = space.add_register("H", h_dim);
            let c1 = space.add_register("C1", n1.guard_dim);
            let c2 = space.add_register("C2", n2.guard_dim);
            let g = space.add_register("G", 3);
            let stem = fresh(counter, "g");

            let p10 = embed_program(&n1.p0, &space, &[h, c1]);
            let p11 = embed_program(&n1.p1, &space, &[h, c1]);
            let m1 = Measurement::new(vec![
                space.embed(n1.loop_meas.operator(0), &[h, c1]),
                space.embed(n1.loop_meas.operator(1), &[h, c1]),
            ]);
            let p20 = embed_program(&n2.p0, &space, &[h, c2]);
            let p21 = embed_program(&n2.p1, &space, &[h, c2]);
            let m2 = Measurement::new(vec![
                space.embed(n2.loop_meas.operator(0), &[h, c2]),
                space.embed(n2.loop_meas.operator(1), &[h, c2]),
            ]);

            let set0 = guard_assign(&space, g, 0, &format!("{stem}_set0"));
            let set1 = guard_assign(&space, g, 1, &format!("{stem}_set1"));
            let set2 = guard_assign(&space, g, 2, &format!("{stem}_set2"));

            // p0' = P₁₀; g := |1⟩.
            let p0 = p10.then(&set1);
            // Body: if Meas[g] = 1 then (if M₁ then P₁₁ else P₂₀; g := 2)
            //       else (if M₂ then P₂₁ else g := 0).
            let inner1 = Program::if_then_else(
                [n1.loop_names[0].clone(), n1.loop_names[1].clone()],
                &m1,
                p11,
                p20.then(&set2),
            );
            let inner2 = Program::if_then_else(
                [n2.loop_names[0].clone(), n2.loop_names[1].clone()],
                &m2,
                p21,
                set0,
            );
            let body = Program::if_then_else(
                [format!("{stem}_ne1"), format!("{stem}_eq1")],
                &guard_test(&space, g, &[1]),
                inner1,
                inner2,
            );
            NormalForm {
                h_dim,
                guard_dim: n1.guard_dim * n2.guard_dim * 3,
                p0,
                p1: body,
                loop_meas: guard_test(&space, g, &[1, 2]),
                loop_names: [format!("{stem}_le0"), format!("{stem}_gt0")],
            }
        }
        // (c) Branching.
        Program::Case(m, branches) => {
            let subs: Vec<NormalForm> = branches
                .iter()
                .map(|b| normalize_inner(b, counter))
                .collect();
            let h_dim = p.dim();
            let k = subs.len();
            let mut space = RegisterSpace::new();
            let h = space.add_register("H", h_dim);
            let cs: Vec<_> = subs
                .iter()
                .enumerate()
                .map(|(i, n)| space.add_register(&format!("C{i}"), n.guard_dim))
                .collect();
            let g = space.add_register("G", k + 1);
            let stem = fresh(counter, "g");

            let meas_full = Measurement::new(
                (0..k)
                    .map(|i| space.embed(m.measurement().operator(i), &[h]))
                    .collect(),
            );
            // p0' = case M →ᵢ (Pᵢ₀; g := |i+1⟩) end.
            let prefix_branches: Vec<Program> = subs
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    embed_program(&n.p0, &space, &[h, cs[i]]).then(&guard_assign(
                        &space,
                        g,
                        i + 1,
                        &format!("{stem}_set{}", i + 1),
                    ))
                })
                .collect();
            let prefix_names: Vec<String> = (0..k).map(|i| m.name(i).to_owned()).collect();
            let p0 = Program::case(prefix_names, &meas_full, prefix_branches);

            // Body: case Meas[g] →ᵥ … — guard value i+1 runs branch i's
            // loop step, guard 0 is unreachable inside the loop (skip).
            let mut body_branches = vec![Program::skip(space.dim())];
            for (i, n) in subs.iter().enumerate() {
                let mi = Measurement::new(vec![
                    space.embed(n.loop_meas.operator(0), &[h, cs[i]]),
                    space.embed(n.loop_meas.operator(1), &[h, cs[i]]),
                ]);
                let step = Program::if_then_else(
                    [n.loop_names[0].clone(), n.loop_names[1].clone()],
                    &mi,
                    embed_program(&n.p1, &space, &[h, cs[i]]),
                    guard_assign(&space, g, 0, &format!("{stem}_set0")),
                );
                body_branches.push(step);
            }
            let body_names: Vec<String> = (0..=k).map(|v| format!("{stem}_val{v}")).collect();
            let body = Program::case(body_names, &guard_read(&space, g), body_branches);

            NormalForm {
                h_dim,
                guard_dim: subs.iter().map(|n| n.guard_dim).product::<usize>() * (k + 1),
                p0,
                p1: body,
                loop_meas: guard_test(&space, g, &(1..=k).collect::<Vec<_>>()),
                loop_names: [format!("{stem}_le0"), format!("{stem}_gt0")],
            }
        }
        // Unreachable: covered by the while-free guard above.
        Program::Skip(_) | Program::Abort(_) | Program::Elementary(..) => {
            unreachable!("while-free programs are handled by the base case")
        }
        // (d) Looping.
        Program::While(m, body) => {
            let n = normalize_inner(body, counter);
            let h_dim = p.dim();
            let mut space = RegisterSpace::new();
            let h = space.add_register("H", h_dim);
            let c = space.add_register("C", n.guard_dim);
            let g = space.add_register("G", 3);
            let stem = fresh(counter, "g");

            let m_outer = Measurement::new(vec![
                space.embed(m.measurement().operator(0), &[h]),
                space.embed(m.measurement().operator(1), &[h]),
            ]);
            let m_inner = Measurement::new(vec![
                space.embed(n.loop_meas.operator(0), &[h, c]),
                space.embed(n.loop_meas.operator(1), &[h, c]),
            ]);
            let p1_sub = embed_program(&n.p0, &space, &[h, c]);
            let p2_sub = embed_program(&n.p1, &space, &[h, c]);

            let set0 = guard_assign(&space, g, 0, &format!("{stem}_set0"));
            let set1 = guard_assign(&space, g, 1, &format!("{stem}_set1"));
            let set2 = guard_assign(&space, g, 2, &format!("{stem}_set2"));

            let p0 = set1.clone();
            // if Meas[g]=1 then (if M₁ then P₁; g := 2 else g := 0)
            // else           (if M₂ then P₂       else g := 1).
            let branch1 = Program::if_then_else(
                [m.name(0).to_owned(), m.name(1).to_owned()],
                &m_outer,
                p1_sub.then(&set2),
                set0,
            );
            let branch2 = Program::if_then_else(
                [n.loop_names[0].clone(), n.loop_names[1].clone()],
                &m_inner,
                p2_sub,
                set1,
            );
            let loop_body = Program::if_then_else(
                [format!("{stem}_ne1"), format!("{stem}_eq1")],
                &guard_test(&space, g, &[1]),
                branch1,
                branch2,
            );
            NormalForm {
                h_dim,
                guard_dim: n.guard_dim * 3,
                p0,
                p1: loop_body,
                loop_meas: guard_test(&space, g, &[1, 2]),
                loop_names: [format!("{stem}_le0"), format!("{stem}_gt0")],
            }
        }
    }
}

/// Verifies semantic equivalence `⟦P ⊗ I_C; reset⟧ = ⟦NF; reset⟧` on a
/// family of product probes `ρ_H ⊗ |0⟩⟨0|_C` (PSD spanning set on `H`),
/// within `tol`.
pub fn verify_normal_form(p: &Program, nf: &NormalForm, tol: f64) -> bool {
    let h_dim = p.dim();
    let guard_zero = qsim_quantum::states::basis_density(nf.guard_dim(), 0);
    let original = embed_original(p, nf.guard_dim()).then(&nf.guard_reset());
    let constructed = nf.program_with_reset();
    // PSD spanning probes on H.
    let mut probes: Vec<CMatrix> = Vec::new();
    for i in 0..h_dim {
        probes.push(qsim_quantum::states::basis_density(h_dim, i));
    }
    for i in 0..h_dim {
        for j in (i + 1)..h_dim {
            let mut plus = vec![qsim_linalg::Complex::ZERO; h_dim];
            plus[i] = qsim_linalg::Complex::ONE;
            plus[j] = qsim_linalg::Complex::ONE;
            probes.push(qsim_quantum::states::pure_state(&plus));
            let mut phase = vec![qsim_linalg::Complex::ZERO; h_dim];
            phase[i] = qsim_linalg::Complex::ONE;
            phase[j] = qsim_linalg::Complex::I;
            probes.push(qsim_quantum::states::pure_state(&phase));
        }
    }
    probes.iter().all(|rho_h| {
        let input = rho_h.kron(&guard_zero);
        original
            .run(&input)
            .approx_eq(&constructed.run(&input), tol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::gates;

    fn coin_meas() -> Measurement {
        Measurement::computational_basis(2)
    }

    fn coin_loop(tag: &str) -> Program {
        let h = Program::unitary("h", &gates::hadamard());
        Program::while_loop([format!("{tag}0"), format!("{tag}1")], &coin_meas(), h)
    }

    #[test]
    fn base_case_is_identity_shaped() {
        let x = Program::unitary("x", &gates::pauli_x());
        let nf = normalize(&x);
        assert_eq!(nf.guard_dim(), 1);
        assert!(verify_normal_form(&x, &nf, 1e-8));
    }

    #[test]
    fn two_sequential_loops_merge() {
        // The paper's Section-6 example shape: two while loops in sequence.
        let prog = coin_loop("m").then(&coin_loop("m"));
        let nf = normalize(&prog);
        assert_eq!(nf.program().loop_count(), 1);
        assert!(nf.prefix().is_while_free());
        assert!(nf.body().is_while_free());
        assert!(verify_normal_form(&prog, &nf, 1e-7));
    }

    #[test]
    fn loop_inside_case_merges() {
        let x = Program::unitary("x", &gates::pauli_x());
        let prog = Program::case(["n0", "n1"], &coin_meas(), vec![coin_loop("m"), x]);
        let nf = normalize(&prog);
        assert_eq!(nf.program().loop_count(), 1);
        assert!(verify_normal_form(&prog, &nf, 1e-7));
    }

    /// A loop that terminates after finitely many iterations from any
    /// state: `while M[q] = 1 do X done` (the X flips `|1⟩` to `|0⟩`, so
    /// the continue branch fires at most once per basis component). The
    /// normal-form construction is gate-agnostic, so this exercises the
    /// same guard bookkeeping as the Hadamard coin while keeping the
    /// semantic fixpoints exact after two Neumann terms.
    fn flip_loop(tag: &str) -> Program {
        let x = Program::unitary("x", &gates::pauli_x());
        Program::while_loop([format!("{tag}0"), format!("{tag}1")], &coin_meas(), x)
    }

    #[test]
    fn nested_while_merges() {
        // while N = 1 do (while M = 1 do X done) done — the inner loop
        // exits with q = 0, which also exits the outer loop, so every
        // basis state terminates within two outer iterations and the
        // semantic fixpoints are exact.
        let prog = Program::while_loop(["n0", "n1"], &coin_meas(), flip_loop("m"));
        let nf = normalize(&prog);
        assert_eq!(nf.program().loop_count(), 1);
        assert!(nf.prefix().is_while_free());
        assert!(nf.body().is_while_free());
        assert!(verify_normal_form(&prog, &nf, 1e-6));
    }

    /// The probabilistic (Hadamard-coin) nested loop. The merged loop's
    /// mass decays by a constant factor per *phase round-trip*, so the
    /// fixpoint needs hundreds of iterations on a `dim ≈ 160` space —
    /// minutes of CPU. Structurally identical to [`nested_while_merges`];
    /// run with `cargo test -- --ignored` to include it.
    #[test]
    #[ignore = "expensive: probabilistic nested loop, minutes of CPU"]
    fn nested_while_merges_probabilistic() {
        let x = Program::unitary("x", &gates::pauli_x());
        let inner = coin_loop("m").then(&x);
        let prog = Program::while_loop(["n0", "n1"], &coin_meas(), inner);
        let nf = normalize(&prog);
        assert_eq!(nf.program().loop_count(), 1);
        assert!(verify_normal_form(&prog, &nf, 1e-6));
    }

    #[test]
    fn guard_dimensions_accumulate() {
        let prog = coin_loop("m").then(&coin_loop("m"));
        let nf = normalize(&prog);
        // Each loop: base(1)·3 ⇒ 3; seq: 3·3·3 = 27.
        assert_eq!(nf.guard_dim(), 27);
        assert_eq!(nf.dim(), 54);
    }
}
