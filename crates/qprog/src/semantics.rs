//! Denotational semantics `⟦P⟧` (Section 4.2, after Ying).
//!
//! Two complementary realizations:
//!
//! * [`Program::run`] — applies `⟦P⟧` to one density operator directly
//!   (`d × d` work; loops iterate until the live mass falls under a
//!   tolerance). This scales to the QSP construction of Appendix B.
//! * [`Program::denotation`] — the full superoperator as a `d² × d²`
//!   Liouville matrix ([`Denotation`]), with loops resolved by Neumann
//!   summation with doubling. Exact object for equality checks and duals;
//!   costs `d⁶`-ish, so meant for small `d`.
//!
//! Both are cross-validated against each other in the tests.

use crate::program::Program;
use qsim_linalg::CMatrix;
use qsim_quantum::Superoperator;

/// Tolerance/iteration budget for while-loop fixpoints.
const LOOP_TOL: f64 = 1e-12;
const LOOP_MAX_ITER: usize = 100_000;

impl Program {
    /// Applies `⟦P⟧` to a (partial) density operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn run(&self, rho: &CMatrix) -> CMatrix {
        match self {
            Program::Skip(_) => rho.clone(),
            Program::Abort(d) => CMatrix::zeros(*d, *d),
            Program::Elementary(_, op) => op.apply(rho),
            Program::Seq(a, b) => b.run(&a.run(rho)),
            Program::Case(m, branches) => {
                let mut out = CMatrix::zeros(self.dim(), self.dim());
                for (i, branch) in branches.iter().enumerate() {
                    let collapsed = m.measurement().branch(i).apply(rho);
                    out = &out + &branch.run(&collapsed);
                }
                out
            }
            Program::While(m, body) => {
                let meas = m.measurement();
                let mut out = CMatrix::zeros(self.dim(), self.dim());
                let mut live = rho.clone();
                for _ in 0..LOOP_MAX_ITER {
                    out = &out + &meas.branch(0).apply(&live);
                    live = body.run(&meas.branch(1).apply(&live));
                    if live.trace().re <= LOOP_TOL {
                        break;
                    }
                }
                out
            }
        }
    }

    /// The full denotation `⟦P⟧` as a Liouville matrix.
    ///
    /// # Panics
    ///
    /// Panics on non-convergent loops only through iteration exhaustion
    /// (the result is then the truncated sum, which for valid programs is
    /// within `1e-9` of the limit).
    pub fn denotation(&self) -> Denotation {
        match self {
            Program::Skip(d) => Denotation::identity(*d),
            Program::Abort(d) => Denotation::zero(*d),
            Program::Elementary(_, op) => Denotation::from_superoperator(op),
            Program::Seq(a, b) => a.denotation().compose(&b.denotation()),
            Program::Case(m, branches) => {
                let mut out = Denotation::zero(self.dim());
                for (i, branch) in branches.iter().enumerate() {
                    let piece = Denotation::from_superoperator(&m.measurement().branch(i))
                        .compose(&branch.denotation());
                    out = out.sum(&piece);
                }
                out
            }
            Program::While(m, body) => {
                // ⟦while⟧ = Σₙ (M₁ ∘ ⟦P⟧)ⁿ ∘ M₀ — resolve the Neumann sum
                // S = Σ Tⁿ by doubling: S ← S + Tᵏ·S, T ← T².
                let m1_then_body = Denotation::from_superoperator(&m.measurement().branch(1))
                    .compose(&body.denotation());
                let mut sum = Denotation::identity(self.dim());
                let mut power = m1_then_body;
                for _ in 0..60 {
                    let step = power.compose(&sum);
                    let next = sum.sum(&step);
                    let delta = (&next.liou - &sum.liou).max_abs();
                    sum = next;
                    power = power.compose(&power);
                    if delta <= 1e-13 {
                        break;
                    }
                }
                sum.compose(&Denotation::from_superoperator(&m.measurement().branch(0)))
            }
        }
    }
}

/// A superoperator in Liouville form (`d² × d²`, row-major vectorization).
///
/// Used as the exact carrier for denotational semantics: composition and
/// sums are matrix operations, the Schrödinger–Heisenberg dual is the
/// adjoint matrix, and equality of denotations is matrix equality.
///
/// # Examples
///
/// ```
/// use nka_qprog::{Denotation, Program};
/// use qsim_quantum::gates;
///
/// let h = Program::unitary("h", &gates::hadamard());
/// let hh = h.then(&h);
/// assert!(hh.denotation().approx_eq(&Denotation::identity(2), 1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct Denotation {
    dim: usize,
    liou: CMatrix,
}

impl Denotation {
    /// The identity map.
    pub fn identity(dim: usize) -> Denotation {
        Denotation {
            dim,
            liou: CMatrix::identity(dim * dim),
        }
    }

    /// The zero map.
    pub fn zero(dim: usize) -> Denotation {
        Denotation {
            dim,
            liou: CMatrix::zeros(dim * dim, dim * dim),
        }
    }

    /// From a Kraus-form superoperator.
    pub fn from_superoperator(e: &Superoperator) -> Denotation {
        assert_eq!(e.dim_in(), e.dim_out(), "denotations are endomorphisms");
        Denotation {
            dim: e.dim_in(),
            liou: e.liouville(),
        }
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The Liouville matrix.
    pub fn liouville(&self) -> &CMatrix {
        &self.liou
    }

    /// Sequential composition, paper convention: `self` first.
    pub fn compose(&self, then: &Denotation) -> Denotation {
        assert_eq!(self.dim, then.dim);
        Denotation {
            dim: self.dim,
            liou: &then.liou * &self.liou,
        }
    }

    /// Pointwise sum.
    pub fn sum(&self, other: &Denotation) -> Denotation {
        assert_eq!(self.dim, other.dim);
        Denotation {
            dim: self.dim,
            liou: &self.liou + &other.liou,
        }
    }

    /// The Schrödinger–Heisenberg dual (adjoint Liouville matrix).
    pub fn dual(&self) -> Denotation {
        Denotation {
            dim: self.dim,
            liou: self.liou.adjoint(),
        }
    }

    /// Applies the map to a matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &CMatrix) -> CMatrix {
        assert_eq!(rho.rows(), self.dim);
        assert_eq!(rho.cols(), self.dim);
        let mut vec_rho = Vec::with_capacity(self.dim * self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                vec_rho.push(rho[(i, j)]);
            }
        }
        let out_vec = self.liou.mul_vec(&vec_rho);
        let mut out = CMatrix::zeros(self.dim, self.dim);
        let mut k = 0;
        for i in 0..self.dim {
            for j in 0..self.dim {
                out[(i, j)] = out_vec[k];
                k += 1;
            }
        }
        out
    }

    /// Functional equality within `tol`.
    pub fn approx_eq(&self, other: &Denotation, tol: f64) -> bool {
        self.dim == other.dim && self.liou.approx_eq(&other.liou, tol)
    }

    /// Converts back to Kraus form (via the Choi matrix; exact up to
    /// numerics). Only valid for completely positive denotations.
    ///
    /// # Panics
    ///
    /// Panics if the map is not completely positive within `1e-7`.
    pub fn to_superoperator(&self) -> Superoperator {
        Superoperator::from_liouville(self.dim, &self.liou)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::{gates, states, Measurement};

    fn coin_flip_loop() -> Program {
        let meas = Measurement::computational_basis(2);
        let h = Program::unitary("h", &gates::hadamard());
        Program::while_loop(["m0", "m1"], &meas, h)
    }

    #[test]
    fn skip_abort_semantics() {
        let rho = states::maximally_mixed(2);
        assert!(Program::skip(2).run(&rho).approx_eq(&rho, 1e-12));
        assert!(Program::abort(2).run(&rho).max_abs() < 1e-12);
    }

    #[test]
    fn case_semantics_sums_branches() {
        let meas = Measurement::computational_basis(2);
        let x = Program::unitary("x", &gates::pauli_x());
        let c = Program::case(["m0", "m1"], &meas, vec![x, Program::skip(2)]);
        // |0⟩ measures 0, branch X flips → |1⟩; |1⟩ measures 1, skip → |1⟩.
        let out0 = c.run(&states::basis_density(2, 0));
        let out1 = c.run(&states::basis_density(2, 1));
        assert!(out0.approx_eq(&states::basis_density(2, 1), 1e-10));
        assert!(out1.approx_eq(&states::basis_density(2, 1), 1e-10));
    }

    #[test]
    fn while_loop_terminates_almost_surely() {
        let w = coin_flip_loop();
        let out = w.run(&states::basis_density(2, 1));
        // Exits only through outcome 0, so the output is |0⟩⟨0| with the
        // full input mass.
        assert!(out.approx_eq(&states::basis_density(2, 0), 1e-9));
    }

    #[test]
    fn nonterminating_loop_loses_mass() {
        // while M = 1 do skip done on |1⟩ never exits: output 0.
        let meas = Measurement::computational_basis(2);
        let w = Program::while_loop(["m0", "m1"], &meas, Program::skip(2));
        let out = w.run(&states::basis_density(2, 1));
        assert!(out.max_abs() < 1e-9);
        // … while |0⟩ exits immediately.
        let out0 = w.run(&states::basis_density(2, 0));
        assert!(out0.approx_eq(&states::basis_density(2, 0), 1e-12));
    }

    #[test]
    fn denotation_agrees_with_run() {
        let w = coin_flip_loop();
        let den = w.denotation();
        let mut seed = 23;
        for _ in 0..5 {
            let rho = states::random_density(2, &mut seed);
            assert!(den.apply(&rho).approx_eq(&w.run(&rho), 1e-8));
        }
        // Trace-non-increasing (here: preserving, loop exits a.s.).
        assert!(den.to_superoperator().is_trace_preserving(1e-7));
    }

    #[test]
    fn dual_pairing() {
        // tr(A·⟦P⟧(ρ)) = tr(⟦P⟧†(A)·ρ).
        let w = coin_flip_loop();
        let den = w.denotation();
        let dual = den.dual();
        let mut seed = 31;
        let rho = states::random_density(2, &mut seed);
        let a = states::random_density(2, &mut seed);
        let lhs = (&a * &den.apply(&rho)).trace();
        let rhs = (&dual.apply(&a) * &rho).trace();
        assert!(lhs.approx_eq(rhs, 1e-9));
    }

    #[test]
    fn seq_composes() {
        let x = Program::unitary("x", &gates::pauli_x());
        let both = x.then(&x);
        assert!(both.denotation().approx_eq(&Denotation::identity(2), 1e-10));
    }
}
