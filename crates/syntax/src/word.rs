//! Words over the alphabet Σ.

use crate::Symbol;
use std::fmt;

/// A finite word over Σ — an element of `Σ*`.
///
/// Words index the coefficients of formal power series (Definition A.2) and
/// label the paths of weighted automata.
///
/// # Examples
///
/// ```
/// use nka_syntax::{Symbol, Word};
/// let a = Symbol::intern("a");
/// let b = Symbol::intern("b");
/// let w = Word::from_symbols([a, b, a]);
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.to_string(), "a·b·a");
/// assert_eq!(Word::epsilon().to_string(), "ε");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Word(Vec<Symbol>);

impl Word {
    /// The empty word ε.
    pub fn epsilon() -> Word {
        Word(Vec::new())
    }

    /// Builds a word from symbols.
    pub fn from_symbols<I: IntoIterator<Item = Symbol>>(symbols: I) -> Word {
        Word(symbols.into_iter().collect())
    }

    /// Length of the word.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is ε.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The symbols of the word.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Word) -> Word {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Word(v)
    }

    /// Appends one symbol.
    pub fn push(&mut self, sym: Symbol) {
        self.0.push(sym);
    }

    /// All ways of splitting `self` into a prefix and suffix
    /// (`len + 1` splits, including the trivial ones).
    pub fn splits(&self) -> impl Iterator<Item = (Word, Word)> + '_ {
        (0..=self.0.len()).map(move |i| (Word(self.0[..i].to_vec()), Word(self.0[i..].to_vec())))
    }
}

impl FromIterator<Symbol> for Word {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Word {
        Word::from_symbols(iter)
    }
}

impl Extend<Symbol> for Word {
    fn extend<I: IntoIterator<Item = Symbol>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, sym) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{sym}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(names: &[&str]) -> Word {
        Word::from_symbols(names.iter().map(|n| Symbol::intern(n)))
    }

    #[test]
    fn concatenation() {
        assert_eq!(w(&["a"]).concat(&w(&["b", "c"])), w(&["a", "b", "c"]));
        assert_eq!(Word::epsilon().concat(&w(&["a"])), w(&["a"]));
    }

    #[test]
    fn splits_enumerated() {
        let word = w(&["a", "b"]);
        let splits: Vec<_> = word.splits().collect();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0], (Word::epsilon(), w(&["a", "b"])));
        assert_eq!(splits[1], (w(&["a"]), w(&["b"])));
        assert_eq!(splits[2], (w(&["a", "b"]), Word::epsilon()));
    }

    #[test]
    fn ordering_is_by_symbols() {
        let mut words = [w(&["b"]), w(&["a", "a"]), Word::epsilon()];
        words.sort();
        assert_eq!(words[0], Word::epsilon());
    }
}
