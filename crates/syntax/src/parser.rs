//! Parser for NKA expressions.
//!
//! Grammar (multiplication by juxtaposition, as in the paper):
//!
//! ```text
//! expr   := term ('+' term)*
//! term   := factor factor*
//! factor := base '*'*
//! base   := '0' | '1' | ident | '(' expr ')'
//! ident  := [a-zA-Z_][a-zA-Z0-9_']*
//! ```

use crate::{Expr, Symbol};
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing an [`Expr`] from malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    message: String,
    position: usize,
}

impl ParseExprError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseExprError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the input at which the error occurred.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Plus,
    Star,
    LParen,
    RParen,
    Zero,
    One,
    Ident(String),
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseExprError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'+' => {
                tokens.push((Token::Plus, i));
                i += 1;
            }
            b'*' => {
                tokens.push((Token::Star, i));
                i += 1;
            }
            b'(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            b')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            b'0' => {
                tokens.push((Token::Zero, i));
                i += 1;
            }
            b'1' => {
                tokens.push((Token::One, i));
                i += 1;
            }
            b'.' | b';' => i += 1, // optional explicit composition separators
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_owned()), start));
            }
            _ => {
                return Err(ParseExprError::new(
                    format!("unexpected character {:?}", b as char),
                    i,
                ))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut acc = self.parse_term()?;
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            let rhs = self.parse_term()?;
            acc = acc.add(&rhs);
        }
        Ok(acc)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseExprError> {
        let mut acc = self.parse_factor()?;
        loop {
            match self.peek() {
                Some(Token::Zero | Token::One | Token::Ident(_) | Token::LParen) => {
                    let rhs = self.parse_factor()?;
                    acc = acc.mul(&rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseExprError> {
        let mut base = self.parse_base()?;
        while self.peek() == Some(&Token::Star) {
            self.bump();
            base = base.star();
        }
        Ok(base)
    }

    fn parse_base(&mut self) -> Result<Expr, ParseExprError> {
        let at = self.here();
        match self.bump() {
            Some(Token::Zero) => Ok(Expr::zero()),
            Some(Token::One) => Ok(Expr::one()),
            Some(Token::Ident(name)) => Ok(Expr::atom(Symbol::intern(&name))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseExprError::new("expected ')'", at)),
                }
            }
            Some(tok) => Err(ParseExprError::new(format!("unexpected token {tok:?}"), at)),
            None => Err(ParseExprError::new("unexpected end of input", at)),
        }
    }
}

impl FromStr for Expr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tokens = tokenize(s)?;
        let mut parser = Parser {
            tokens,
            pos: 0,
            input_len: s.len(),
        };
        let expr = parser.parse_expr()?;
        if parser.pos != parser.tokens.len() {
            return Err(ParseExprError::new("trailing input", parser.here()));
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprNode;

    #[test]
    fn precedence_star_over_mul_over_add() {
        let e: Expr = "a + b c*".parse().unwrap();
        match e.node() {
            ExprNode::Add(l, r) => {
                assert_eq!(l.to_string(), "a");
                assert_eq!(r.to_string(), "b c*");
            }
            _ => panic!("expected Add at root"),
        }
    }

    #[test]
    fn juxtaposition_is_left_associative() {
        let e: Expr = "a b c".parse().unwrap();
        assert_eq!(e, "(a b) c".parse().unwrap());
    }

    #[test]
    fn iterated_star() {
        let e: Expr = "a**".parse().unwrap();
        assert_eq!(e, Expr::atom_str("a").star().star());
    }

    #[test]
    fn identifiers_with_digits_and_primes() {
        let e: Expr = "m0 u_inv p'".parse().unwrap();
        let mut names: Vec<String> = e.atoms().iter().map(|s| s.name()).collect();
        names.sort();
        assert_eq!(names, vec!["m0", "p'", "u_inv"]);
    }

    #[test]
    fn zero_one_are_constants_not_atoms() {
        let e: Expr = "0 + 1".parse().unwrap();
        assert!(e.atoms().is_empty());
    }

    #[test]
    fn error_positions() {
        let err = "a + ?".parse::<Expr>().unwrap_err();
        assert_eq!(err.position(), 4);
        let err = "(a + b".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("expected ')'") || err.to_string().contains("end"));
        let err = "a ) b".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert!("".parse::<Expr>().is_err());
        assert!("a + ".parse::<Expr>().is_err());
        assert!("*".parse::<Expr>().is_err());
    }

    #[test]
    fn separators_are_ignored() {
        let e: Expr = "a; b . c".parse().unwrap();
        assert_eq!(e, "a b c".parse().unwrap());
    }
}
